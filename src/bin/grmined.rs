//! `grmined` — the fault-contained GR-mining daemon.
//!
//! ```text
//! grmined <graph.grm> [--addr HOST:PORT] [--threads N]
//!         [--max-concurrent N] [--queue-depth N] [--cache N]
//!         [--default-timeout MS] [--retry-after MS]
//! ```
//!
//! Loads the graph once, binds a TCP listener (default `127.0.0.1:0` —
//! an OS-assigned port), prints a single JSON ready line with the bound
//! address on stdout, and then serves line-delimited JSON requests until
//! shut down. The request protocol, error codes and failure model live
//! in `grm_core::service` (see also README "Service mode").
//!
//! Shutdown is graceful on SIGTERM / SIGINT and on a `shutdown` request:
//! the listener stops accepting, in-flight mines observe cancellation
//! through the token tree and drain their partial counters, connection
//! threads are joined, and the process exits 0.
//!
//! `--default-timeout 0` disables the default per-request deadline
//! (requests may still set their own `timeout_ms`).

use social_ties::core::service::{serve, Service, ServiceConfig};
use social_ties::graph::io;
use std::io::Write;
use std::net::TcpListener;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Set from the signal handler, polled by the watcher thread. A plain
/// atomic store is async-signal-safe; everything else (locks, the
/// service shutdown fan-out) happens on the watcher thread.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // ordering: Release pairs with the watcher thread's Acquire load so
    // the flag is the only cross-thread communication out of the
    // handler; no other writes need to be ordered by it.
    SIGNALLED.store(true, Ordering::Release);
}

// Minimal libc binding: `std` exposes no signal API and the workspace
// vendors no libc, so declare the one symbol we need.
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    exit(run(&args));
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    let Some(raw) = args.get(i + 1) else {
        return Err(format!("flag `{name}` is missing its value"));
    };
    raw.parse()
        .map(Some)
        .map_err(|_| format!("invalid value `{raw}` for flag `{name}`"))
}

fn run(args: &[String]) -> i32 {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: grmined <graph.grm> [--addr HOST:PORT] [--threads N] [--max-concurrent N] [--queue-depth N] [--cache N] [--default-timeout MS] [--retry-after MS]");
        return 2;
    };
    let flags = |name| parse_flag::<usize>(args, name);
    let (addr, threads, max_concurrent, queue_depth, cache, default_timeout, retry_after) = match (
        parse_flag::<String>(args, "--addr"),
        flags("--threads"),
        flags("--max-concurrent"),
        flags("--queue-depth"),
        flags("--cache"),
        parse_flag::<u64>(args, "--default-timeout"),
        parse_flag::<u64>(args, "--retry-after"),
    ) {
        (Ok(a), Ok(t), Ok(m), Ok(q), Ok(c), Ok(d), Ok(r)) => (a, t, m, q, c, d, r),
        (a, t, m, q, c, d, r) => {
            for e in [
                a.err(),
                t.err(),
                m.err(),
                q.err(),
                c.err(),
                d.err(),
                r.err(),
            ]
            .into_iter()
            .flatten()
            {
                eprintln!("{e}");
            }
            return 2;
        }
    };

    let defaults = ServiceConfig::default();
    let cfg = ServiceConfig {
        max_concurrent: max_concurrent.unwrap_or(defaults.max_concurrent),
        queue_depth: queue_depth.unwrap_or(defaults.queue_depth),
        retry_after_ms: retry_after.unwrap_or(defaults.retry_after_ms),
        default_deadline_ms: match default_timeout {
            Some(0) => None,
            Some(ms) => Some(ms),
            None => defaults.default_deadline_ms,
        },
        cache_capacity: cache.unwrap_or(defaults.cache_capacity),
        threads: threads.unwrap_or(defaults.threads),
    };

    let graph = match io::load_graph(path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error loading `{path}`: {e}");
            return 1;
        }
    };

    let addr = addr.unwrap_or_else(|| "127.0.0.1:0".to_string());
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error binding `{addr}`: {e}");
            return 1;
        }
    };
    let bound = match listener.local_addr() {
        Ok(a) => a.to_string(),
        Err(e) => {
            eprintln!("error reading bound address: {e}");
            return 1;
        }
    };

    let threads_cap = cfg.threads.max(1);
    let service = Arc::new(Service::new(graph, cfg));

    // SAFETY: `on_signal` only stores to a static AtomicBool, which is
    // async-signal-safe; the previous handlers (SIG_DFL) are discarded
    // deliberately — this process owns its signal disposition.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
    let watcher_service = Arc::clone(&service);
    let watcher = std::thread::spawn(move || loop {
        // ordering: Acquire pairs with the handler's Release store; the
        // flag is a latch, so a stale read only delays shutdown one tick.
        if SIGNALLED.load(Ordering::Acquire) {
            watcher_service.shut_down();
            return;
        }
        if watcher_service.shutdown_token().is_cancelled() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    // One machine-readable ready line so harnesses can find the port.
    println!(
        "{{\"ready\":true,\"addr\":\"{bound}\",\"max_concurrent\":{},\"threads\":{threads_cap}}}",
        service.capacity(),
    );
    let _ = std::io::stdout().flush();

    let served = serve(listener, &service);
    let _ = watcher.join();
    match served {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("serve error: {e}");
            1
        }
    }
}
