//! `grmine` — command-line GR mining and querying.
//!
//! ```text
//! grmine mine  <graph.grm> [--min-supp N] [--min-score F] [--k N]
//!              [--metric nhp|conf|laplace|gain|ps|conviction|lift]
//!              [--no-dynamic] [--no-fuse] [--no-kernel]
//!              [--threads N | --parallel N]
//!              [--no-steal] [--split-depth N]
//!              [--shards N [--memory-budget BYTES]]
//!              [--timeout MS] [--json] [--stats-json]
//! grmine query <graph.grm> "<GR>"            # e.g. "(SEX:F) -> (EDU:Grad)"
//! grmine gen   <pokec|dblp> <out.grm> [--scale F] [--seed N]
//! grmine info  <graph.grm>
//! ```
//!
//! Degenerate numeric flags are strict: `--k` and `--min-supp` must be
//! at least 1 (a zero would silently disable top-k selection / support
//! pruning). `--threads 0` is *documented* behavior, not an error: it
//! means "auto-detect available parallelism" (falling back to one
//! worker, with a warning, when detection fails); `--split-depth 0`
//! disables subtree splitting.
//!
//! `--shards N` routes the mine through the sharded out-of-core engine:
//! the graph is spilled to an N-way on-disk `ShardStore` in a scratch
//! directory and mined shard by shard, optionally under a resident-set
//! cap of `--memory-budget` bytes (which therefore requires `--shards`).
//! `--threads` composes with it (sharded workers; 0 = auto); the
//! work-stealing knobs `--no-steal`/`--split-depth` and the sequential
//! baselines do not.
//!
//! `--timeout MS` bounds the mine's wall-clock time: when the deadline
//! expires every engine drains its counters and exits with a typed
//! `cancelled` error (exit code 1, partial `--stats-json` counters still
//! on stdout). `--timeout 0` is a deadline that is already expired — it
//! deterministically exercises the cancellation drain path. The
//! baselines do not observe deadlines, so `--timeout` rejects
//! `--baseline-bl1`/`--baseline-bl2` rather than silently ignoring them.
//!
//! The graph format is the self-describing GRMGRAPH text format written by
//! `grm_graph::io` (and by `grmine gen`).

use social_ties::core::baseline::{mine_baseline, BaselineKind};
use social_ties::core::parallel::{try_mine_parallel_with_opts, ParallelOptions};
use social_ties::core::{mine_sharded, parse_gr, query, Dims, MinerError, ShardedOptions};
use social_ties::graph::io;
use social_ties::graph::shard::ShardStore;
use social_ties::{generate, GrMiner, MinerConfig, RankMetric};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("mine") => cmd_mine(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        _ => {
            eprintln!("usage: grmine <mine|query|gen|info> …  (see --help in source)");
            2
        }
    };
    exit(code);
}

/// Parse `name`'s value if the flag is present. A present flag whose
/// value is missing or unparseable is an error — silently falling back
/// to a default would turn a typo into a wrong run.
fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    let Some(raw) = args.get(i + 1) else {
        return Err(format!("flag `{name}` is missing its value"));
    };
    raw.parse()
        .map(Some)
        .map_err(|_| format!("invalid value `{raw}` for flag `{name}`"))
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn load(path: &str) -> Option<social_ties::SocialGraph> {
    match io::load_graph(path) {
        Ok(g) => Some(g),
        Err(e) => {
            eprintln!("error loading `{path}`: {e}");
            None
        }
    }
}

fn cmd_mine(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: grmine mine <graph.grm> [flags]");
        return 2;
    };
    let Some(graph) = load(path) else { return 1 };

    let metric_name = match parse_flag::<String>(args, "--metric") {
        Ok(v) => v.unwrap_or_else(|| "nhp".to_string()),
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let Some(metric) = RankMetric::from_name(&metric_name) else {
        eprintln!("unknown metric `{metric_name}`");
        return 2;
    };
    let default_score = if metric.anti_monotone() {
        0.5
    } else {
        f64::NEG_INFINITY
    };
    type MineFlags = (u64, f64, usize, Option<usize>, Option<usize>);
    let parsed = (|| -> Result<MineFlags, String> {
        let threads = match (
            parse_flag::<usize>(args, "--parallel")?,
            parse_flag::<usize>(args, "--threads")?,
        ) {
            (Some(_), Some(_)) => {
                return Err("--parallel and --threads are aliases; pass one".to_string())
            }
            (p, t) => p.or(t),
        };
        Ok((
            parse_flag(args, "--min-supp")?
                .unwrap_or_else(|| ((graph.edge_count() / 1000) as u64).max(1)),
            parse_flag(args, "--min-score")?.unwrap_or(default_score),
            parse_flag(args, "--k")?.unwrap_or(20),
            threads,
            parse_flag(args, "--split-depth")?,
        ))
    })();
    let (min_supp, min_score, k, parallel, split_depth) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    // Strict degenerate-value checks (module docs): a zero here would
    // not crash so much as silently run a meaningless configuration —
    // `--k 0` selects nothing and `--min-supp 0` disables support
    // pruning entirely.
    if k == 0 {
        eprintln!("--k must be at least 1 (0 would select no GRs)");
        return 2;
    }
    if min_supp == 0 {
        eprintln!("--min-supp must be at least 1 (0 would disable support pruning)");
        return 2;
    }
    let (shards, memory_budget) = match (|| -> Result<(Option<usize>, Option<u64>), String> {
        Ok((
            parse_flag(args, "--shards")?,
            parse_flag(args, "--memory-budget")?,
        ))
    })() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if shards == Some(0) {
        eprintln!("--shards must be at least 1 (0 shards could hold no edges)");
        return 2;
    }
    if memory_budget.is_some() && shards.is_none() {
        eprintln!("--memory-budget caps the sharded engine's resident set; add --shards N");
        return 2;
    }
    if memory_budget == Some(0) {
        eprintln!("--memory-budget must be at least 1 byte (0 could hold no shard)");
        return 2;
    }
    // `--timeout 0` is deliberately legal: a deadline that is already
    // expired, the deterministic way to exercise the cancellation drain
    // path (module docs).
    let timeout_ms = match parse_flag::<u64>(args, "--timeout") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mut cfg = MinerConfig {
        min_supp,
        min_score,
        k,
        deadline_ms: timeout_ms,
        ..MinerConfig::default().with_metric(metric)
    };
    if has_flag(args, "--no-dynamic") {
        cfg.dynamic_topk = false;
    }
    if has_flag(args, "--no-fuse") {
        cfg.fuse_partitions = false;
    }
    if has_flag(args, "--no-kernel") {
        cfg.use_kernel = false;
    }
    if has_flag(args, "--allow-empty-lhs") {
        cfg.allow_empty_lhs = true;
    }
    let stats_json = has_flag(args, "--stats-json");
    if stats_json && has_flag(args, "--json") {
        // Each mode promises stdout to exactly one JSON document.
        eprintln!("--stats-json and --json are mutually exclusive");
        return 2;
    }

    if parallel.is_none() && (has_flag(args, "--no-steal") || split_depth.is_some()) {
        // Engine knobs without an engine would silently do nothing; the
        // CLI's contract is that a present flag always takes effect.
        eprintln!("--no-steal/--split-depth configure the parallel engine; add --threads N");
        return 2;
    }
    if parallel.is_some() && (has_flag(args, "--baseline-bl1") || has_flag(args, "--baseline-bl2"))
    {
        // The baselines are sequential by design; silently running the
        // parallel GRMiner instead would mislabel the numbers.
        eprintln!("--baseline-bl1/--baseline-bl2 are sequential; drop --threads");
        return 2;
    }
    if shards.is_some() && (has_flag(args, "--no-steal") || split_depth.is_some()) {
        // The sharded engine parallelizes across whole mining units and
        // never splits or steals subtrees; accepting the knobs would
        // silently ignore them.
        eprintln!("--no-steal/--split-depth configure the work-stealing engine; drop --shards");
        return 2;
    }
    if shards.is_some() && (has_flag(args, "--baseline-bl1") || has_flag(args, "--baseline-bl2")) {
        eprintln!("--baseline-bl1/--baseline-bl2 are in-core; drop --shards");
        return 2;
    }
    if timeout_ms.is_some()
        && (has_flag(args, "--baseline-bl1") || has_flag(args, "--baseline-bl2"))
    {
        // The baselines never probe the deadline; accepting the flag
        // would silently mine without a time bound.
        eprintln!("--timeout needs a cancellable engine; drop --baseline-bl1/--baseline-bl2");
        return 2;
    }
    let engine = parallel.map(|threads| ParallelOptions {
        threads,
        steal: !has_flag(args, "--no-steal"),
        split_depth: split_depth.unwrap_or(social_ties::core::parallel::DEFAULT_SPLIT_DEPTH),
        ..ParallelOptions::default()
    });
    let outcome = if let Some(shards) = shards {
        // Out-of-core path: spill the graph into an N-way shard store in
        // a scratch directory, mine it under the budget, and clean up.
        // The store's own files go with its `Drop`; the directory after.
        let dir = std::env::temp_dir().join(format!("grmine-shards-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = match ShardStore::build_from_graph(
            &graph,
            dir,
            shards,
            social_ties::graph::CompactModel::MAX_EDGES,
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot build the shard store: {e}");
                return 1;
            }
        };
        let opts = ShardedOptions {
            threads: parallel.unwrap_or(1),
            memory_budget,
        };
        let out = mine_sharded(&store, &cfg, &opts);
        let dir = store.dir().to_path_buf();
        drop(store);
        let _ = std::fs::remove_dir_all(dir);
        out
    } else if let Some(opts) = engine {
        // The work-stealing engine honors `dynamic_topk` (shared bound +
        // exactness-verified post-pass), so the config passes through
        // unchanged — `--no-dynamic` controls it, exactly as
        // sequentially.
        try_mine_parallel_with_opts(&graph, &cfg, &Dims::all(graph.schema()), opts)
    } else if has_flag(args, "--baseline-bl1") {
        Ok(mine_baseline(&graph, &cfg, BaselineKind::Bl1))
    } else if has_flag(args, "--baseline-bl2") {
        Ok(mine_baseline(&graph, &cfg, BaselineKind::Bl2))
    } else {
        GrMiner::new(&graph, cfg.clone()).try_mine()
    };
    let result = match outcome {
        Ok(r) => r,
        Err(e @ MinerError::UnsupportedMetric(_)) => {
            eprintln!("{e}");
            return 2;
        }
        Err(e) => {
            // Cancellation / deadline expiry / a contained worker panic:
            // the run still drained its counters, so `--stats-json` keeps
            // its stdout contract (one JSON stats document) while the
            // typed error goes to stderr with a failing exit code.
            if stats_json {
                if let Some(partial) = e.partial_stats() {
                    println!(
                        "{}",
                        serde_json::to_string(partial).expect("stats serialize")
                    );
                }
            }
            eprintln!("mine failed: {e}");
            return 1;
        }
    };

    if stats_json {
        // One JSON object on stdout: the run's MinerStats (including the
        // partition- and parallel-engine counters). The engine settings
        // and the ranked report go to stderr so stdout stays a single
        // machine-readable document.
        println!(
            "{}",
            serde_json::to_string(&result.stats).expect("stats serialize")
        );
        if let Some(shards) = shards {
            // threads = 0 means "auto-detect"; echoing the literal 0
            // would read as zero workers.
            let threads = match parallel.unwrap_or(1) {
                0 => "auto".to_string(),
                n => n.to_string(),
            };
            let budget = match memory_budget {
                Some(b) => b.to_string(),
                None => "none".to_string(),
            };
            eprintln!(
                "engine: sharded shards={} threads={} budget={} dynamic={}",
                shards, threads, budget, cfg.dynamic_topk
            );
        } else if let Some(opts) = engine {
            // threads = 0 means "auto-detect"; echoing the literal 0
            // would read as zero workers.
            let threads = match opts.threads {
                0 => "auto".to_string(),
                n => n.to_string(),
            };
            eprintln!(
                "engine: threads={} steal={} split_depth={} dynamic={}",
                threads, opts.steal, opts.split_depth, cfg.dynamic_topk
            );
        }
        eprint!("{}", result.report(graph.schema()));
    } else if has_flag(args, "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&result.top).expect("results serialize")
        );
    } else {
        println!(
            "# {} GRs (metric {}, minSupp {}, minScore {}, k {})",
            result.top.len(),
            cfg.metric,
            cfg.min_supp,
            cfg.min_score,
            cfg.k
        );
        print!("{}", result.report(graph.schema()));
        eprintln!("{}", result.stats);
    }
    0
}

fn cmd_query(args: &[String]) -> i32 {
    let (Some(path), Some(text)) = (args.first(), args.get(1)) else {
        eprintln!("usage: grmine query <graph.grm> \"<GR>\"");
        return 2;
    };
    let Some(graph) = load(path) else { return 1 };
    match parse_gr(graph.schema(), text) {
        Ok(gr) => {
            let m = query::evaluate(&graph, &gr);
            println!("{}", gr.display(graph.schema()));
            println!("{}", m.summary());
            println!(
                "supp_lw={} heff={} supp_r={} |E|={} beta={:?}",
                m.supp_lw, m.heff, m.supp_r, m.edges, m.beta_attrs
            );
            0
        }
        Err(e) => {
            eprintln!("cannot parse GR: {e}");
            2
        }
    }
}

fn cmd_gen(args: &[String]) -> i32 {
    let (Some(which), Some(out)) = (args.first(), args.get(1)) else {
        eprintln!("usage: grmine gen <pokec|dblp> <out.grm> [--scale F] [--seed N]");
        return 2;
    };
    let (scale, seed) = match (|| -> Result<(f64, Option<u64>), String> {
        Ok((
            parse_flag(args, "--scale")?.unwrap_or(0.1),
            parse_flag(args, "--seed")?,
        ))
    })() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    // Reject NaN/inf and runaway magnitudes: `scaled()` multiplies node
    // and edge counts by this factor, so an extreme value turns a typo
    // into an allocation abort instead of an error.
    if !(scale.is_finite() && scale > 0.0 && scale <= 1e4) {
        eprintln!("invalid --scale {scale}: must be a positive number <= 10000");
        return 2;
    }
    let mut cfg = match which.as_str() {
        "pokec" => social_ties::datagen::pokec_config_scaled(scale),
        "dblp" => social_ties::datagen::dblp_config_scaled(scale),
        other => {
            eprintln!("unknown dataset `{other}`");
            return 2;
        }
    };
    if let Some(seed) = seed {
        cfg = cfg.with_seed(seed);
    }
    let graph = match generate(&cfg) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cannot generate `{which}` at scale {scale}: {e}");
            return 2;
        }
    };
    if let Err(e) = io::save_graph(&graph, out) {
        eprintln!("error writing `{out}`: {e}");
        return 1;
    }
    eprintln!(
        "wrote {} nodes / {} edges to {out}",
        graph.node_count(),
        graph.edge_count()
    );
    0
}

fn cmd_info(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: grmine info <graph.grm>");
        return 2;
    };
    let Some(graph) = load(path) else { return 1 };
    let s = graph.schema();
    println!("nodes: {}", graph.node_count());
    println!("edges: {}", graph.edge_count());
    println!("node attributes:");
    for a in s.node_attr_ids() {
        let def = s.node_attr(a);
        println!(
            "  {} (|A|={}, {})",
            def.name(),
            def.domain_size(),
            if def.is_homophily() {
                "homophily"
            } else {
                "non-homophily"
            }
        );
    }
    println!("edge attributes:");
    for a in s.edge_attr_ids() {
        let def = s.edge_attr(a);
        println!("  {} (|A|={})", def.name(), def.domain_size());
    }
    let cm = social_ties::graph::CompactModel::build(&graph);
    let st = social_ties::graph::SingleTable::build(&graph);
    println!(
        "compact model: {} cells; single table: {} cells ({:.1}x)",
        cm.cells(),
        st.cells(),
        st.cells() as f64 / cm.cells() as f64
    );
    println!(
        "columnar key caches: {} cells (runtime acceleration on top of the compact model)",
        cm.cache_cells()
    );
    0
}
