//! # social-ties — Mining Social Ties Beyond Homophily
//!
//! Umbrella crate for the Rust reproduction of *Liang, Wang, Zhu: "Mining
//! Social Ties Beyond Homophily", IEEE ICDE 2016*. It re-exports the three
//! workspace crates as modules:
//!
//! * [`graph`] — attributed social-network substrate (schemas with
//!   homophily flags, the compact LArray/EArray/RArray data model of
//!   §IV-A, counting-sort partitioning, I/O);
//! * [`core`] — the GRMiner algorithm (non-homophily preference, SFDF
//!   enumeration with dynamic tail ordering, top-k with dynamic threshold,
//!   BL1/BL2 baselines, §VII alternative metrics, ad-hoc GR queries, a
//!   parallel miner);
//! * [`datagen`] — synthetic Pokec-like / DBLP-like workloads with planted
//!   beyond-homophily preferences, plus the Fig. 1 toy dating network.
//!
//! The most common entry points are re-exported at the top level:
//!
//! ```
//! use social_ties::{GrMiner, MinerConfig, toy_network};
//!
//! let graph = toy_network();
//! let top = GrMiner::new(&graph, MinerConfig::nhp(1, 0.5, 5)).mine();
//! println!("{}", top.report(graph.schema()));
//! ```

pub use grm_core as core;
pub use grm_datagen as datagen;
pub use grm_graph as graph;

pub use grm_core::{
    Dims, EdgeDescriptor, Gr, GrBuilder, GrMiner, MineResult, MinerConfig, MinerStats,
    NodeDescriptor, RankMetric, ScoredGr,
};
pub use grm_datagen::{
    dblp_config, generate, pokec_config, toy_network, toy_schema, GeneratorConfig,
};
pub use grm_graph::{GraphBuilder, Schema, SchemaBuilder, SocialGraph};
