//! Behavioral checks of the §VII alternative metrics on realistic
//! workloads — beyond the formula-level unit tests: lift must correct the
//! population-skew that inflates D1-style patterns, and the anti-monotone
//! alternatives must plug into the same pruning machinery.

use social_ties::core::query;
use social_ties::datagen::dblp_config_scaled;
use social_ties::{generate, GrBuilder, GrMiner, MinerConfig, RankMetric, SocialGraph};

fn dblp() -> SocialGraph {
    generate(&dblp_config_scaled(0.3)).unwrap()
}

#[test]
fn lift_deflates_the_poor_productivity_pattern() {
    // §VII: D1 "(A:AI) -> (P:Poor)" has high confidence only because Poor
    // dominates the RHS population; lift ≈ conf / base-rate ≈ 1 exposes
    // that. A planted cross-area preference must show lift >> 1.
    let g = dblp();
    let s = g.schema();

    let d1 = GrBuilder::new(s)
        .l("Area", "AI")
        .r("Productivity", "Poor")
        .build()
        .unwrap();
    let m1 = query::evaluate(&g, &d1);
    let lift_d1 = m1.conf.unwrap() / (m1.supp_r as f64 / m1.edges as f64);
    assert!(
        (0.8..1.3).contains(&lift_d1),
        "D1's lift should hover around 1 (pure skew), got {lift_d1}"
    );

    // Lift corrects for RHS-population skew but NOT for homophily: the
    // same-area restatement scores a huge lift, which is precisely why
    // the paper still needs nhp on top of the §VII alternatives.
    let same_area = GrBuilder::new(s)
        .l("Area", "DB")
        .r("Area", "DB")
        .build()
        .unwrap();
    let m3 = query::evaluate(&g, &same_area);
    let lift_same = m3.conf.unwrap() / (m3.supp_r as f64 / m3.edges as f64);
    assert!(
        lift_same > 1.8,
        "homophily survives the lift correction: {lift_same}"
    );
}

#[test]
fn lift_ranking_does_not_lead_with_poor() {
    let g = dblp();
    let s = g.schema();
    let min_supp = (g.edge_count() / 1000) as u64;
    let cfg = MinerConfig {
        min_supp: min_supp.max(1),
        min_score: f64::NEG_INFINITY,
        k: 5,
        dynamic_topk: false,
        ..MinerConfig::default().with_metric(RankMetric::Lift)
    };
    let result = GrMiner::new(&g, cfg).mine();
    assert!(!result.top.is_empty());
    // Lift may rank conjunctions containing Poor (rarity of the *other*
    // condition drives them), but the pure skew pattern — an RHS that is
    // exactly {Productivity:Poor} — must not lead the list as it does
    // under conf/nhp (D1/D3/D5).
    let top = &result.top[0];
    let pure_poor = top.gr.r.pairs().len() == 1 && {
        let (a, v) = top.gr.r.pairs()[0];
        s.node_attr(a).name() == "Productivity" && s.node_attr(a).value_name(v) == "Poor"
    };
    assert!(
        !pure_poor,
        "lift's best GR should not be the bare Poor-skew pattern, got {}",
        top.gr.display(s)
    );
    // And the bare Poor RHS scores lift ≈ 1 wherever it appears.
    for x in &result.top {
        if x.gr.r.pairs().len() == 1 {
            let (a, v) = x.gr.r.pairs()[0];
            if s.node_attr(a).name() == "Productivity" && s.node_attr(a).value_name(v) == "Poor" {
                assert!(x.score < 1.5, "bare Poor lift {}", x.score);
            }
        }
    }
}

#[test]
fn laplace_discounts_tiny_supports() {
    // laplace = (supp+1)/(supp_lw+k): at equal confidence, bigger groups
    // win. Verify on two GRs with conf 1.0 but different support.
    let schema = social_ties::SchemaBuilder::new()
        .node_attr("A", 4, false)
        .build()
        .unwrap();
    let mut b = social_ties::GraphBuilder::new(schema);
    let n: Vec<u32> = (0..8)
        .map(|i| b.add_node(&[(i % 4) + 1]).unwrap())
        .collect();
    // A:1 sources -> A:2 (10 edges); A:3 source -> A:4 (1 edge).
    for _ in 0..10 {
        b.add_edge(n[0], n[1], &[]).unwrap();
    }
    b.add_edge(n[2], n[3], &[]).unwrap();
    let g = b.build().unwrap();

    let cfg = MinerConfig {
        min_supp: 1,
        min_score: 0.0,
        k: 10,
        dynamic_topk: false,
        ..MinerConfig::default().with_metric(RankMetric::Laplace { k: 2 })
    };
    let result = GrMiner::new(&g, cfg).mine();
    let s = g.schema();
    let pos = |needle: &str| {
        result
            .top
            .iter()
            .position(|x| x.gr.display(s) == needle)
            .unwrap_or_else(|| panic!("{needle} missing:\n{}", result.report(s)))
    };
    assert!(
        pos("(A:1) -> (A:2)") < pos("(A:3) -> (A:4)"),
        "laplace must rank the well-supported GR first"
    );
}

#[test]
fn gain_trades_confidence_against_coverage() {
    // gain = (supp − θ·supp_lw)/|E|: positive iff conf > θ; scales with
    // absolute size. The big group wins over a sharper but tiny one.
    let g = dblp();
    let cfg = MinerConfig {
        min_supp: 5,
        min_score: 0.0,
        k: 3,
        dynamic_topk: false,
        ..MinerConfig::default().with_metric(RankMetric::Gain { theta: 0.5 })
    };
    let result = GrMiner::new(&g, cfg).mine();
    assert!(!result.top.is_empty());
    // Every reported gain is >= 0 (conf above θ) and the list is sorted.
    for x in &result.top {
        assert!(x.score >= 0.0);
        assert!(x.conf() >= 0.5 - 1e-9);
    }
    // The winner has large support — gain favors coverage.
    assert!(
        result.top[0].supp >= result.top.last().unwrap().supp,
        "gain should favor large groups at equal confidence"
    );
}

#[test]
fn conviction_orders_consistently_with_conf_at_fixed_rhs() {
    // For a fixed RHS marginal, conviction is monotone in confidence.
    let g = dblp();
    let s = g.schema();
    let grs = [
        GrBuilder::new(s)
            .l("Area", "DB")
            .r("Area", "DB")
            .build()
            .unwrap(),
        GrBuilder::new(s)
            .l("Productivity", "Fair")
            .r("Area", "DB")
            .build()
            .unwrap(),
    ];
    let conv = |gr: &social_ties::Gr| {
        let m = query::evaluate(&g, gr);
        let conf = m.conf.unwrap();
        (m.edges - m.supp_r) as f64 / (m.edges as f64 * (1.0 - conf))
    };
    let confs: Vec<f64> = grs
        .iter()
        .map(|gr| query::evaluate(&g, gr).conf.unwrap())
        .collect();
    assert!(confs[0] > confs[1], "setup: same-area conf must dominate");
    assert!(conv(&grs[0]) > conv(&grs[1]));
}
