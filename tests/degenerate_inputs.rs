//! Degenerate-graph suite: the inputs a production service sees at the
//! edges of its domain — zero nodes, zero edges, a single self-loop,
//! all-null attribute columns — run through the stats front-end, the
//! sequential miner, and the 2-thread parallel miner. Nothing here may
//! panic; results must be the obvious empty/zero outcomes.

use social_ties::core::parallel::mine_parallel;
use social_ties::graph::stats::{
    audit_report, degree_summary, homophily_scores, node_marginal, suggest_homophily_attrs,
    DegreeStats,
};
use social_ties::graph::NodeAttrId;
use social_ties::{GrMiner, GraphBuilder, MinerConfig, Schema, SchemaBuilder, SocialGraph};

fn schema() -> Schema {
    SchemaBuilder::new()
        .node_attr("A", 3, true)
        .node_attr("B", 2, false)
        .build()
        .unwrap()
}

/// Stats front-end + sequential miner + 2-thread parallel miner, with
/// both the default config and a threshold-free one. Returns the
/// default-config result sizes for the caller's expectations.
fn drive_everything(g: &SocialGraph, label: &str) -> usize {
    // Stats front-end.
    let report = audit_report(g);
    assert!(report.contains("out-degree:"), "{label}: audit rendered");
    let scores = homophily_scores(g);
    assert_eq!(scores.len(), 2, "{label}: one score per node attribute");
    for s in &scores {
        assert!(s.assortativity().is_finite(), "{label}");
        assert!(s.lift().is_finite(), "{label}");
    }
    suggest_homophily_attrs(g, 0.1);
    node_marginal(g, NodeAttrId(0));
    degree_summary(g.out_degrees());

    // Miners: default thresholds and the permissive corner (min_supp 1,
    // no score threshold, tiny k) — both must run panic-free,
    // sequentially and with 2 workers, and agree with each other.
    let mut default_len = 0;
    for cfg in [
        MinerConfig::default(),
        MinerConfig::nhp(1, 0.0, 3).without_dynamic_topk(),
    ] {
        let seq = GrMiner::new(g, cfg.clone()).mine();
        let par = mine_parallel(g, &cfg, 2);
        assert_eq!(seq.top, par.top, "{label}: parallel diverged");
        // Semantic counters are comparable between parallel runs (the
        // collect phase legitimately defers the generality filter, so
        // `accepted` differs from the sequential run's).
        let par1 = mine_parallel(g, &cfg, 1);
        assert_eq!(
            par1.stats.semantic(),
            par.stats.semantic(),
            "{label}: semantic counters diverged across worker counts"
        );
        if cfg == MinerConfig::default() {
            default_len = seq.top.len();
        }
    }
    default_len
}

#[test]
fn zero_node_graph() {
    let g = GraphBuilder::new(schema()).build().unwrap();
    assert_eq!(g.node_count(), 0);
    assert_eq!(g.edge_count(), 0);
    assert_eq!(drive_everything(&g, "zero-node"), 0);
    assert_eq!(degree_summary(g.out_degrees()), DegreeStats::default());
}

#[test]
fn nodes_but_zero_edges() {
    let mut b = GraphBuilder::new(schema());
    for i in 0..5u16 {
        b.add_node(&[i % 4, i % 3]).unwrap();
    }
    let g = b.build().unwrap();
    assert_eq!(g.edge_count(), 0);
    assert_eq!(drive_everything(&g, "zero-edge"), 0);
    let deg = degree_summary(g.out_degrees());
    assert_eq!((deg.min, deg.max), (0, 0), "all out-degrees are zero");
}

#[test]
fn single_node_with_self_loop() {
    let mut b = GraphBuilder::new(schema()).allow_self_loops();
    let v = b.add_node(&[1, 1]).unwrap();
    b.add_edge(v, v, &[]).unwrap();
    let g = b.build().unwrap();
    assert_eq!((g.node_count(), g.edge_count()), (1, 1));
    drive_everything(&g, "self-loop");
    // The loop is perfectly homophilous on A by construction.
    let s = &homophily_scores(&g)[0];
    assert_eq!(s.measured_edges, 1);
    assert_eq!(s.observed_same, 1.0);
    // A permissive mine surfaces the (A:1) -> (A:1)-shaped patterns
    // under conf (trivial GRs kept); nothing panics with k pinned tiny.
    let conf = GrMiner::new(&g, MinerConfig::conf(1, 0.0, 1)).mine();
    assert!(conf.top.len() <= 1);
}

#[test]
fn all_null_attribute_column() {
    // Attribute A is null on every node: no A partition is enumerable,
    // homophily on A is unmeasurable, and the miner must still mine B
    // relations without panicking.
    let mut b = GraphBuilder::new(schema());
    let ids: Vec<u32> = (0..4u16)
        .map(|i| b.add_node(&[0, i % 2 + 1]).unwrap())
        .collect();
    for i in 0..ids.len() {
        b.add_edge(ids[i], ids[(i + 1) % ids.len()], &[]).unwrap();
    }
    let g = b.build().unwrap();
    drive_everything(&g, "all-null-A");
    let s = &homophily_scores(&g)[0];
    assert_eq!(s.measured_edges, 0, "null endpoints are unmeasurable");
    assert_eq!(s.assortativity(), 0.0);
    // No mined GR may constrain the all-null attribute.
    let r = GrMiner::new(&g, MinerConfig::nhp(1, 0.0, 100).without_dynamic_topk()).mine();
    for sgr in &r.top {
        for &(a, _) in sgr.gr.l.pairs().iter().chain(sgr.gr.r.pairs()) {
            assert_ne!(a, NodeAttrId(0), "GR constrains the all-null column");
        }
    }
}
