//! Chaos matrix against a live service (`--features fault-inject`):
//! faults armed over the wire at `request.handle` and `worker.body`
//! must surface as typed error responses — never an abort, never a
//! leaked admission slot — and once the registry drains, identical
//! requests return bit-identical results.
//!
//! Everything runs inside one `#[test]` because the failpoint registry
//! is process-global.

#![cfg(feature = "fault-inject")]

use social_ties::core::service::{serve, Service, ServiceConfig};
use social_ties::datagen::dblp_config_scaled;
use social_ties::generate;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn request(&mut self, line: &str) -> String {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .expect("request write");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("response read");
        assert!(!response.is_empty(), "daemon hung up mid-matrix");
        response.trim_end().to_string()
    }
}

fn arm(client: &mut Client, site: &str, after: u64, kind: &str) {
    let resp = client.request(&format!(
        "{{\"id\":\"arm\",\"type\":\"failpoint\",\"action\":\"arm\",\
         \"site\":\"{site}\",\"after\":{after},\"times\":1,\"kind\":\"{kind}\"}}"
    ));
    assert!(resp.contains("\"armed\":true"), "{resp}");
}

fn disarm(client: &mut Client) {
    let resp = client.request("{\"id\":\"disarm\",\"type\":\"failpoint\",\"action\":\"disarm\"}");
    assert!(resp.contains("\"disarmed\":true"), "{resp}");
}

#[test]
fn chaos_matrix_yields_typed_errors_and_recovers_bit_identically() {
    let svc = Arc::new(Service::new(
        generate(&dblp_config_scaled(0.05)).unwrap(),
        ServiceConfig {
            max_concurrent: 2,
            threads: 2,
            // Every request must reach the engine: a cache hit would
            // skip an armed `worker.body` and desynchronize the matrix.
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server_svc = Arc::clone(&svc);
    let server = std::thread::spawn(move || serve(listener, &server_svc).expect("serve"));
    let mut client = Client::connect(&addr);

    let mine = "{\"id\":\"m\",\"type\":\"mine\",\"min_supp\":1,\"k\":10}";
    let baseline = client.request(mine);
    assert!(baseline.contains("\"ok\":true"), "{baseline}");
    let baseline_top = baseline
        .split("\"top\":")
        .nth(1)
        .and_then(|s| s.split(",\"stats\":").next())
        .expect("baseline has a top list")
        .to_string();

    // request.handle × fault kind × hit index. `after` counts probes
    // *after arming*, so index 1 lets one innocent request through and
    // fails the one behind it.
    for kind in ["io-error", "short-read", "panic"] {
        for after in [0u64, 1] {
            arm(&mut client, "request.handle", after, kind);
            for victim_index in 0..=after {
                let resp = client.request(mine);
                let expect_fault = victim_index == after;
                let code = if kind == "panic" {
                    "WorkerPanicked"
                } else {
                    "Internal"
                };
                if expect_fault {
                    assert!(resp.contains("\"ok\":false"), "{kind}/{after}: {resp}");
                    assert!(resp.contains(code), "{kind}/{after}: {resp}");
                } else {
                    assert!(resp.contains("\"ok\":true"), "{kind}/{after}: {resp}");
                }
            }
            // The registry drained (times=1): the same request now
            // succeeds, bit-identically to the pre-chaos baseline.
            let resp = client.request(mine);
            assert!(resp.contains("\"ok\":true"), "{kind}/{after}: {resp}");
            assert!(
                resp.contains(&baseline_top),
                "{kind}/{after}: post-fault mine diverged"
            );
            assert_eq!(
                svc.slots_available(),
                svc.capacity(),
                "{kind}/{after}: fault leaked an admission slot"
            );
        }
    }

    // worker.body panic inside the parallel engine: contained by the
    // engine, surfaced as WorkerPanicked with drained partial stats.
    let par_mine = "{\"id\":\"p\",\"type\":\"mine\",\"min_supp\":1,\"k\":10,\"threads\":2}";
    let par_baseline = client.request(par_mine);
    assert!(par_baseline.contains("\"ok\":true"), "{par_baseline}");
    let par_baseline_top = par_baseline
        .split("\"top\":")
        .nth(1)
        .and_then(|s| s.split(",\"stats\":").next())
        .expect("parallel baseline has a top list")
        .to_string();
    arm(&mut client, "worker.body", 0, "panic");
    let resp = client.request(par_mine);
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("WorkerPanicked"), "{resp}");
    assert!(resp.contains("partial_stats"), "{resp}");
    assert!(resp.contains("injected panic at worker.body"), "{resp}");
    assert_eq!(svc.slots_available(), svc.capacity());
    let recovered = client.request(par_mine);
    assert!(recovered.contains("\"ok\":true"), "{recovered}");
    assert!(
        recovered.contains(&par_baseline_top),
        "post-panic parallel mine diverged"
    );

    // Drain the registry over the wire and account for every firing:
    // 3 kinds × 2 indices at request.handle, plus one worker panic.
    disarm(&mut client);

    // The daemon survived the whole matrix: still serving, zero aborts.
    let resp = client.request("{\"id\":\"end\",\"type\":\"stats\"}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"slots_available\":2"), "{resp}");

    svc.shut_down();
    std::thread::sleep(Duration::from_millis(10));
    server.join().expect("server drains");
}
