//! Persistence round-trips: the GRMGRAPH text format at realistic scale,
//! serde JSON for schemas, configs and results, and the invariance of
//! mining results across a save/load cycle.

use social_ties::core::query;
use social_ties::datagen::dblp_config_scaled;
use social_ties::graph::io;
use social_ties::{generate, Gr, GrBuilder, GrMiner, MinerConfig};

#[test]
fn grmgraph_round_trip_preserves_mining_results() {
    let g = generate(&dblp_config_scaled(0.05)).unwrap();
    let mut buf = Vec::new();
    io::write_graph(&g, &mut buf).unwrap();
    let back = io::read_graph(&buf[..]).unwrap();
    assert_eq!(back.node_count(), g.node_count());
    assert_eq!(back.edge_count(), g.edge_count());

    let cfg = MinerConfig::nhp(5, 0.5, 10);
    let a = GrMiner::new(&g, cfg.clone()).mine();
    let b = GrMiner::new(&back, cfg).mine();
    let ka: Vec<(Gr, u64)> = a.top.iter().map(|x| (x.gr.clone(), x.supp)).collect();
    let kb: Vec<(Gr, u64)> = b.top.iter().map(|x| (x.gr.clone(), x.supp)).collect();
    assert_eq!(ka, kb, "mining must be invariant under save/load");
}

#[test]
fn results_serialize_to_json() {
    let g = social_ties::toy_network();
    let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.5, 5)).mine();
    let json = serde_json::to_string_pretty(&result.top).unwrap();
    let back: Vec<social_ties::ScoredGr> = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), result.top.len());
    for (a, b) in result.top.iter().zip(&back) {
        assert_eq!(a.gr, b.gr);
        assert_eq!(a.supp, b.supp);
    }
}

#[test]
fn generator_config_round_trips() {
    let cfg = social_ties::datagen::pokec_config();
    let json = serde_json::to_string(&cfg).unwrap();
    let back: social_ties::GeneratorConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.nodes, cfg.nodes);
    assert_eq!(back.rules.len(), cfg.rules.len());
    assert_eq!(back.seed, cfg.seed);
    // A regenerated graph from the deserialized config is identical.
    let a = generate(&cfg.clone().scaled(0.002)).unwrap();
    let b = generate(&back.scaled(0.002)).unwrap();
    assert_eq!(a.edge_count(), b.edge_count());
    for e in a.edge_ids() {
        assert_eq!(a.src(e), b.src(e));
        assert_eq!(a.dst(e), b.dst(e));
    }
}

#[test]
fn miner_stats_round_trip_preserves_elapsed() {
    let g = social_ties::toy_network();
    let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.5, 5)).mine();
    let json = serde_json::to_string(&result.stats).unwrap();
    let back: social_ties::MinerStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back.grs_examined, result.stats.grs_examined);
    assert_eq!(back.heff_scans, result.stats.heff_scans);
    assert!(
        (back.elapsed.as_secs_f64() - result.stats.elapsed.as_secs_f64()).abs() < 1e-9,
        "elapsed must survive the f64 round-trip"
    );
}

#[test]
fn corrupt_stats_elapsed_is_rejected_not_a_panic() {
    // `elapsed` travels as f64 seconds; untrusted JSON can carry values
    // `Duration::from_secs_f64` would panic on. They must surface as
    // serde errors.
    let good = serde_json::to_string(&social_ties::MinerStats::default()).unwrap();
    let (prefix, _) = good.split_once("\"elapsed\"").unwrap();
    for bad in ["-1.0", "-1e-9", "1e300"] {
        let json = format!("{prefix}\"elapsed\":{bad}}}");
        let r: Result<social_ties::MinerStats, _> = serde_json::from_str(&json);
        assert!(r.is_err(), "elapsed={bad} must be rejected");
    }
}

#[test]
fn measures_serialize() {
    let g = social_ties::toy_network();
    let gr = GrBuilder::new(g.schema())
        .l("SEX", "F")
        .r("SEX", "M")
        .build()
        .unwrap();
    let m = query::evaluate(&g, &gr);
    let json = serde_json::to_string(&m).unwrap();
    let back: query::GrMeasures = serde_json::from_str(&json).unwrap();
    assert_eq!(back, m);
}
