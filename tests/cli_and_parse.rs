//! The `grmine` CLI and the GR text parser, end to end: generate a graph,
//! inspect it, mine it, and re-query a mined GR — all through the shipped
//! binary and the parse API.

use social_ties::core::{parse_gr, query};
use social_ties::{toy_network, GrMiner, MinerConfig};
use std::process::Command;

fn grmine() -> Command {
    Command::new(env!("CARGO_BIN_EXE_grmine"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("grmine-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn parser_round_trips_every_mined_gr() {
    let g = toy_network();
    let s = g.schema();
    let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.0, 500)).mine();
    assert!(!result.top.is_empty());
    for x in &result.top {
        let text = x.gr.display(s);
        let parsed = parse_gr(s, &text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(parsed, x.gr, "parse(display(gr)) == gr for {text}");
        // And the parsed GR re-queries to the same counts.
        let m = query::evaluate(&g, &parsed);
        assert_eq!(m.supp, x.supp);
        assert_eq!(m.supp_lw, x.supp_lw);
        assert_eq!(m.heff, x.heff);
    }
}

#[test]
fn cli_gen_info_mine_query_pipeline() {
    let path = tmp("pipeline.grm");
    let out = grmine()
        .args([
            "gen",
            "dblp",
            path.to_str().unwrap(),
            "--scale",
            "0.03",
            "--seed",
            "5",
        ])
        .output()
        .expect("gen runs");
    assert!(out.status.success(), "gen failed: {out:?}");

    let out = grmine()
        .args(["info", path.to_str().unwrap()])
        .output()
        .expect("info runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Area (|A|=4, homophily)"));
    assert!(text.contains("compact model:"));

    let out = grmine()
        .args([
            "mine",
            path.to_str().unwrap(),
            "--k",
            "5",
            "--min-supp",
            "3",
        ])
        .output()
        .expect("mine runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("metric nhp"), "got: {text}");

    let out = grmine()
        .args([
            "query",
            path.to_str().unwrap(),
            "(Productivity:Fair) -> (Productivity:Poor)",
        ])
        .output()
        .expect("query runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("supp="), "got: {text}");
}

#[test]
fn cli_mine_json_is_parseable() {
    let path = tmp("json.grm");
    assert!(grmine()
        .args(["gen", "dblp", path.to_str().unwrap(), "--scale", "0.03"])
        .output()
        .unwrap()
        .status
        .success());
    let out = grmine()
        .args([
            "mine",
            path.to_str().unwrap(),
            "--k",
            "3",
            "--min-supp",
            "3",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let parsed: Vec<social_ties::ScoredGr> =
        serde_json::from_slice(&out.stdout).expect("valid JSON results");
    assert!(parsed.len() <= 3);
}

#[test]
fn cli_stats_json_pins_the_counter_schema() {
    let path = tmp("stats.grm");
    assert!(grmine()
        .args(["gen", "dblp", path.to_str().unwrap(), "--scale", "0.03"])
        .output()
        .unwrap()
        .status
        .success());
    let out = grmine()
        .args([
            "mine",
            path.to_str().unwrap(),
            "--k",
            "5",
            "--min-supp",
            "3",
            "--stats-json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    // Stdout is exactly one flat JSON object with the pinned key set.
    // (All values are numbers, so every quoted token followed by `:` is a
    // key — the vendored serde_json has no raw-Value parse.)
    let text = String::from_utf8(out.stdout.clone()).unwrap();
    assert!(text.trim_start().starts_with('{') && text.trim_end().ends_with('}'));
    let mut keys: Vec<String> = Vec::new();
    let mut rest = text.as_str();
    while let Some(start) = rest.find('"') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('"') else { break };
        let tail = &after[end + 1..];
        if tail.trim_start().starts_with(':') {
            keys.push(after[..end].to_string());
        }
        rest = tail;
    }
    keys.sort_unstable();
    assert_eq!(
        keys,
        vec![
            "accepted",
            "bound_tightenings",
            "cache_coalesced",
            "cache_hits",
            "cancel_checks",
            "elapsed",
            "faults_injected",
            "fused_passes",
            "grs_examined",
            "heff_scans",
            "kernel_batches",
            "partition_passes",
            "partitions_examined",
            "pruned_by_score",
            "pruned_by_supp",
            "rejected_generality",
            "rejected_trivial",
            "requests_served",
            "requests_shed",
            "scratch_bytes_peak",
            "shard_evictions",
            "shard_loads",
            "shard_resident_bytes_peak",
            "shards_built",
            "spill_retries",
            "subtree_splits",
            "tasks_stolen",
        ],
        "MinerStats JSON schema changed — update consumers and this pin"
    );
    // The partition-engine counters are live, and it round-trips.
    let stats: social_ties::MinerStats = serde_json::from_slice(&out.stdout).unwrap();
    assert!(stats.partition_passes > 0);
    assert!(stats.scratch_bytes_peak > 0);
    assert!(stats.fused_passes <= stats.partition_passes);
    assert!(stats.kernel_batches > 0, "the counting kernel is live");
    // The human report still arrives, on stderr.
    assert!(String::from_utf8_lossy(&out.stderr).contains("score="));

    // --stats-json refuses to share stdout with --json.
    let out = grmine()
        .args([
            "mine",
            path.to_str().unwrap(),
            "--min-supp",
            "3",
            "--stats-json",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(!out.stderr.is_empty());

    // --no-fuse (the ablation toggle) zeroes fused_passes but must not
    // change the mined results.
    let run = |extra: &[&str]| {
        let mut a = vec![
            "mine",
            path.to_str().unwrap(),
            "--k",
            "5",
            "--min-supp",
            "3",
            "--stats-json",
        ];
        a.extend_from_slice(extra);
        let out = grmine().args(&a).output().unwrap();
        assert!(out.status.success());
        let stats: social_ties::MinerStats = serde_json::from_slice(&out.stdout).unwrap();
        (stats, String::from_utf8_lossy(&out.stderr).to_string())
    };
    let (fused, fused_report) = run(&[]);
    let (unfused, unfused_report) = run(&["--no-fuse"]);
    assert_eq!(unfused.fused_passes, 0);
    assert_eq!(fused.semantic(), unfused.semantic());
    assert_eq!(fused_report, unfused_report);

    // --no-kernel (the scalar_kernel_off ablation toggle) zeroes
    // kernel_batches but must not change the mined results either.
    let (scalar, scalar_report) = run(&["--no-kernel"]);
    assert_eq!(scalar.kernel_batches, 0);
    assert_eq!(fused.semantic(), scalar.semantic());
    assert_eq!(fused_report, scalar_report);

    // The parallel engine flags: `--threads` (alias of `--parallel`)
    // surfaces the engine settings on stderr in --stats-json mode and
    // must reproduce the sequential static report; `--no-steal` and
    // `--split-depth 0` degrade to the static-queue engine. The
    // sequential run never reports engine settings.
    assert!(!fused_report.contains("engine:"));
    let ranked = |report: &str| {
        report
            .lines()
            .filter(|l| !l.starts_with("engine:"))
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    let (seq_static, _) = run(&["--no-dynamic"]);
    let (par_stats, par_report) = run(&["--threads", "2", "--no-dynamic"]);
    assert!(par_report.contains("engine: threads=2 steal=true"));
    assert!(par_report.contains("dynamic=false"));
    // The static enumeration is identical to sequential-static (collect
    // mode only defers generality, so `accepted` legitimately counts
    // pre-filter; the dynamic `fused` baseline prunes more).
    assert_eq!(par_stats.grs_examined, seq_static.grs_examined);
    assert_eq!(
        par_stats.partitions_examined,
        seq_static.partitions_examined
    );
    assert_eq!(par_stats.pruned_by_supp, seq_static.pruned_by_supp);
    assert_eq!(
        ranked(&par_report),
        ranked(&fused_report),
        "parallel static report must match sequential"
    );
    let (_, nosteal_report) = run(&["--threads", "2", "--no-steal", "--split-depth", "0"]);
    assert!(nosteal_report.contains("engine: threads=2 steal=false split_depth=0"));
    // Dynamic parallel (the default) matches the static results too —
    // the exactness-verified post-pass at the CLI surface.
    let (dyn_stats, dyn_report) = run(&["--threads", "2"]);
    assert!(dyn_report.contains("dynamic=true"));
    assert_eq!(
        ranked(&dyn_report),
        ranked(&fused_report),
        "dynamic parallel results must match static"
    );
    // Work counters may differ under the bound, but never the results.
    assert!(dyn_stats.grs_examined <= par_stats.grs_examined);

    // Conflicting aliases are rejected.
    let out = grmine()
        .args([
            "mine",
            path.to_str().unwrap(),
            "--parallel",
            "2",
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn cli_sharded_mine_matches_in_core() {
    let path = tmp("sharded.grm");
    assert!(grmine()
        .args(["gen", "dblp", path.to_str().unwrap(), "--scale", "0.05"])
        .output()
        .unwrap()
        .status
        .success());
    let run = |extra: &[&str]| -> Vec<social_ties::ScoredGr> {
        let mut args = vec![
            "mine",
            path.to_str().unwrap(),
            "--k",
            "5",
            "--min-supp",
            "5",
            "--json",
        ];
        args.extend_from_slice(extra);
        let out = grmine().args(&args).output().unwrap();
        assert!(out.status.success(), "{out:?}");
        serde_json::from_slice(&out.stdout).unwrap()
    };
    // The exactness anchor is the static sequential mine: sequential
    // *dynamic* may add extra entries (the documented generality corner
    // case), while the sharded engine — like the parallel one — verifies
    // its way back to the static Definition-5 output even with the
    // dynamic bound on.
    let plain = run(&["--no-dynamic"]);
    // Sharded runs — sequential, multi-worker, budgeted, dynamic and
    // static — all bit-identical to the in-core static mine.
    assert_eq!(plain, run(&["--shards", "3"]));
    assert_eq!(plain, run(&["--shards", "3", "--threads", "2"]));
    assert_eq!(plain, run(&["--shards", "2", "--no-dynamic"]));
    assert_eq!(
        plain,
        run(&["--shards", "3", "--memory-budget", "100000000"])
    );

    // The sharded engine echoes its settings (and the shard counters are
    // live) in --stats-json mode.
    let out = grmine()
        .args([
            "mine",
            path.to_str().unwrap(),
            "--k",
            "5",
            "--min-supp",
            "5",
            "--shards",
            "3",
            "--stats-json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("engine: sharded shards=3 threads=1 budget=none dynamic=true"),
        "got: {stderr}"
    );
    let stats: social_ties::MinerStats = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(stats.shards_built, 3);
    assert!(stats.shard_loads > 0);
    assert!(stats.shard_resident_bytes_peak > 0);
}

#[test]
fn cli_sharded_flag_validation() {
    let path = tmp("shardedflags.grm");
    assert!(grmine()
        .args(["gen", "dblp", path.to_str().unwrap(), "--scale", "0.03"])
        .output()
        .unwrap()
        .status
        .success());
    let p = path.to_str().unwrap();
    // Degenerate values, orphaned/conflicting flags, and metrics that
    // need a global RHS marginal are all rejected loudly.
    for bad in [
        vec!["mine", p, "--shards", "0"],
        vec!["mine", p, "--shards", "two"],
        vec!["mine", p, "--memory-budget", "1000000"],
        vec!["mine", p, "--shards", "2", "--memory-budget", "0"],
        vec!["mine", p, "--shards", "2", "--memory-budget", "lots"],
        vec!["mine", p, "--shards", "2", "--no-steal", "--threads", "2"],
        vec!["mine", p, "--shards", "2", "--baseline-bl1"],
        vec![
            "mine",
            p,
            "--shards",
            "2",
            "--metric",
            "lift",
            "--min-score",
            "1.0",
        ],
    ] {
        let out = grmine().args(&bad).output().unwrap();
        assert!(!out.status.success(), "expected failure for {bad:?}");
        assert!(!out.stderr.is_empty(), "expected stderr for {bad:?}");
    }
    // An impossible budget fails *eagerly* — at pool construction, before
    // any worker runs — with the minimum viable budget in the message.
    let out = grmine()
        .args(["mine", p, "--shards", "2", "--memory-budget", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--memory-budget"), "got: {stderr}");
    assert!(stderr.contains("minimum viable budget"), "got: {stderr}");
}

#[test]
fn cli_rejects_bad_input() {
    assert!(!grmine()
        .args(["mine", "/nonexistent.grm"])
        .output()
        .unwrap()
        .status
        .success());
    assert!(!grmine()
        .args(["gen", "nope", "/tmp/x.grm"])
        .output()
        .unwrap()
        .status
        .success());
    assert!(!grmine().args(["bogus"]).output().unwrap().status.success());

    let path = tmp("badquery.grm");
    assert!(grmine()
        .args(["gen", "dblp", path.to_str().unwrap(), "--scale", "0.03"])
        .output()
        .unwrap()
        .status
        .success());
    assert!(!grmine()
        .args(["query", path.to_str().unwrap(), "(Nope:1) -> (Area:DB)"])
        .output()
        .unwrap()
        .status
        .success());
}

#[test]
fn cli_rejects_malformed_flag_values() {
    let path = tmp("flags.grm");
    assert!(grmine()
        .args(["gen", "dblp", path.to_str().unwrap(), "--scale", "0.03"])
        .output()
        .unwrap()
        .status
        .success());

    // A present numeric flag with a bad, missing, or degenerate value
    // must fail loudly, not silently fall back to a default (or worse,
    // run a meaningless configuration: `--k 0` would select nothing,
    // `--min-supp 0` would disable support pruning, and negative values
    // must die in the unsigned parse).
    for bad in [
        vec!["mine", path.to_str().unwrap(), "--min-supp", "three"],
        vec!["mine", path.to_str().unwrap(), "--k", "many"],
        vec!["mine", path.to_str().unwrap(), "--min-score", "high"],
        vec!["mine", path.to_str().unwrap(), "--parallel", "all"],
        vec!["mine", path.to_str().unwrap(), "--k"],
        vec!["mine", path.to_str().unwrap(), "--k", "0"],
        vec!["mine", path.to_str().unwrap(), "--k", "-1"],
        vec!["mine", path.to_str().unwrap(), "--min-supp", "0"],
        vec!["mine", path.to_str().unwrap(), "--min-supp", "-3"],
        vec!["mine", path.to_str().unwrap(), "--split-depth", "-1"],
        vec!["gen", "dblp", "/tmp/x.grm", "--scale", "big"],
        vec!["gen", "dblp", "/tmp/x.grm", "--scale", "0"],
        vec!["gen", "dblp", "/tmp/x.grm", "--seed", "yes"],
        vec!["mine", path.to_str().unwrap(), "--metric", "vibes"],
    ] {
        let out = grmine().args(&bad).output().unwrap();
        assert!(
            !out.status.success(),
            "expected failure for {bad:?}, got: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        assert!(
            !out.stderr.is_empty(),
            "expected a message on stderr for {bad:?}"
        );
    }
}

#[test]
fn cli_threads_zero_is_documented_auto_detect() {
    // `--threads 0` means "auto-detect available parallelism" — a
    // documented degenerate value, not an error and never a panic. The
    // engine echo reports it as `auto`.
    let path = tmp("threads0.grm");
    assert!(grmine()
        .args(["gen", "dblp", path.to_str().unwrap(), "--scale", "0.03"])
        .output()
        .unwrap()
        .status
        .success());
    let out = grmine()
        .args([
            "mine",
            path.to_str().unwrap(),
            "--k",
            "5",
            "--min-supp",
            "3",
            "--threads",
            "0",
            "--stats-json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "--threads 0 must run: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("engine: threads=auto"), "got: {stderr}");
}

#[test]
fn cli_timeout_cancels_each_engine_and_validates_strictly() {
    let path = tmp("timeout.grm");
    assert!(grmine()
        .args(["gen", "dblp", path.to_str().unwrap(), "--scale", "0.03"])
        .output()
        .unwrap()
        .status
        .success());
    let p = path.to_str().unwrap();

    // Malformed / conflicting uses fail loudly (exit 2, usage error).
    for bad in [
        vec!["mine", p, "--timeout", "soon"],
        vec!["mine", p, "--timeout", "-5"],
        vec!["mine", p, "--timeout"],
        vec!["mine", p, "--timeout", "100", "--baseline-bl1"],
        vec!["mine", p, "--timeout", "100", "--baseline-bl2"],
    ] {
        let out = grmine().args(&bad).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "expected usage error for {bad:?}"
        );
        assert!(!out.stderr.is_empty(), "expected stderr for {bad:?}");
    }

    // `--timeout 0` is an already-expired deadline: every cancellable
    // engine must return the typed cancellation (exit 1, "cancelled" on
    // stderr) instead of panicking or mining to completion.
    for engine in [
        vec![],
        vec!["--threads", "2"],
        vec!["--shards", "2"],
        vec!["--shards", "2", "--threads", "2"],
    ] {
        let mut args = vec!["mine", p, "--min-supp", "3", "--timeout", "0"];
        args.extend_from_slice(&engine);
        let out = grmine().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(1), "engine {engine:?}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("cancelled"), "engine {engine:?}: {stderr}");
    }

    // In --stats-json mode a cancelled mine still honors the stdout
    // contract: one JSON document with the drained partial counters.
    let out = grmine()
        .args([
            "mine",
            p,
            "--min-supp",
            "3",
            "--timeout",
            "0",
            "--stats-json",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let partial: social_ties::MinerStats = serde_json::from_slice(&out.stdout).unwrap();
    assert!(partial.cancel_checks > 0, "the drain carried its counters");

    // A generous deadline changes nothing: same results as no deadline.
    let run = |extra: &[&str]| -> Vec<social_ties::ScoredGr> {
        let mut args = vec!["mine", p, "--k", "5", "--min-supp", "3", "--json"];
        args.extend_from_slice(extra);
        let out = grmine().args(&args).output().unwrap();
        assert!(out.status.success(), "{out:?}");
        serde_json::from_slice(&out.stdout).unwrap()
    };
    assert_eq!(run(&[]), run(&["--timeout", "600000"]));
}

#[test]
fn cli_rejects_corrupt_graph_file() {
    let path = tmp("corrupt.grm");
    std::fs::write(&path, "this is not a GRMGRAPH file\n").unwrap();
    for cmd in ["mine", "info"] {
        let out = grmine()
            .args([cmd, path.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(!out.status.success(), "{cmd} accepted a corrupt file");
        assert!(!out.stderr.is_empty());
    }
}

#[test]
fn cli_parallel_and_baseline_modes_agree() {
    let path = tmp("modes.grm");
    assert!(grmine()
        .args(["gen", "dblp", path.to_str().unwrap(), "--scale", "0.05"])
        .output()
        .unwrap()
        .status
        .success());
    let run = |extra: &[&str]| -> Vec<social_ties::ScoredGr> {
        let mut args = vec![
            "mine",
            path.to_str().unwrap(),
            "--k",
            "5",
            "--min-supp",
            "5",
            "--no-dynamic",
            "--json",
        ];
        args.extend_from_slice(extra);
        let out = grmine().args(&args).output().unwrap();
        assert!(out.status.success());
        serde_json::from_slice(&out.stdout).unwrap()
    };
    let plain = run(&[]);
    let parallel = run(&["--parallel", "2"]);
    let bl1 = run(&["--baseline-bl1"]);
    let bl2 = run(&["--baseline-bl2"]);
    let keys = |v: &[social_ties::ScoredGr]| -> Vec<(social_ties::Gr, u64)> {
        v.iter().map(|x| (x.gr.clone(), x.supp)).collect()
    };
    assert_eq!(keys(&plain), keys(&parallel));
    assert_eq!(keys(&plain), keys(&bl1));
    assert_eq!(keys(&plain), keys(&bl2));
}
