//! The §IV-A storage claim: the compact LArray/EArray/RArray model
//! eliminates the `|E| × 2 × #AttrV` bottleneck of the single-table
//! representation.

use social_ties::datagen::pokec_config_scaled;
use social_ties::generate;
use social_ties::graph::{CompactModel, SingleTable};

#[test]
fn formulas_match_the_paper() {
    let g = generate(&pokec_config_scaled(0.01)).unwrap();
    let v = g.node_count();
    let e = g.edge_count();
    let na = g.schema().node_attr_count();
    let ea = g.schema().edge_attr_count();

    let st = SingleTable::build(&g);
    assert_eq!(
        st.cells(),
        e * (2 * na + ea),
        "single table: |E|(2#AttrV+#AttrE)"
    );

    let cm = CompactModel::build(&g);
    assert_eq!(
        cm.cells_paper_formula(),
        v * (na + 2) + e * (ea + 1) + v * na,
        "compact: |V|(#AttrV+2) + |E|(#AttrE+1) + |V|#AttrV"
    );
    // Actual cells use only rows with nonzero degree.
    assert!(cm.cells() <= cm.cells_paper_formula());
}

#[test]
fn compact_model_is_much_smaller_on_dense_graphs() {
    // Pokec-like: 6 node attrs, no edge attrs, avg degree ~12. The
    // single-table term |E|·2·#AttrV dominates.
    let g = generate(&pokec_config_scaled(0.01)).unwrap();
    let st = SingleTable::build(&g).cells();
    let cm = CompactModel::build(&g).cells();
    assert!(
        (cm as f64) < (st as f64) / 3.0,
        "compact {cm} cells vs single-table {st} cells"
    );
}

#[test]
fn sparse_graph_still_no_worse_than_single_table_bottleneck() {
    // Even at low density the compact model's edge term stays
    // |E|·(#AttrE+1) versus the single table's |E|·(2·#AttrV+#AttrE).
    let cfg = {
        let mut c = pokec_config_scaled(0.01);
        c.edges = c.nodes; // avg degree 1
        c
    };
    let g = generate(&cfg).unwrap();
    let st = SingleTable::build(&g);
    let cm = CompactModel::build(&g);
    let edge_term_compact = g.edge_count() * (g.schema().edge_attr_count() + 1);
    let edge_term_single =
        g.edge_count() * (2 * g.schema().node_attr_count() + g.schema().edge_attr_count());
    assert!(edge_term_compact < edge_term_single);
    // Zero-degree nodes are dropped from LArray/RArray (§IV-A).
    assert!(cm.lrow_count() <= g.node_count());
    assert!(cm.rrow_count() <= g.node_count());
    assert!(cm.cells() > 0 && st.cells() > 0);
}
