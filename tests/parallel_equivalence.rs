//! Parallel-vs-sequential equivalence (the collect-mode guarantee of
//! `grm_core::parallel`): `mine_parallel` — with and without dominant
//! root-task splitting, at 2 and 4 threads — must return bit-identical
//! `top` to the sequential static-threshold `GrMiner::mine`, on the
//! Fig. 1 toy network and on a Pokec-like workload whose high-cardinality
//! `Region` dimension is exactly the dominant-task case splitting exists
//! for.

use social_ties::core::parallel::{mine_parallel, mine_parallel_with_opts, ParallelOptions};
use social_ties::core::Dims;
use social_ties::datagen::pokec_config_scaled;
use social_ties::{generate, toy_network, GrMiner, MinerConfig, SocialGraph};

fn assert_parallel_matches_sequential(g: &SocialGraph, cfg: &MinerConfig, label: &str) {
    let cfg = cfg.clone().without_dynamic_topk();
    let seq = GrMiner::new(g, cfg.clone()).mine();
    let dims = Dims::all(g.schema());
    for threads in [2usize, 4] {
        for split_dominant in [false, true] {
            let par = mine_parallel_with_opts(
                g,
                &cfg,
                &dims,
                ParallelOptions {
                    threads,
                    split_dominant,
                },
            );
            assert_eq!(
                seq.top, par.top,
                "{label}: parallel diverged (threads {threads}, split {split_dominant})"
            );
        }
    }
}

#[test]
fn toy_network_bit_identical() {
    let g = toy_network();
    for cfg in [
        MinerConfig::nhp(1, 0.5, 10),
        MinerConfig::nhp(1, 0.0, 100),
        MinerConfig::conf(1, 0.4, 20),
    ] {
        assert_parallel_matches_sequential(&g, &cfg, "toy");
    }
}

#[test]
fn pokec_like_bit_identical() {
    let g = generate(&pokec_config_scaled(0.02)).unwrap();
    assert!(g.edge_count() > 0);
    let min_supp = (g.edge_count() as u64 / 1000).max(1);
    for cfg in [
        MinerConfig::nhp(min_supp, 0.5, 50),
        MinerConfig::conf(min_supp, 0.5, 50),
    ] {
        assert_parallel_matches_sequential(&g, &cfg, "pokec");
    }
}

#[test]
fn oversubscribed_and_degenerate_pools_on_pokec_like_workload() {
    // Satellite coverage for the shared-context miner: a pool far larger
    // than the task list (32), a single-thread pool, and both
    // split_dominant settings must stay bit-identical to sequential and
    // counters-identical to each other on the workload whose dominant
    // `Region` dimension the splitter targets.
    let g = generate(&pokec_config_scaled(0.01)).unwrap();
    let cfg = MinerConfig::nhp(5, 0.5, 25).without_dynamic_topk();
    let seq = GrMiner::new(&g, cfg.clone()).mine();
    let dims = Dims::all(g.schema());
    let mut counters: Option<social_ties::MinerStats> = None;
    for threads in [1usize, 2, 32] {
        for split_dominant in [false, true] {
            let mut par = mine_parallel_with_opts(
                &g,
                &cfg,
                &dims,
                ParallelOptions {
                    threads,
                    split_dominant,
                },
            );
            assert_eq!(seq.top, par.top, "threads {threads} split {split_dominant}");
            par.stats.elapsed = std::time::Duration::ZERO;
            match &counters {
                None => counters = Some(par.stats),
                Some(c) => assert_eq!(
                    c, &par.stats,
                    "counters diverged at threads {threads} split {split_dominant}"
                ),
            }
        }
    }
}

#[test]
fn default_entry_point_splits_and_matches() {
    // `mine_parallel` (splitting on by default) equals sequential too.
    let g = generate(&pokec_config_scaled(0.01)).unwrap();
    let cfg = MinerConfig::nhp(5, 0.5, 25).without_dynamic_topk();
    let seq = GrMiner::new(&g, cfg.clone()).mine();
    for threads in [2usize, 4] {
        let par = mine_parallel(&g, &cfg, threads);
        assert_eq!(seq.top, par.top, "threads {threads}");
    }
}
