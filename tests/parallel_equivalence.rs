//! Parallel-vs-sequential equivalence for the work-stealing engine: the
//! full matrix of 1/2/4/8 threads × steal on/off × split-depth
//! {0, default} must return bit-identical `top` AND identical
//! `MinerStats::semantic()` under the static threshold, on the Fig. 1
//! toy network and the Pokec-like / DBLP-like workloads. Dynamic mode
//! (the shared top-k bound + exactness-verified post-pass) must *also*
//! be bit-identical to the static Definition-5 semantics — the
//! engine-level guarantee that pruning only ever removes work, never
//! results.

use social_ties::core::parallel::{
    mine_parallel, mine_parallel_traced, mine_parallel_with_opts, ParallelOptions,
    DEFAULT_SPLIT_DEPTH,
};
use social_ties::core::Dims;
use social_ties::datagen::{dblp_config_scaled, pokec_config_scaled};
use social_ties::{generate, toy_network, GrMiner, MinerConfig, SocialGraph};

/// The engine matrix of the tentpole acceptance criteria. `split_min` is
/// pinned to 1 in the splitting cells so the small fixtures actually
/// exercise subtree detachment (the production heuristic would skip
/// them).
fn engine_matrix() -> Vec<ParallelOptions> {
    let mut m = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        for steal in [false, true] {
            for (split_depth, split_min) in [(0usize, 0usize), (DEFAULT_SPLIT_DEPTH, 1)] {
                m.push(ParallelOptions {
                    threads,
                    steal,
                    split_depth,
                    split_min,
                    ..ParallelOptions::default()
                });
            }
        }
    }
    m
}

fn assert_matrix_matches_sequential(g: &SocialGraph, cfg: &MinerConfig, label: &str) {
    let cfg = cfg.clone().without_dynamic_topk();
    let seq = GrMiner::new(g, cfg.clone()).mine();
    let dims = Dims::all(g.schema());
    let mut counters: Option<social_ties::MinerStats> = None;
    for opts in engine_matrix() {
        let par = mine_parallel_with_opts(g, &cfg, &dims, opts);
        assert_eq!(seq.top, par.top, "{label}: parallel diverged ({opts:?})");
        let sem = par.stats.semantic();
        match &counters {
            None => counters = Some(sem),
            Some(c) => assert_eq!(c, &sem, "{label}: semantic counters diverged ({opts:?})"),
        }
    }
}

/// Dynamic mode: shared bound + verified post-pass must reproduce the
/// static Definition-5 output exactly, and the published bound must
/// never exceed the true k-th score of the result.
fn assert_dynamic_matches_static(g: &SocialGraph, cfg: &MinerConfig, label: &str) {
    assert!(cfg.dynamic_topk, "{label}: fixture must exercise the bound");
    let seq_static = GrMiner::new(g, cfg.clone().without_dynamic_topk()).mine();
    let dims = Dims::all(g.schema());
    for threads in [2usize, 4, 8] {
        let opts = ParallelOptions {
            threads,
            split_min: 1,
            ..ParallelOptions::default()
        };
        let (par, bound) = mine_parallel_traced(g, cfg, &dims, opts);
        assert_eq!(
            seq_static.top, par.top,
            "{label}: dynamic parallel deviated from static semantics (threads {threads})"
        );
        if let Some(b) = bound {
            assert_eq!(par.top.len(), cfg.k, "{label}: bound implies a full top-k");
            let kth = par.top.last().unwrap().score;
            assert!(
                b <= kth + 1e-12,
                "{label}: shared bound {b} exceeds the k-th score {kth}"
            );
        }
    }
}

#[test]
fn toy_network_bit_identical() {
    let g = toy_network();
    for cfg in [
        MinerConfig::nhp(1, 0.5, 10),
        MinerConfig::nhp(1, 0.0, 100),
        MinerConfig::conf(1, 0.4, 20),
    ] {
        assert_matrix_matches_sequential(&g, &cfg, "toy");
    }
    assert_dynamic_matches_static(&g, &MinerConfig::nhp(1, 0.2, 5), "toy");
}

#[test]
fn pokec_like_bit_identical() {
    let g = generate(&pokec_config_scaled(0.02)).unwrap();
    assert!(g.edge_count() > 0);
    let min_supp = (g.edge_count() as u64 / 1000).max(1);
    for cfg in [
        MinerConfig::nhp(min_supp, 0.5, 50),
        MinerConfig::conf(min_supp, 0.5, 50),
    ] {
        assert_matrix_matches_sequential(&g, &cfg, "pokec");
    }
    assert_dynamic_matches_static(&g, &MinerConfig::nhp(min_supp, 0.5, 25), "pokec");
}

#[test]
fn dblp_like_bit_identical() {
    let g = generate(&dblp_config_scaled(0.05)).unwrap();
    assert!(g.edge_count() > 0);
    assert_matrix_matches_sequential(&g, &MinerConfig::nhp(3, 0.5, 50), "dblp");
    assert_dynamic_matches_static(&g, &MinerConfig::nhp(3, 0.5, 20), "dblp");
}

#[test]
fn stealing_and_splitting_engage_on_skewed_workloads() {
    // The counters must show the engine actually working: with the
    // production split heuristic forced on (split_min 1) and several
    // workers on the Region-skewed Pokec workload, subtrees are detached
    // and stolen.
    let g = generate(&pokec_config_scaled(0.02)).unwrap();
    let cfg = MinerConfig::nhp(5, 0.5, 25).without_dynamic_topk();
    let par = mine_parallel_with_opts(
        &g,
        &cfg,
        &Dims::all(g.schema()),
        ParallelOptions {
            threads: 4,
            split_min: 1,
            ..ParallelOptions::default()
        },
    );
    assert!(par.stats.subtree_splits > 0, "no subtree was ever detached");
    assert!(par.stats.tasks_stolen > 0, "no task was ever stolen");
}

#[test]
fn oversubscribed_and_degenerate_pools_on_pokec_like_workload() {
    // Satellite coverage for the shared-context miner: a pool far larger
    // than the task list (32), a single-thread pool, and both
    // split_dominant settings must stay bit-identical to sequential and
    // semantic-counters-identical to each other on the workload whose
    // dominant `Region` dimension the splitter targets. (The work
    // counters — partition passes, scratch peak, steals, splits, elapsed
    // — legitimately vary with the execution strategy.)
    let g = generate(&pokec_config_scaled(0.01)).unwrap();
    let cfg = MinerConfig::nhp(5, 0.5, 25).without_dynamic_topk();
    let seq = GrMiner::new(&g, cfg.clone()).mine();
    let dims = Dims::all(g.schema());
    let mut counters: Option<social_ties::MinerStats> = None;
    for threads in [1usize, 2, 32] {
        for split_dominant in [false, true] {
            let par = mine_parallel_with_opts(
                &g,
                &cfg,
                &dims,
                ParallelOptions {
                    threads,
                    split_dominant,
                    ..ParallelOptions::default()
                },
            );
            assert_eq!(seq.top, par.top, "threads {threads} split {split_dominant}");
            let sem = par.stats.semantic();
            match &counters {
                None => counters = Some(sem),
                Some(c) => assert_eq!(
                    c, &sem,
                    "counters diverged at threads {threads} split {split_dominant}"
                ),
            }
        }
    }
}

/// The fused partition engine on all three fixture families: sequential
/// fused vs unfused must be bit-identical in `top` AND in every counter
/// except `fused_passes` itself, and the parallel miner at 1/2/4 threads
/// must reproduce the sequential `top` with thread-invariant semantic
/// counters. Pins the tentpole guarantee end to end.
#[test]
fn fused_engine_bit_identical_on_toy_pokec_dblp() {
    let workloads: Vec<(&str, SocialGraph, MinerConfig)> = vec![
        (
            "toy",
            toy_network(),
            MinerConfig::nhp(1, 0.0, 100).without_dynamic_topk(),
        ),
        (
            "pokec",
            generate(&pokec_config_scaled(0.02)).unwrap(),
            MinerConfig::nhp(5, 0.5, 50).without_dynamic_topk(),
        ),
        (
            "dblp",
            generate(&dblp_config_scaled(0.05)).unwrap(),
            MinerConfig::nhp(3, 0.5, 50).without_dynamic_topk(),
        ),
    ];
    let mut fused_somewhere = 0u64;
    for (label, g, cfg) in &workloads {
        let fused = GrMiner::new(g, cfg.clone()).mine();
        let unfused = GrMiner::new(g, cfg.clone().without_fused_partitions()).mine();
        assert_eq!(fused.top, unfused.top, "{label}: fusion changed results");
        assert_eq!(
            fused.stats.semantic(),
            unfused.stats.semantic(),
            "{label}: fusion changed semantic counters"
        );
        // Fusion rearranges work; it never adds or removes passes.
        assert_eq!(
            fused.stats.partition_passes, unfused.stats.partition_passes,
            "{label}: fusion changed the pass count"
        );
        assert_eq!(unfused.stats.fused_passes, 0);
        assert!(fused.stats.partition_passes > 0);
        assert!(fused.stats.scratch_bytes_peak > 0);
        fused_somewhere += fused.stats.fused_passes;

        let dims = Dims::all(g.schema());
        let mut par_counters: Option<social_ties::MinerStats> = None;
        for threads in [1usize, 2, 4] {
            let par = mine_parallel_with_opts(
                g,
                cfg,
                &dims,
                ParallelOptions {
                    threads,
                    ..ParallelOptions::default()
                },
            );
            assert_eq!(fused.top, par.top, "{label}: parallel {threads} diverged");
            let sem = par.stats.semantic();
            match &par_counters {
                None => par_counters = Some(sem),
                Some(c) => assert_eq!(c, &sem, "{label}: counters vary with threads"),
            }
        }
    }
    assert!(
        fused_somewhere > 0,
        "at least one workload must exercise the fused passes"
    );
}

#[test]
fn default_entry_point_splits_and_matches() {
    // `mine_parallel` (stealing, splitting and dominant-task chunking on
    // by default) equals sequential too.
    let g = generate(&pokec_config_scaled(0.01)).unwrap();
    let cfg = MinerConfig::nhp(5, 0.5, 25).without_dynamic_topk();
    let seq = GrMiner::new(&g, cfg.clone()).mine();
    for threads in [2usize, 4] {
        let par = mine_parallel(&g, &cfg, threads);
        assert_eq!(seq.top, par.top, "threads {threads}");
    }
}
