//! Parallel-vs-sequential equivalence (the collect-mode guarantee of
//! `grm_core::parallel`): `mine_parallel` — with and without dominant
//! root-task splitting, at 2 and 4 threads — must return bit-identical
//! `top` to the sequential static-threshold `GrMiner::mine`, on the
//! Fig. 1 toy network and on a Pokec-like workload whose high-cardinality
//! `Region` dimension is exactly the dominant-task case splitting exists
//! for.

use social_ties::core::parallel::{mine_parallel, mine_parallel_with_opts, ParallelOptions};
use social_ties::core::Dims;
use social_ties::datagen::pokec_config_scaled;
use social_ties::{generate, toy_network, GrMiner, MinerConfig, SocialGraph};

fn assert_parallel_matches_sequential(g: &SocialGraph, cfg: &MinerConfig, label: &str) {
    let cfg = cfg.clone().without_dynamic_topk();
    let seq = GrMiner::new(g, cfg.clone()).mine();
    let dims = Dims::all(g.schema());
    for threads in [2usize, 4] {
        for split_dominant in [false, true] {
            let par = mine_parallel_with_opts(
                g,
                &cfg,
                &dims,
                ParallelOptions {
                    threads,
                    split_dominant,
                },
            );
            assert_eq!(
                seq.top, par.top,
                "{label}: parallel diverged (threads {threads}, split {split_dominant})"
            );
        }
    }
}

#[test]
fn toy_network_bit_identical() {
    let g = toy_network();
    for cfg in [
        MinerConfig::nhp(1, 0.5, 10),
        MinerConfig::nhp(1, 0.0, 100),
        MinerConfig::conf(1, 0.4, 20),
    ] {
        assert_parallel_matches_sequential(&g, &cfg, "toy");
    }
}

#[test]
fn pokec_like_bit_identical() {
    let g = generate(&pokec_config_scaled(0.02)).unwrap();
    assert!(g.edge_count() > 0);
    let min_supp = (g.edge_count() as u64 / 1000).max(1);
    for cfg in [
        MinerConfig::nhp(min_supp, 0.5, 50),
        MinerConfig::conf(min_supp, 0.5, 50),
    ] {
        assert_parallel_matches_sequential(&g, &cfg, "pokec");
    }
}

#[test]
fn oversubscribed_and_degenerate_pools_on_pokec_like_workload() {
    // Satellite coverage for the shared-context miner: a pool far larger
    // than the task list (32), a single-thread pool, and both
    // split_dominant settings must stay bit-identical to sequential and
    // semantic-counters-identical to each other on the workload whose
    // dominant `Region` dimension the splitter targets. (The work
    // counters — partition passes, scratch peak, elapsed — legitimately
    // vary: each value chunk repeats the top-level counting-sort pass.)
    let g = generate(&pokec_config_scaled(0.01)).unwrap();
    let cfg = MinerConfig::nhp(5, 0.5, 25).without_dynamic_topk();
    let seq = GrMiner::new(&g, cfg.clone()).mine();
    let dims = Dims::all(g.schema());
    let mut counters: Option<social_ties::MinerStats> = None;
    for threads in [1usize, 2, 32] {
        for split_dominant in [false, true] {
            let par = mine_parallel_with_opts(
                &g,
                &cfg,
                &dims,
                ParallelOptions {
                    threads,
                    split_dominant,
                },
            );
            assert_eq!(seq.top, par.top, "threads {threads} split {split_dominant}");
            let sem = par.stats.semantic();
            match &counters {
                None => counters = Some(sem),
                Some(c) => assert_eq!(
                    c, &sem,
                    "counters diverged at threads {threads} split {split_dominant}"
                ),
            }
        }
    }
}

/// The fused partition engine on all three fixture families: sequential
/// fused vs unfused must be bit-identical in `top` AND in every counter
/// except `fused_passes` itself, and the parallel miner at 1/2/4 threads
/// must reproduce the sequential `top` with thread-invariant semantic
/// counters. Pins the tentpole guarantee end to end.
#[test]
fn fused_engine_bit_identical_on_toy_pokec_dblp() {
    use social_ties::datagen::dblp_config_scaled;
    let workloads: Vec<(&str, SocialGraph, MinerConfig)> = vec![
        (
            "toy",
            toy_network(),
            MinerConfig::nhp(1, 0.0, 100).without_dynamic_topk(),
        ),
        (
            "pokec",
            generate(&pokec_config_scaled(0.02)).unwrap(),
            MinerConfig::nhp(5, 0.5, 50).without_dynamic_topk(),
        ),
        (
            "dblp",
            generate(&dblp_config_scaled(0.05)).unwrap(),
            MinerConfig::nhp(3, 0.5, 50).without_dynamic_topk(),
        ),
    ];
    let mut fused_somewhere = 0u64;
    for (label, g, cfg) in &workloads {
        let fused = GrMiner::new(g, cfg.clone()).mine();
        let unfused = GrMiner::new(g, cfg.clone().without_fused_partitions()).mine();
        assert_eq!(fused.top, unfused.top, "{label}: fusion changed results");
        assert_eq!(
            fused.stats.semantic(),
            unfused.stats.semantic(),
            "{label}: fusion changed semantic counters"
        );
        // Fusion rearranges work; it never adds or removes passes.
        assert_eq!(
            fused.stats.partition_passes, unfused.stats.partition_passes,
            "{label}: fusion changed the pass count"
        );
        assert_eq!(unfused.stats.fused_passes, 0);
        assert!(fused.stats.partition_passes > 0);
        assert!(fused.stats.scratch_bytes_peak > 0);
        fused_somewhere += fused.stats.fused_passes;

        let dims = Dims::all(g.schema());
        let mut par_counters: Option<social_ties::MinerStats> = None;
        for threads in [1usize, 2, 4] {
            let par = mine_parallel_with_opts(
                g,
                cfg,
                &dims,
                ParallelOptions {
                    threads,
                    split_dominant: true,
                },
            );
            assert_eq!(fused.top, par.top, "{label}: parallel {threads} diverged");
            let sem = par.stats.semantic();
            match &par_counters {
                None => par_counters = Some(sem),
                Some(c) => assert_eq!(c, &sem, "{label}: counters vary with threads"),
            }
        }
    }
    assert!(
        fused_somewhere > 0,
        "at least one workload must exercise the fused passes"
    );
}

#[test]
fn default_entry_point_splits_and_matches() {
    // `mine_parallel` (splitting on by default) equals sequential too.
    let g = generate(&pokec_config_scaled(0.01)).unwrap();
    let cfg = MinerConfig::nhp(5, 0.5, 25).without_dynamic_topk();
    let seq = GrMiner::new(&g, cfg.clone()).mine();
    for threads in [2usize, 4] {
        let par = mine_parallel(&g, &cfg, threads);
        assert_eq!(seq.top, par.top, "threads {threads}");
    }
}
