//! The vectorized counting kernel is a pure execution strategy: on the
//! Fig. 1 toy network and the Pokec-like / DBLP-like workloads, the
//! kernel-backed miner must return bit-identical `top` and identical
//! `MinerStats::semantic()` to the scalar-loop miner — sequentially and
//! at 1/2/4 worker threads — with `kernel_batches` live exactly when
//! the kernels are on.

use social_ties::core::parallel::{mine_parallel_with_opts, ParallelOptions};
use social_ties::core::Dims;
use social_ties::datagen::{dblp_config_scaled, pokec_config_scaled};
use social_ties::{generate, toy_network, GrMiner, MinerConfig, SocialGraph};

fn assert_kernel_is_pure(g: &SocialGraph, cfg: &MinerConfig, label: &str) {
    let kernel_cfg = cfg.clone();
    let scalar_cfg = cfg.clone().without_kernel();
    let dims = Dims::all(g.schema());

    let seq_kernel = GrMiner::new(g, kernel_cfg.clone()).mine();
    let seq_scalar = GrMiner::new(g, scalar_cfg.clone()).mine();
    assert_eq!(
        seq_kernel.top, seq_scalar.top,
        "{label}: sequential kernel/scalar outputs diverged"
    );
    assert_eq!(
        seq_kernel.stats.semantic(),
        seq_scalar.stats.semantic(),
        "{label}: sequential semantic counters diverged"
    );
    assert_eq!(
        seq_scalar.stats.kernel_batches, 0,
        "{label}: scalar mode must not touch the kernels"
    );
    if g.edge_count() >= social_ties::graph::kernel::LANES {
        assert!(
            seq_kernel.stats.kernel_batches > 0,
            "{label}: kernel mode must batch"
        );
    }

    // Parallel matrix. Under the *static* threshold the enumeration is
    // fully deterministic, so outputs and semantic counters must both
    // match; in *dynamic* mode the shared bound makes the work counters
    // timing-dependent (and the sequential GRMiner(k) has the
    // documented Definition-5 nuance), so only outputs are compared —
    // between the kernel and scalar engines, which both pin the static
    // semantics.
    let static_kernel = kernel_cfg.clone().without_dynamic_topk();
    let static_scalar = scalar_cfg.clone().without_dynamic_topk();
    let seq_static = GrMiner::new(g, static_kernel.clone()).mine();
    for threads in [1usize, 2, 4] {
        let opts = ParallelOptions {
            threads,
            split_min: 1,
            ..ParallelOptions::default()
        };
        let par_kernel = mine_parallel_with_opts(g, &static_kernel, &dims, opts);
        let par_scalar = mine_parallel_with_opts(g, &static_scalar, &dims, opts);
        assert_eq!(
            par_kernel.top, par_scalar.top,
            "{label}: parallel kernel/scalar outputs diverged (threads {threads})"
        );
        assert_eq!(
            par_kernel.stats.semantic(),
            par_scalar.stats.semantic(),
            "{label}: parallel semantic counters diverged (threads {threads})"
        );
        assert_eq!(
            seq_static.top, par_kernel.top,
            "{label}: parallel kernel run diverged from sequential (threads {threads})"
        );
        assert_eq!(par_scalar.stats.kernel_batches, 0, "{label}");

        if cfg.dynamic_topk {
            let dyn_kernel = mine_parallel_with_opts(g, &kernel_cfg, &dims, opts);
            let dyn_scalar = mine_parallel_with_opts(g, &scalar_cfg, &dims, opts);
            assert_eq!(
                dyn_kernel.top, dyn_scalar.top,
                "{label}: dynamic kernel/scalar outputs diverged (threads {threads})"
            );
            assert_eq!(
                dyn_kernel.top, seq_static.top,
                "{label}: dynamic parallel deviated from static semantics (threads {threads})"
            );
        }
    }
}

#[test]
fn toy_network_kernel_equivalence() {
    let g = toy_network();
    for cfg in [
        MinerConfig::nhp(1, 0.5, 10),
        MinerConfig::nhp(1, 0.0, 100).without_dynamic_topk(),
        MinerConfig::conf(1, 0.4, 20),
    ] {
        assert_kernel_is_pure(&g, &cfg, "toy");
    }
}

#[test]
fn pokec_like_kernel_equivalence() {
    let g = generate(&pokec_config_scaled(0.02)).unwrap();
    assert!(g.edge_count() > 0);
    let min_supp = (g.edge_count() as u64 / 1000).max(1);
    assert_kernel_is_pure(&g, &MinerConfig::nhp(min_supp, 0.5, 50), "pokec");
}

#[test]
fn dblp_like_kernel_equivalence() {
    let g = generate(&dblp_config_scaled(0.05)).unwrap();
    assert!(g.edge_count() > 0);
    assert_kernel_is_pure(&g, &MinerConfig::nhp(3, 0.5, 50), "dblp");
}
