//! Recovery of planted beyond-homophily structure — the qualitative claim
//! of Table II: the nhp ranking surfaces the planted "secondary bonds"
//! that the confidence ranking misses, while the confidence ranking is
//! dominated by trivial homophily restatements.
//!
//! Run on reduced-scale Pokec-like / DBLP-like graphs (the harness bins
//! regenerate the full-scale tables).

use social_ties::core::query;
use social_ties::datagen::{dblp_config_scaled, pokec_config_scaled};
use social_ties::{generate, GrBuilder, GrMiner, MinerConfig, SocialGraph};

fn pokec_small() -> SocialGraph {
    generate(&pokec_config_scaled(0.05)).unwrap()
}

fn dblp_small() -> SocialGraph {
    generate(&dblp_config_scaled(0.35)).unwrap()
}

/// Relative minSupp 0.1% as in §VI-B, converted to absolute.
fn abs_supp(g: &SocialGraph, rel: f64) -> u64 {
    ((g.edge_count() as f64 * rel) as u64).max(1)
}

#[test]
fn pokec_nhp_top_contains_planted_preferences() {
    let g = pokec_small();
    let s = g.schema();
    let cfg = MinerConfig::nhp(abs_supp(&g, 0.001), 0.5, 300);
    let result = GrMiner::new(&g, cfg).mine();
    assert!(!result.top.is_empty());

    let display: Vec<String> = result.top.iter().map(|x| x.gr.display(s)).collect();
    let contains = |needle: &str| display.iter().any(|d| d.contains(needle));

    // P2-style: Basic-education preference for Secondary.
    assert!(
        contains("Education:Basic) -> (Education:Secondary"),
        "P2 missing from nhp top-k:\n{}",
        display.join("\n")
    );
    // P1-style: chatters -> good friends.
    assert!(
        contains("Looking:Chat) -> (Looking:GoodFriend"),
        "P1 missing from nhp top-k"
    );
    // P5-style: sexual-partner seekers -> females.
    assert!(
        contains("Looking:SexualPartner) -> (Gender:F"),
        "P5 missing from nhp top-k"
    );
    // And none of the results are trivial.
    assert!(result.top.iter().all(|x| !x.gr.is_trivial(s)));
}

#[test]
fn pokec_conf_top_is_dominated_by_homophily() {
    let g = pokec_small();
    let s = g.schema();
    // At 1/20 scale, sampling noise on tiny groups can fake high-conf
    // GRs; a proportionally higher minSupp keeps the noise floor
    // comparable to the paper's full-scale 0.1%.
    let cfg = MinerConfig::conf(abs_supp(&g, 0.004), 0.5, 300);
    let result = GrMiner::new(&g, cfg).mine();
    assert!(result.top.len() >= 5, "need at least 5 conf results");

    // Paper Table IIa: 4 of the top-5 by conf are trivial (R:x)->(R:x).
    let trivial_in_top5 = result.top[..5]
        .iter()
        .filter(|x| x.gr.is_trivial(s))
        .count();
    assert!(
        trivial_in_top5 >= 3,
        "conf top-5 should be dominated by trivial homophily GRs, got {trivial_in_top5}:\n{}",
        result.top[..5]
            .iter()
            .map(|x| x.display(s))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn pokec_nhp_boosts_what_conf_buries() {
    // The planted P2 must rank far higher under nhp than under conf.
    let g = pokec_small();
    let s = g.schema();
    let p2 = GrBuilder::new(s)
        .l("Education", "Basic")
        .r("Education", "Secondary")
        .build()
        .unwrap();
    let m = query::evaluate(&g, &p2);
    let nhp = m.nhp.unwrap();
    let conf = m.conf.unwrap();
    assert!(nhp >= 0.5, "planted P2 passes the paper's minNhp: {nhp}");
    assert!(conf < 0.5, "P2 is invisible at minConf 50%: {conf}");
    assert!(
        nhp > conf + 0.1,
        "nhp {nhp} must clearly exceed conf {conf}"
    );
}

#[test]
fn pokec_gender_hypothesis_cycle() {
    // §VI-B's P5 follow-up: vary the seed GR by gender and compare.
    let g = pokec_small();
    let s = g.schema();
    let male = GrBuilder::new(s)
        .l("Gender", "M")
        .l("Looking", "SexualPartner")
        .r("Gender", "F")
        .build()
        .unwrap();
    let female = GrBuilder::new(s)
        .l("Gender", "F")
        .l("Looking", "SexualPartner")
        .r("Gender", "M")
        .build()
        .unwrap();
    let m = query::evaluate(&g, &male).nhp.unwrap();
    let f = query::evaluate(&g, &female).nhp.unwrap();
    assert!(
        m > f + 0.1,
        "big difference in opposite-sex preference (paper: 68.1% vs 48.8%); got {m} vs {f}"
    );
}

#[test]
fn dblp_nhp_finds_cross_area_collaboration() {
    let g = dblp_small();
    let s = g.schema();
    let cfg = MinerConfig::nhp(abs_supp(&g, 0.001), 0.5, 20);
    let result = GrMiner::new(&g, cfg).mine();
    let display: Vec<String> = result.top.iter().map(|x| x.gr.display(s)).collect();

    // D2-style: (Area:DB) -[S:often]-> (Area:DM) or a generalization that
    // still pins DB->often->DM.
    assert!(
        display
            .iter()
            .any(|d| d.contains("Area:DB") && d.contains("S:often") && d.contains("(Area:DM)")),
        "D2 missing from nhp top-k:\n{}",
        display.join("\n")
    );
    // D1/D3/D5-style: preference toward Poor productivity (the 91% skew).
    assert!(
        display.iter().any(|d| d.contains("(Productivity:Poor)")),
        "Poor-productivity GRs missing:\n{}",
        display.join("\n")
    );
}

#[test]
fn dblp_conf_misses_d2() {
    let g = dblp_small();
    let s = g.schema();
    let d2 = GrBuilder::new(s)
        .l("Area", "DB")
        .w("S", "often")
        .r("Area", "DM")
        .build()
        .unwrap();
    let m = query::evaluate(&g, &d2);
    assert!(
        m.conf.unwrap() < 0.5,
        "D2's conf must fail minConf (paper: 6.98%), got {:?}",
        m.conf
    );
    assert!(
        m.nhp.unwrap() >= 0.5,
        "D2's nhp passes minNhp (paper: 71.5%), got {:?}",
        m.nhp
    );
}

#[test]
fn dblp_conf_top_is_same_area_collaboration() {
    let g = dblp_small();
    let s = g.schema();
    let cfg = MinerConfig::conf(abs_supp(&g, 0.001), 0.5, 20);
    let result = GrMiner::new(&g, cfg).mine();
    assert!(result.top.len() >= 5);
    // Paper Table IIb conf column: 4 of the top 5 are trivial same-area
    // restatements, interleaved with Poor-productivity GRs like
    // (A:AI)->(P:Poor) at 74.3%. Require at least two trivial same-area
    // GRs among the top 5, all with high confidence.
    let trivial_in_top5 = result.top[..5]
        .iter()
        .filter(|x| x.gr.is_trivial(s))
        .count();
    assert!(
        trivial_in_top5 >= 2,
        "conf top-5 should contain same-area restatements:\n{}",
        result.top[..5]
            .iter()
            .map(|x| x.display(s))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(result.top[0].score > 0.7, "top conf should be high");
}
