//! Sharded out-of-core mining vs the in-core engines: at every shard
//! count and thread count, `mine_sharded` must return the bit-identical
//! `top` of the sequential miner (static semantics) with semantic
//! counters identical to the in-core collect-mode engine — on the
//! Fig. 1 toy network and the Pokec-like / DBLP-like workloads — and it
//! must do so under a fixed memory budget, with the pool's resident
//! peak never exceeding it.

use social_ties::core::parallel::{mine_parallel_with_opts, ParallelOptions};
use social_ties::core::sharded::{mine_sharded, ShardedError, ShardedOptions};
use social_ties::core::Dims;
use social_ties::datagen::{dblp_config_scaled, pokec_config_scaled};
use social_ties::graph::shard::{resident_cost, ShardStore};
use social_ties::graph::{CompactModel, GraphError, NodeId};
use social_ties::{generate, toy_network, GrMiner, MinerConfig, RankMetric, SocialGraph};
use std::path::PathBuf;

/// Fresh scratch directory for one store (removed by the caller; the
/// store's own files are removed by its `Drop`).
fn tdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("grm-sharded-eq-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn store_for(g: &SocialGraph, name: &str, shards: usize) -> ShardStore {
    ShardStore::build_from_graph(g, tdir(name), shards, CompactModel::MAX_EDGES)
        .expect("store builds")
}

/// In-core collect-mode reference: one thread, no stealing/splitting, so
/// the semantic counters are the canonical collect-mode values (they are
/// thread-invariant anyway — `parallel_equivalence.rs` pins that).
fn collect_reference(g: &SocialGraph, cfg: &MinerConfig) -> social_ties::MineResult {
    mine_parallel_with_opts(
        g,
        cfg,
        &Dims::all(g.schema()),
        ParallelOptions {
            threads: 1,
            split_dominant: false,
            steal: false,
            split_depth: 0,
            split_min: 0,
        },
    )
}

fn assert_sharded_matches(g: &SocialGraph, cfg: &MinerConfig, label: &str) {
    let stat = cfg.clone().without_dynamic_topk();
    let seq = GrMiner::new(g, stat.clone()).mine();
    let reference = collect_reference(g, &stat);
    assert_eq!(seq.top, reference.top, "{label}: in-core engines disagree");
    for shards in [1usize, 2, 3, 7] {
        let store = store_for(g, &format!("{label}-{shards}"), shards);
        for threads in [1usize, 2, 4] {
            // Static: bit-identical top AND semantic counters.
            let opts = ShardedOptions {
                threads,
                memory_budget: None,
            };
            let out = mine_sharded(&store, &stat, &opts).expect("sharded mine");
            assert_eq!(
                seq.top, out.top,
                "{label}: sharded diverged (shards {shards}, threads {threads})"
            );
            assert_eq!(
                reference.stats.semantic(),
                out.stats.semantic(),
                "{label}: semantic counters diverged (shards {shards}, threads {threads})"
            );
            assert_eq!(out.edge_count, g.edge_count() as u64);
            assert_eq!(out.stats.shards_built, shards as u64);

            // Dynamic: the shared bound + verified post-pass must still
            // reproduce the static Definition-5 output exactly.
            let dynamic = mine_sharded(&store, cfg, &opts).expect("dynamic sharded mine");
            assert_eq!(
                seq.top, dynamic.top,
                "{label}: dynamic sharded deviated (shards {shards}, threads {threads})"
            );
        }
        let dir = store.dir().to_path_buf();
        drop(store);
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn toy_network_bit_identical() {
    let g = toy_network();
    for cfg in [
        MinerConfig::nhp(1, 0.5, 10),
        MinerConfig::nhp(1, 0.0, 100),
        MinerConfig::conf(1, 0.4, 20),
    ] {
        assert_sharded_matches(&g, &cfg, "toy");
    }
}

#[test]
fn pokec_like_bit_identical() {
    let g = generate(&pokec_config_scaled(0.02)).unwrap();
    let min_supp = (g.edge_count() as u64 / 1000).max(1);
    assert_sharded_matches(&g, &MinerConfig::nhp(min_supp, 0.5, 50), "pokec");
}

#[test]
fn dblp_like_bit_identical() {
    let g = generate(&dblp_config_scaled(0.05)).unwrap();
    assert_sharded_matches(&g, &MinerConfig::nhp(3, 0.5, 50), "dblp");
}

/// The largest edge set any single unit makes resident: the per-shard
/// maximum and, for slices, the largest per-value group of any LHS/RHS
/// node attribute or edge attribute.
fn max_unit_edges(g: &SocialGraph, store: &ShardStore) -> usize {
    let schema = g.schema();
    let mut max = (0..store.shard_count())
        .map(|s| store.edge_count(s) as usize)
        .max()
        .unwrap_or(0);
    for a in schema.node_attr_ids() {
        let mut by_src = vec![0usize; schema.node_attr(a).bucket_count()];
        let mut by_dst = vec![0usize; schema.node_attr(a).bucket_count()];
        for e in g.edge_ids() {
            by_src[g.src_attr(e, a) as usize] += 1;
            by_dst[g.dst_attr(e, a) as usize] += 1;
        }
        max = max
            .max(by_src[1..].iter().copied().max().unwrap_or(0))
            .max(by_dst[1..].iter().copied().max().unwrap_or(0));
    }
    for a in schema.edge_attr_ids() {
        let mut by_val = vec![0usize; schema.edge_attr(a).bucket_count()];
        for e in g.edge_ids() {
            by_val[g.edge_attr(e, a) as usize] += 1;
        }
        max = max.max(by_val[1..].iter().copied().max().unwrap_or(0));
    }
    max
}

#[test]
fn tight_budget_forces_evictions_and_respects_the_peak() {
    let g = generate(&pokec_config_scaled(0.02)).unwrap();
    let cfg = MinerConfig::nhp(5, 0.5, 25).without_dynamic_topk();
    let seq = GrMiner::new(&g, cfg.clone()).mine();
    let store = store_for(&g, "budget", 3);
    // Just enough for the single largest resident unit: every unit
    // still fits, but no two can be resident together, so the pool must
    // evict between shard units.
    let budget = resident_cost(
        g.schema(),
        g.node_count(),
        max_unit_edges(&g, &store).max(1),
    );
    let out = mine_sharded(
        &store,
        &cfg,
        &ShardedOptions {
            threads: 2,
            memory_budget: Some(budget),
        },
    )
    .expect("budgeted mine");
    assert_eq!(seq.top, out.top, "tight budget changed results");
    assert!(
        out.stats.shard_evictions > 0,
        "a one-unit budget must force evictions"
    );
    assert!(
        out.stats.shard_resident_bytes_peak <= budget,
        "resident peak {} exceeded the budget {budget}",
        out.stats.shard_resident_bytes_peak
    );
    assert!(out.stats.shard_loads >= out.stats.shards_built);
    let dir = store.dir().to_path_buf();
    drop(store);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn impossible_budget_fails_with_the_remedy() {
    let g = toy_network();
    let store = store_for(&g, "impossible", 2);
    let err = mine_sharded(
        g_config_store(&store),
        &MinerConfig::nhp(1, 0.5, 10).without_dynamic_topk(),
        &ShardedOptions {
            threads: 1,
            memory_budget: Some(1),
        },
    )
    .expect_err("a 1-byte budget cannot hold anything");
    match err {
        ShardedError::Graph(GraphError::MemoryBudgetTooSmall { .. }) => {
            assert!(err.to_string().contains("--memory-budget"));
        }
        other => panic!("unexpected error: {other:?}"),
    }
    let dir = store.dir().to_path_buf();
    drop(store);
    let _ = std::fs::remove_dir_all(dir);
}

/// Identity helper so the borrow in the test above reads naturally.
fn g_config_store(store: &ShardStore) -> &ShardStore {
    store
}

#[test]
fn graph_beyond_the_per_shard_cap_mines_under_sharding() {
    // Scaled-down acceptance criterion: with the per-shard capacity
    // lowered below the edge count, a single shard cannot hold the
    // graph (TooManyEdges points at --shards), but four shards can —
    // and the sharded mine over them is bit-identical to in-core.
    let g = generate(&pokec_config_scaled(0.02)).unwrap();
    let edges = g.edge_count();
    // The split is by attribute-value ranges, so it is skewed; probe the
    // real largest shard of the 8-way split and pin the cap right there.
    let cap = {
        let probe = ShardStore::build_from_graph(&g, tdir("cap-probe"), 8, CompactModel::MAX_EDGES)
            .expect("probe store");
        let max = (0..probe.shard_count())
            .map(|s| probe.edge_count(s) as usize)
            .max()
            .unwrap_or(0);
        let dir = probe.dir().to_path_buf();
        drop(probe);
        let _ = std::fs::remove_dir_all(dir);
        max
    };
    assert!(
        cap < edges,
        "the 8-way split must actually divide the graph"
    );
    let err = ShardStore::build_from_graph(&g, tdir("cap-1"), 1, cap)
        .expect_err("one shard must overflow the lowered cap");
    assert!(
        err.to_string().contains("--shards"),
        "TooManyEdges must point at the sharding remedy: {err}"
    );

    let store = ShardStore::build_from_graph(&g, tdir("cap-8"), 8, cap)
        .expect("eight shards fit the lowered cap");
    let cfg = MinerConfig::nhp(5, 0.5, 25).without_dynamic_topk();
    let seq = GrMiner::new(&g, cfg.clone()).mine();
    let budget = resident_cost(
        g.schema(),
        g.node_count(),
        max_unit_edges(&g, &store).max(1),
    ) * 2;
    let out = mine_sharded(
        &store,
        &cfg,
        &ShardedOptions {
            threads: 2,
            memory_budget: Some(budget),
        },
    )
    .expect("sharded mine beyond the single-shard cap");
    assert_eq!(seq.top, out.top);
    assert!(out.stats.shard_resident_bytes_peak <= budget);
    let dir = store.dir().to_path_buf();
    drop(store);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn marginal_metrics_are_rejected() {
    let g = toy_network();
    let store = store_for(&g, "metric", 2);
    for metric in [
        RankMetric::Lift,
        RankMetric::PiatetskyShapiro,
        RankMetric::Conviction,
    ] {
        let cfg = MinerConfig::nhp(1, 0.0, 10).with_metric(metric);
        match mine_sharded(&store, &cfg, &ShardedOptions::default()) {
            Err(ShardedError::UnsupportedMetric(m)) => assert_eq!(m, metric),
            other => panic!("{metric:?} must be rejected, got {other:?}"),
        }
    }
    let dir = store.dir().to_path_buf();
    drop(store);
    let _ = std::fs::remove_dir_all(dir);
}

/// Self-check for the `NodeId` import (used via `node_row` in other
/// integration suites); keeps the import list honest.
#[test]
fn store_preserves_node_rows() {
    let g = toy_network();
    let store = store_for(&g, "rows", 2);
    for n in g.node_ids() {
        assert_eq!(store.node_row(n as NodeId), g.node_row(n));
    }
    let dir = store.dir().to_path_buf();
    drop(store);
    let _ = std::fs::remove_dir_all(dir);
}
