//! Differential testing: five independent implementations of Definition 5
//! must agree — GRMiner (static threshold), GRMiner(k) (dynamic), BL1,
//! BL2, the parallel miner, and the brute-force reference.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use social_ties::core::baseline::{mine_baseline, BaselineKind};
use social_ties::core::parallel::mine_parallel;
use social_ties::core::reference::mine_reference;
use social_ties::{Gr, GrMiner, MinerConfig, SchemaBuilder, SocialGraph};

fn random_graph(seed: u64, nodes: u32, edges: u32) -> SocialGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = SchemaBuilder::new()
        .node_attr("A", 3, true)
        .node_attr("B", 2, false)
        .node_attr("C", 2, true)
        .edge_attr("W", 2)
        .build()
        .unwrap();
    let mut b = social_ties::GraphBuilder::new(schema);
    for _ in 0..nodes {
        b.add_node(&[
            rng.gen_range(0..=3),
            rng.gen_range(0..=2),
            rng.gen_range(0..=2),
        ])
        .unwrap();
    }
    for _ in 0..edges {
        let s = rng.gen_range(0..nodes);
        let mut t = rng.gen_range(0..nodes);
        if t == s {
            t = (t + 1) % nodes;
        }
        b.add_edge(s, t, &[rng.gen_range(0..=2)]).unwrap();
    }
    b.build().unwrap()
}

fn keys(v: &[social_ties::ScoredGr]) -> Vec<(Gr, u64, u64, u64)> {
    v.iter()
        .map(|s| (s.gr.clone(), s.supp, s.supp_lw, s.heff))
        .collect()
}

#[test]
fn all_miners_agree_with_reference() {
    for seed in 0..8u64 {
        let g = random_graph(seed, 12, 60);
        for cfg in [
            MinerConfig::nhp(1, 0.5, 10),
            MinerConfig::nhp(2, 0.25, 15),
            MinerConfig::nhp(1, 0.0, 40),
            MinerConfig::conf(2, 0.5, 10),
        ] {
            let cfg = cfg.without_dynamic_topk();
            let oracle = mine_reference(&g, &cfg);
            let fast = GrMiner::new(&g, cfg.clone()).mine();
            assert_eq!(keys(&fast.top), keys(&oracle), "GRMiner seed {seed}");
            let bl1 = mine_baseline(&g, &cfg, BaselineKind::Bl1);
            assert_eq!(keys(&bl1.top), keys(&oracle), "BL1 seed {seed}");
            let bl2 = mine_baseline(&g, &cfg, BaselineKind::Bl2);
            assert_eq!(keys(&bl2.top), keys(&oracle), "BL2 seed {seed}");
            let par = mine_parallel(&g, &cfg, 3);
            assert_eq!(keys(&par.top), keys(&oracle), "parallel seed {seed}");
        }
    }
}

/// The fused partition engine (on by default, so every other test in this
/// file already runs it against the brute-force oracle) must be a pure
/// execution strategy: turning it off changes no result, no score, and no
/// semantic counter, under both the static and the dynamic top-k variant.
#[test]
fn fused_engine_is_a_pure_execution_strategy() {
    let mut fused_total = 0u64;
    for seed in 0..8u64 {
        let g = random_graph(seed, 14, 90);
        for cfg in [
            MinerConfig::nhp(1, 0.3, 12),
            MinerConfig::nhp(2, 0.0, 30).without_dynamic_topk(),
            MinerConfig::conf(1, 0.5, 10),
        ] {
            let fused = GrMiner::new(&g, cfg.clone()).mine();
            let unfused = GrMiner::new(&g, cfg.clone().without_fused_partitions()).mine();
            assert_eq!(fused.top, unfused.top, "seed {seed} cfg {cfg:?}");
            assert_eq!(
                fused.stats.semantic(),
                unfused.stats.semantic(),
                "seed {seed} cfg {cfg:?}"
            );
            assert_eq!(fused.stats.partition_passes, unfused.stats.partition_passes);
            assert_eq!(unfused.stats.fused_passes, 0);
            fused_total += fused.stats.fused_passes;
        }
    }
    assert!(fused_total > 0, "the fused path must actually run");
}

/// Same contract for the vectorized counting kernels: `without_kernel`
/// (the `scalar_kernel_off` ablation) must change no result, no score,
/// and no semantic counter, under static and dynamic top-k, fused and
/// unfused — while `kernel_batches` is live exactly when the kernels
/// are.
#[test]
fn counting_kernel_is_a_pure_execution_strategy() {
    let mut batches_total = 0u64;
    for seed in 0..8u64 {
        let g = random_graph(seed, 14, 90);
        for cfg in [
            MinerConfig::nhp(1, 0.3, 12),
            MinerConfig::nhp(2, 0.0, 30).without_dynamic_topk(),
            MinerConfig::conf(1, 0.5, 10),
            MinerConfig::nhp(1, 0.3, 12).without_fused_partitions(),
        ] {
            let kernel = GrMiner::new(&g, cfg.clone()).mine();
            let scalar = GrMiner::new(&g, cfg.clone().without_kernel()).mine();
            assert_eq!(kernel.top, scalar.top, "seed {seed} cfg {cfg:?}");
            assert_eq!(
                kernel.stats.semantic(),
                scalar.stats.semantic(),
                "seed {seed} cfg {cfg:?}"
            );
            assert_eq!(kernel.stats.partition_passes, scalar.stats.partition_passes);
            assert_eq!(kernel.stats.fused_passes, scalar.stats.fused_passes);
            assert_eq!(scalar.stats.kernel_batches, 0);
            batches_total += kernel.stats.kernel_batches;
        }
    }
    assert!(batches_total > 0, "the kernel path must actually batch");
}

#[test]
fn dynamic_topk_is_sound_on_random_workloads() {
    // GRMiner(k)'s dynamic threshold can prune a *suppressor* (a general
    // GR that passes the user threshold but not the upgraded bound)
    // before it is recorded, so a specialization Definition 5 would drop
    // may enter the top-k (see DESIGN.md). The guaranteed properties:
    //
    // 1. every returned GR satisfies condition (1) — thresholds — with
    //    exactly measured supports;
    // 2. the dynamic candidate pool is a superset of the exact one: any
    //    exact top-k GR missing from the dynamic top-k was displaced by a
    //    better-ranked dynamic entry;
    // 3. the dynamic variant never examines more GRs.
    for seed in 20..28u64 {
        let g = random_graph(seed, 15, 80);
        let cfg = MinerConfig::nhp(2, 0.3, 8);
        let dynamic = GrMiner::new(&g, cfg.clone()).mine();
        let exact = GrMiner::new(&g, cfg.clone().without_dynamic_topk()).mine();
        assert!(dynamic.stats.grs_examined <= exact.stats.grs_examined);

        // Property 1: condition (1) holds, verified against a no-filter
        // reference enumeration.
        let cond1_cfg = MinerConfig {
            generality_filter: false,
            k: usize::MAX,
            dynamic_topk: false,
            ..cfg.clone()
        };
        let cond1 = mine_reference(&g, &cond1_cfg);
        for x in &dynamic.top {
            assert!(
                cond1.iter().any(|r| r.gr == x.gr
                    && r.supp == x.supp
                    && r.supp_lw == x.supp_lw
                    && r.heff == x.heff),
                "seed {seed}: dynamic returned a GR violating condition (1): {:?}",
                x.gr
            );
        }

        // Property 2: exact winners are only ever displaced, not lost.
        if let Some(worst) = dynamic.top.last() {
            for e in &exact.top {
                let present = dynamic.top.iter().any(|d| d.gr == e.gr);
                let outranked = e.rank_cmp(worst) == std::cmp::Ordering::Greater;
                assert!(
                    present || outranked || dynamic.top.len() < cfg.k,
                    "seed {seed}: exact top GR vanished without displacement: {:?}",
                    e.gr
                );
            }
        }
    }
}

#[test]
fn alt_metrics_match_reference() {
    use social_ties::RankMetric;
    for seed in 0..4u64 {
        let g = random_graph(seed, 12, 60);
        for metric in [
            RankMetric::Laplace { k: 2 },
            RankMetric::Gain { theta: 0.3 },
            RankMetric::Lift,
            RankMetric::PiatetskyShapiro,
            RankMetric::Conviction,
        ] {
            let cfg = MinerConfig {
                min_supp: 2,
                min_score: if metric.anti_monotone() {
                    0.1
                } else {
                    f64::NEG_INFINITY
                },
                k: 12,
                dynamic_topk: false,
                ..MinerConfig::default().with_metric(metric)
            };
            let fast = GrMiner::new(&g, cfg.clone()).mine();
            let oracle = mine_reference(&g, &cfg);
            assert_eq!(
                keys(&fast.top),
                keys(&oracle),
                "metric {metric} seed {seed}"
            );
            // The parallel miner shares one RHS marginal table across
            // workers for the metrics that need supp(r); it must stay
            // bit-identical too.
            if metric.needs_r_marginal() {
                let par = mine_parallel(&g, &cfg, 3);
                assert_eq!(
                    keys(&par.top),
                    keys(&oracle),
                    "parallel metric {metric} seed {seed}"
                );
            }
            for (a, b) in fast.top.iter().zip(&oracle) {
                assert!(
                    (a.score - b.score).abs() < 1e-9
                        || (a.score.is_infinite() && b.score.is_infinite()),
                    "score mismatch under {metric}"
                );
            }
        }
    }
}

#[test]
fn restricted_dims_agree() {
    use social_ties::core::reference::mine_reference_with_dims;
    use social_ties::Dims;
    for seed in 0..4u64 {
        let g = random_graph(seed, 12, 60);
        let schema = g.schema();
        // Only attributes A and B, no edge dims (a Fig. 4d-style subset).
        let dims = Dims::subset(
            schema,
            &[grm_graph::NodeAttrId(0), grm_graph::NodeAttrId(1)],
            &[],
        );
        let cfg = MinerConfig::nhp(1, 0.3, 10).without_dynamic_topk();
        let fast = GrMiner::with_dims(&g, cfg.clone(), dims.clone()).mine();
        let oracle = mine_reference_with_dims(&g, &cfg, &dims);
        assert_eq!(keys(&fast.top), keys(&oracle), "seed {seed}");
        // No result mentions the excluded attribute or edge dims.
        for x in &fast.top {
            assert!(x.gr.w.is_empty());
            for &(a, _) in x.gr.l.pairs().iter().chain(x.gr.r.pairs()) {
                assert!(a.0 < 2);
            }
        }
    }
}

#[test]
fn width_limits_agree_with_reference() {
    for seed in 0..4u64 {
        let g = random_graph(seed, 12, 60);
        for (max_l, max_r) in [(1, 1), (1, 2), (2, 1)] {
            let cfg = MinerConfig::nhp(1, 0.3, 15)
                .without_dynamic_topk()
                .with_max_widths(max_l, max_r);
            let fast = GrMiner::new(&g, cfg.clone()).mine();
            let oracle = mine_reference(&g, &cfg);
            assert_eq!(
                keys(&fast.top),
                keys(&oracle),
                "seed {seed} widths ({max_l},{max_r})"
            );
            for x in &fast.top {
                assert!(x.gr.l.len() <= max_l);
                assert!(x.gr.r.len() <= max_r);
            }
        }
    }
}
