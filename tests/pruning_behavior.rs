//! The mechanics behind Fig. 4: which constraints prune how much work.
//! These tests pin the *relationships* the runtime plots rely on, using
//! the partition/GR counters rather than wall-clock time (stable in CI).

use social_ties::core::baseline::{mine_baseline, BaselineKind};
use social_ties::datagen::pokec_config_scaled;
use social_ties::{generate, GrMiner, MinerConfig, SocialGraph};

fn workload() -> SocialGraph {
    generate(&pokec_config_scaled(0.02)).unwrap()
}

#[test]
fn fig4b_mechanics_more_minnhp_more_pruning() {
    // BL1/BL2 "do not benefit from a larger minNhp since they employ only
    // minSupp for pruning"; GRMiner's examined-GR count must drop as
    // minNhp grows.
    let g = workload();
    let mut examined = Vec::new();
    for min_nhp in [0.0, 0.5, 0.9] {
        let cfg = MinerConfig::nhp(20, min_nhp, 100).without_dynamic_topk();
        examined.push(GrMiner::new(&g, cfg).mine().stats.grs_examined);
    }
    assert!(
        examined[0] >= examined[1] && examined[1] >= examined[2],
        "examined GRs must not increase with minNhp: {examined:?}"
    );
    assert!(
        examined[2] < examined[0],
        "pruning must actually bite at minNhp=0.9: {examined:?}"
    );

    // Baselines: identical partition counts regardless of minNhp.
    let b1 = mine_baseline(&g, &MinerConfig::nhp(20, 0.1, 100), BaselineKind::Bl2);
    let b2 = mine_baseline(&g, &MinerConfig::nhp(20, 0.9, 100), BaselineKind::Bl2);
    assert_eq!(
        b1.stats.partitions_examined, b2.stats.partitions_examined,
        "BUC work is independent of minNhp"
    );
}

#[test]
fn fig4c_mechanics_small_k_tightens_dynamic_bound() {
    // "With a small k, the smallest nhp of top-k GRs is likely high, so
    // the upgraded minNhp has a similar effect to a large user-specified
    // minNhp."
    let g = workload();
    let loose = GrMiner::new(&g, MinerConfig::nhp(20, 0.0, 10_000)).mine();
    let tight = GrMiner::new(&g, MinerConfig::nhp(20, 0.0, 1)).mine();
    assert!(
        tight.stats.grs_examined <= loose.stats.grs_examined,
        "k=1 must not examine more GRs than k=10000: {} vs {}",
        tight.stats.grs_examined,
        loose.stats.grs_examined
    );
    assert!(tight.stats.pruned_by_score >= loose.stats.pruned_by_score);
}

#[test]
fn fig4a_mechanics_grminer_stays_stable_as_minsupp_drops() {
    // As minSupp shrinks, the baselines' frequent-pattern space explodes
    // while GRMiner's nhp pruning keeps the examined count near-flat.
    let g = workload();
    let supp_hi = (g.edge_count() / 100) as u64;
    let supp_lo = 2u64;

    let cfg = |s| MinerConfig::nhp(s, 0.5, 100);
    let miner_hi = GrMiner::new(&g, cfg(supp_hi))
        .mine()
        .stats
        .partitions_examined;
    let miner_lo = GrMiner::new(&g, cfg(supp_lo))
        .mine()
        .stats
        .partitions_examined;
    let bl_hi = mine_baseline(&g, &cfg(supp_hi), BaselineKind::Bl2)
        .stats
        .partitions_examined;
    let bl_lo = mine_baseline(&g, &cfg(supp_lo), BaselineKind::Bl2)
        .stats
        .partitions_examined;

    let miner_growth = miner_lo as f64 / miner_hi.max(1) as f64;
    let bl_growth = bl_lo as f64 / bl_hi.max(1) as f64;
    assert!(
        bl_growth > miner_growth,
        "baseline work must grow faster as minSupp drops: baseline x{bl_growth:.1} vs GRMiner x{miner_growth:.1}"
    );
}

#[test]
fn fig4d_mechanics_dimensionality_hurts_baselines_more() {
    use social_ties::Dims;
    let g = workload();
    let schema = g.schema();
    let all: Vec<_> = schema.node_attr_ids().collect();

    let cfg = MinerConfig::nhp(20, 0.5, 100);
    let mut miner_counts = Vec::new();
    let mut bl_counts = Vec::new();
    for l in [2usize, 4, 6] {
        let dims = Dims::subset(schema, &all[..l], &[]);
        miner_counts.push(
            GrMiner::with_dims(&g, cfg.clone(), dims.clone())
                .mine()
                .stats
                .partitions_examined,
        );
        bl_counts.push(
            social_ties::core::baseline::mine_baseline_with_dims(
                &g,
                &cfg,
                &dims,
                BaselineKind::Bl2,
            )
            .stats
            .partitions_examined,
        );
    }
    // Both grow with dimensionality, the baseline faster.
    assert!(miner_counts[2] > miner_counts[0]);
    assert!(bl_counts[2] > bl_counts[0]);
    let miner_growth = miner_counts[2] as f64 / miner_counts[0] as f64;
    let bl_growth = bl_counts[2] as f64 / bl_counts[0] as f64;
    assert!(
        bl_growth > miner_growth,
        "baseline dim-growth x{bl_growth:.1} must exceed GRMiner's x{miner_growth:.1}"
    );
}

#[test]
fn theorem4_no_work_below_thresholds() {
    // Theorem 4(2): every accepted GR passed both thresholds; with an
    // impossible threshold nothing is accepted but the run still finishes.
    let g = workload();
    let result = GrMiner::new(&g, MinerConfig::nhp(u64::MAX, 1.1, 10)).mine();
    assert!(result.top.is_empty());
    assert_eq!(result.stats.accepted, 0);
}
