//! End-to-end flows for the adoption-surface modules: CSV import feeding
//! the miner, and influence matrices derived from a mined workload.

use social_ties::core::influence::{influence_matrix, InfluenceKind};
use social_ties::core::query;
use social_ties::graph::csv::{read_csv_graph, CsvOptions};
use social_ties::{GrMiner, MinerConfig, SchemaBuilder};

#[test]
fn csv_to_mining_pipeline() {
    // The paper's Example-2 situation, shipped as CSV tables.
    let schema = SchemaBuilder::new()
        .node_attr_named("SEX", false, ["F", "M"])
        .node_attr_named("EDU", true, ["HS", "College", "Grad"])
        .build()
        .unwrap();
    let nodes = "\
id,SEX,EDU
f1,F,Grad
f2,F,Grad
mg,M,Grad
mc,M,College
";
    // Six F-Grad edges: four to the Grad man, two to the College man.
    let edges = "\
src,dst
f1,mg
f1,mg
f2,mg
f2,mg
f1,mc
f2,mc
";
    let g = read_csv_graph(
        schema,
        nodes.as_bytes(),
        edges.as_bytes(),
        &CsvOptions::default(),
    )
    .unwrap();
    assert_eq!((g.node_count(), g.edge_count()), (4, 6));

    let result = GrMiner::new(&g, MinerConfig::nhp(2, 0.9, 5)).mine();
    let s = g.schema();
    assert!(
        result
            .top
            .iter()
            .any(|x| x.gr.display(s).contains("(EDU:College)") && (x.score - 1.0).abs() < 1e-9),
        "the GR4 pattern must mine out of the CSV data:\n{}",
        result.report(s)
    );
}

#[test]
fn influence_matrix_on_dblp_exposes_cross_area_bond() {
    let g = social_ties::generate(&social_ties::datagen::dblp_config_scaled(0.3)).unwrap();
    let area = g.schema().node_attr_by_name("Area").unwrap();

    let conf = influence_matrix(&g, area, InfluenceKind::Confidence);
    let nhp = influence_matrix(&g, area, InfluenceKind::Nhp);

    use social_ties::datagen::dblp::area::{AI, DB, DM, IR};
    // Confidence: the diagonal dominates every row (homophily).
    for i in [DB, DM, AI, IR] {
        for j in [DB, DM, AI, IR] {
            if i != j {
                assert!(
                    conf.get(i, i) > conf.get(i, j),
                    "diagonal must dominate row {i}"
                );
            }
        }
    }
    // nhp boosts every off-diagonal entry over its confidence (β ≠ ∅).
    assert!(nhp.get(DB, DM) > conf.get(DB, DM));
    assert!(nhp.get(DB, AI) > conf.get(DB, AI));
    // The D2 planting rides on often-edges only, so in the all-edges
    // matrix it shows as a boost of DB→DM over DM's base rate among
    // non-DB destinations, not as DB's largest off-diagonal entry.
    let dst = social_ties::graph::stats::dst_marginal(&g, area);
    let non_db: u64 = dst
        .iter()
        .enumerate()
        .filter(|&(v, _)| v != 0 && v != DB as usize)
        .map(|(_, &c)| c)
        .sum();
    let dm_base = dst[DM as usize] as f64 / non_db as f64;
    assert!(
        nhp.get(DB, DM) > 1.1 * dm_base,
        "DB→DM ({:.3}) should exceed DM's non-DB base rate ({dm_base:.3})",
        nhp.get(DB, DM)
    );
    // Verify IR, which has no planted DB preference, shows no such boost.
    let ir_base = dst[IR as usize] as f64 / non_db as f64;
    let dm_boost = nhp.get(DB, DM) / dm_base;
    let ir_boost = nhp.get(DB, IR) / ir_base;
    assert!(
        dm_boost > ir_boost,
        "DM boost {dm_boost:.2} vs IR boost {ir_boost:.2}"
    );
    // Matrix entries agree with the query API.
    let gr = social_ties::core::influence::entry_gr(area, DB, DM);
    let q = query::evaluate(&g, &gr);
    assert!((nhp.get(DB, DM) - q.nhp.unwrap()).abs() < 1e-12);

    // Row-stochastic export is propagation-ready.
    for row in nhp.row_stochastic() {
        let sum: f64 = row.iter().sum();
        assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-9);
    }
    // Display renders with names.
    assert!(nhp.display(g.schema()).contains("DM"));
}
