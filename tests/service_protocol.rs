//! In-process contract tests of the `grmined` request protocol
//! (`grm_core::service`): response envelopes, the pinned introspection
//! schemas, mining parity with the library engines, result caching and
//! single-flight coalescing, typed overload/cancellation errors, and
//! counter accounting.

use serde::{to_content, Content};
use social_ties::core::service::{Service, ServiceConfig};
use social_ties::core::Dims;
use social_ties::datagen::dblp_config_scaled;
use social_ties::graph::CancelToken;
use social_ties::{generate, GrMiner, MinerConfig, SocialGraph};
use std::sync::Arc;

fn workload() -> SocialGraph {
    generate(&dblp_config_scaled(0.05)).unwrap()
}

fn service(cfg: ServiceConfig) -> Service {
    Service::new(workload(), cfg)
}

fn send(svc: &Service, line: &str) -> Content {
    let conn = CancelToken::default();
    serde_json::from_str(&svc.handle_line(line, &conn)).expect("responses are valid JSON")
}

fn get<'a>(map: &'a Content, key: &str) -> &'a Content {
    match map {
        Content::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing key `{key}` in {map:?}")),
        other => panic!("expected map, got {other:?}"),
    }
}

fn keys(map: &Content) -> Vec<&str> {
    match map {
        Content::Map(entries) => {
            let mut ks: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
            ks.sort_unstable();
            ks
        }
        other => panic!("expected map, got {other:?}"),
    }
}

fn assert_ok(resp: &Content) -> &Content {
    assert_eq!(get(resp, "ok"), &Content::Bool(true), "{resp:?}");
    get(resp, "result")
}

fn assert_err<'a>(resp: &'a Content, code: &str) -> &'a Content {
    assert_eq!(get(resp, "ok"), &Content::Bool(false), "{resp:?}");
    let err = get(resp, "error");
    assert_eq!(
        get(err, "code"),
        &Content::Str(code.to_string()),
        "{resp:?}"
    );
    err
}

/// The service's defaults mirror the `grmine mine` CLI.
fn default_cfg(graph: &SocialGraph) -> MinerConfig {
    MinerConfig {
        min_supp: (graph.edge_count() as u64 / 1000).max(1),
        min_score: 0.5,
        k: 20,
        ..MinerConfig::default()
    }
}

#[test]
fn response_envelope_echoes_id_and_type() {
    let svc = service(ServiceConfig::default());
    let resp = send(&svc, "{\"id\":\"req-7\",\"type\":\"schema\"}");
    assert_eq!(get(&resp, "id"), &Content::Str("req-7".to_string()));
    assert_eq!(get(&resp, "type"), &Content::Str("schema".to_string()));
    assert_eq!(
        keys(&resp),
        vec!["id", "ok", "result", "type"],
        "success envelope is pinned"
    );
    // Errors echo the id too, and swap `result` for `error`.
    let resp = send(&svc, "{\"id\":3,\"type\":\"nope\"}");
    assert_eq!(get(&resp, "id"), &Content::U64(3));
    assert_eq!(keys(&resp), vec!["error", "id", "ok", "type"]);
}

#[test]
fn schema_introspection_is_pinned() {
    let g = workload();
    let svc = Service::new(g.clone(), ServiceConfig::default());
    let resp = send(&svc, "{\"id\":1,\"type\":\"schema\"}");
    let result = assert_ok(&resp);
    assert_eq!(
        keys(result),
        vec!["edge_attrs", "edges", "node_attrs", "nodes"]
    );
    assert_eq!(get(result, "nodes"), &Content::U64(g.node_count() as u64));
    assert_eq!(get(result, "edges"), &Content::U64(g.edge_count() as u64));
    let node_attrs = match get(result, "node_attrs") {
        Content::Seq(s) => s,
        other => panic!("node_attrs must be a list, got {other:?}"),
    };
    assert_eq!(node_attrs.len(), g.schema().node_attr_ids().count());
    for attr in node_attrs {
        assert_eq!(keys(attr), vec!["domain_size", "homophily", "name"]);
    }
    for attr in match get(result, "edge_attrs") {
        Content::Seq(s) => s,
        other => panic!("edge_attrs must be a list, got {other:?}"),
    } {
        assert_eq!(keys(attr), vec!["domain_size", "name"]);
    }
}

#[test]
fn stats_introspection_is_pinned_and_counts_service_events() {
    let svc = service(ServiceConfig::default());
    let resp = send(&svc, "{\"id\":1,\"type\":\"stats\"}");
    let result = assert_ok(&resp);
    assert_eq!(
        keys(result),
        vec![
            "cache_entries",
            "counters",
            "max_concurrent",
            "queue_depth",
            "slots_available",
        ],
        "introspection schema is pinned"
    );
    assert_eq!(get(result, "max_concurrent"), &Content::U64(4));
    assert_eq!(get(result, "slots_available"), &Content::U64(4));
    // The counters object is the pinned MinerStats schema (the full
    // 27-key sort is pinned in tests/cli_and_parse.rs); the service
    // counters must be present and must move.
    let counters = get(result, "counters");
    for key in [
        "requests_served",
        "requests_shed",
        "cache_hits",
        "cache_coalesced",
    ] {
        assert_eq!(get(counters, key), &Content::U64(0), "fresh service");
    }
    send(&svc, "{\"id\":2,\"type\":\"mine\"}");
    send(&svc, "{\"id\":3,\"type\":\"mine\"}");
    let resp = send(&svc, "{\"id\":4,\"type\":\"stats\"}");
    let result = assert_ok(&resp);
    let counters = get(result, "counters");
    assert_eq!(get(counters, "requests_served"), &Content::U64(2));
    assert_eq!(get(counters, "cache_hits"), &Content::U64(1));
    assert_eq!(get(result, "cache_entries"), &Content::U64(1));
}

#[test]
fn query_measures_match_the_library() {
    let g = workload();
    let svc = Service::new(g.clone(), ServiceConfig::default());
    // Mine one GR to query back through the round-trip display syntax.
    let mined = GrMiner::new(&g, default_cfg(&g)).try_mine().unwrap();
    let gr = &mined.top.first().expect("workload mines something").gr;
    let text = gr.display(g.schema());
    let expected = social_ties::core::query::evaluate(&g, gr);
    let resp = send(
        &svc,
        &format!("{{\"id\":1,\"type\":\"query\",\"gr\":\"{text}\"}}"),
    );
    let result = assert_ok(&resp);
    assert_eq!(get(result, "gr"), &Content::Str(text));
    assert_eq!(get(result, "measures"), &to_content(&expected));
    // A malformed GR is a BadRequest, not a panic.
    let resp = send(&svc, "{\"id\":2,\"type\":\"query\",\"gr\":\"(Nope:1) ->\"}");
    assert_err(&resp, "BadRequest");
}

#[test]
fn mine_defaults_are_bit_identical_to_the_sequential_engine() {
    let g = workload();
    let svc = Service::new(g.clone(), ServiceConfig::default());
    let expected = GrMiner::new(&g, default_cfg(&g)).try_mine().unwrap();
    let resp = send(&svc, "{\"id\":1,\"type\":\"mine\"}");
    let result = assert_ok(&resp);
    assert_eq!(
        get(result, "top"),
        &to_content(&expected.top),
        "service defaults mirror the CLI and the pinned --json schema"
    );
    assert_eq!(
        get(result, "edge_count"),
        &Content::U64(g.edge_count() as u64)
    );
    assert_eq!(get(result, "cached"), &Content::Bool(false));
}

#[test]
fn parallel_requests_are_bit_identical_to_the_parallel_engine() {
    let g = workload();
    let svc = Service::new(
        g.clone(),
        ServiceConfig {
            threads: 4,
            ..ServiceConfig::default()
        },
    );
    let cfg = default_cfg(&g);
    let expected = social_ties::core::parallel::try_mine_parallel_with_opts(
        &g,
        &cfg,
        &Dims::all(g.schema()),
        social_ties::core::parallel::ParallelOptions {
            threads: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let resp = send(&svc, "{\"id\":1,\"type\":\"mine\",\"threads\":2}");
    assert_eq!(get(assert_ok(&resp), "top"), &to_content(&expected.top));
    // `threads` beyond the service cap clamps instead of erroring.
    let resp = send(&svc, "{\"id\":2,\"type\":\"mine\",\"threads\":64}");
    assert_ok(&resp);
}

#[test]
fn identical_requests_hit_the_cache_and_merge_stats_once() {
    let g = workload();
    let svc = Service::new(g.clone(), ServiceConfig::default());
    let first = send(&svc, "{\"id\":1,\"type\":\"mine\"}");
    let second = send(&svc, "{\"id\":2,\"type\":\"mine\"}");
    assert_eq!(get(assert_ok(&first), "cached"), &Content::Bool(false));
    assert_eq!(get(assert_ok(&second), "cached"), &Content::Bool(true));
    assert_eq!(
        get(assert_ok(&first), "top"),
        get(assert_ok(&second), "top")
    );
    // The aggregate merged exactly one engine run: its work counters
    // equal a solo run's, while the service counters saw both requests.
    let solo = GrMiner::new(&g, default_cfg(&g)).try_mine().unwrap();
    let agg = svc.aggregate_stats();
    assert_eq!(agg.grs_examined, solo.stats.grs_examined);
    assert_eq!(agg.partitions_examined, solo.stats.partitions_examined);
    assert_eq!(agg.requests_served, 2);
    assert_eq!(agg.cache_hits, 1);
    // Different parameters miss the cache and mine again.
    send(&svc, "{\"id\":3,\"type\":\"mine\",\"k\":5}");
    let solo5 = GrMiner::new(
        &g,
        MinerConfig {
            k: 5,
            ..default_cfg(&g)
        },
    )
    .try_mine()
    .unwrap();
    let agg = svc.aggregate_stats();
    assert_eq!(
        agg.grs_examined,
        solo.stats.grs_examined + solo5.stats.grs_examined
    );
    assert_eq!(agg.cache_hits, 1);
}

#[test]
fn concurrent_identical_requests_coalesce_on_one_mine() {
    let g = workload();
    let svc = Arc::new(Service::new(g.clone(), ServiceConfig::default()));
    let clients = 4;
    let mut handles = Vec::new();
    for i in 0..clients {
        let svc = Arc::clone(&svc);
        handles.push(std::thread::spawn(move || {
            let conn = CancelToken::default();
            svc.handle_line(&format!("{{\"id\":{i},\"type\":\"mine\"}}"), &conn)
        }));
    }
    let responses: Vec<Content> = handles
        .into_iter()
        .map(|h| serde_json::from_str(&h.join().unwrap()).unwrap())
        .collect();
    let tops: Vec<&Content> = responses.iter().map(|r| get(assert_ok(r), "top")).collect();
    for top in &tops[1..] {
        assert_eq!(*top, tops[0], "coalesced results are bit-identical");
    }
    let solo = GrMiner::new(&g, default_cfg(&g)).try_mine().unwrap();
    let agg = svc.aggregate_stats();
    assert_eq!(
        agg.grs_examined, solo.stats.grs_examined,
        "exactly one engine run behind {clients} identical requests"
    );
    assert_eq!(agg.requests_served, clients as u64);
    assert_eq!(agg.cache_hits + agg.cache_coalesced, clients as u64 - 1);
}

#[test]
fn timeout_zero_is_a_typed_cancellation_with_partial_stats() {
    let svc = service(ServiceConfig::default());
    let resp = send(&svc, "{\"id\":1,\"type\":\"mine\",\"timeout_ms\":0}");
    let err = assert_err(&resp, "Cancelled");
    let partial = get(err, "partial_stats");
    for key in ["cancel_checks", "grs_examined", "requests_served"] {
        assert!(
            keys(partial).contains(&key),
            "partial stats carry the pinned counter schema (missing {key})"
        );
    }
    // A cancelled mine is not cached; the next un-deadlined request mines.
    let resp = send(&svc, "{\"id\":2,\"type\":\"mine\"}");
    assert_eq!(get(assert_ok(&resp), "cached"), &Content::Bool(false));
}

#[test]
fn overload_sheds_with_a_typed_retry_hint() {
    let g = generate(&dblp_config_scaled(0.3)).unwrap();
    let svc = Arc::new(Service::new(
        g,
        ServiceConfig {
            max_concurrent: 1,
            queue_depth: 0,
            retry_after_ms: 77,
            ..ServiceConfig::default()
        },
    ));
    // Occupy the only slot with a slow mine, then probe with a
    // *different* config (so the probe cannot coalesce). Retry the
    // cycle in the unlikely event the slow mine finishes first.
    let mut shed = None;
    for attempt in 0..5u32 {
        let slow_svc = Arc::clone(&svc);
        let slow = std::thread::spawn(move || {
            let conn = CancelToken::default();
            slow_svc.handle_line(
                &format!(
                    "{{\"id\":\"slow-{attempt}\",\"type\":\"mine\",\
                     \"min_supp\":1,\"min_score\":0.01,\"k\":{},\"dynamic\":false}}",
                    1000 + attempt
                ),
                &conn,
            )
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while svc.slots_available() > 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        let conn = CancelToken::default();
        let probe = svc.handle_line(
            &format!(
                "{{\"id\":\"probe-{attempt}\",\"type\":\"mine\",\"k\":{}}}",
                10 + attempt
            ),
            &conn,
        );
        let slow_resp: Content = serde_json::from_str(&slow.join().unwrap()).unwrap();
        assert_ok(&slow_resp);
        let probe: Content = serde_json::from_str(&probe).unwrap();
        if get(&probe, "ok") == &Content::Bool(false) {
            shed = Some(probe);
            break;
        }
    }
    let shed = shed.expect("a probe against a held slot sheds");
    let err = assert_err(&shed, "Overloaded");
    assert_eq!(get(err, "retry_after_ms"), &Content::U64(77));
    assert!(svc.aggregate_stats().requests_shed >= 1);
    assert_eq!(
        svc.slots_available(),
        1,
        "shedding never leaks an admission slot"
    );
}

#[test]
fn bad_requests_are_typed_and_do_not_disturb_the_service() {
    let svc = service(ServiceConfig::default());
    for (line, code) in [
        ("{\"id\":1,\"type\":\"mine\",\"k\":0}", "BadRequest"),
        ("{\"id\":1,\"type\":\"mine\",\"min_supp\":0}", "BadRequest"),
        (
            "{\"id\":1,\"type\":\"mine\",\"metric\":\"zzz\"}",
            "UnsupportedMetric",
        ),
        ("{\"id\":1,\"type\":\"mine\",\"k\":\"ten\"}", "BadRequest"),
        ("{\"id\":1,\"type\":\"mine\",\"bogus\":true}", "BadRequest"),
        ("{\"id\":1,\"type\":\"query\"}", "BadRequest"),
        ("{\"id\":1,\"type\":\"schema\",\"extra\":1}", "BadRequest"),
        ("{\"id\":1}", "BadRequest"),
        ("{\"id\":1,\"type\":7}", "BadRequest"),
    ] {
        let resp = send(&svc, line);
        assert_err(&resp, code);
    }
    assert_eq!(svc.slots_available(), svc.capacity());
    let resp = send(&svc, "{\"id\":2,\"type\":\"mine\"}");
    assert_ok(&resp);
}

#[test]
fn failpoint_requests_are_rejected_without_the_feature() {
    // This suite compiles without `fault-inject`; the chaos matrix in
    // tests/service_chaos.rs covers the armed paths.
    if cfg!(feature = "fault-inject") {
        return;
    }
    let svc = service(ServiceConfig::default());
    let resp = send(
        &svc,
        "{\"id\":1,\"type\":\"failpoint\",\"action\":\"arm\",\
         \"site\":\"request.handle\",\"kind\":\"panic\"}",
    );
    let err = assert_err(&resp, "BadRequest");
    match get(err, "message") {
        Content::Str(m) => assert!(m.contains("fault-inject"), "{m}"),
        other => panic!("message must be a string, got {other:?}"),
    }
}

#[test]
fn shutdown_request_drains_and_gates() {
    let svc = service(ServiceConfig::default());
    let resp = send(&svc, "{\"id\":1,\"type\":\"shutdown\"}");
    assert_eq!(
        get(assert_ok(&resp), "stopping"),
        &Content::Bool(true),
        "shutdown acknowledges before gating"
    );
    assert!(svc.shutdown_token().is_cancelled());
    let resp = send(&svc, "{\"id\":2,\"type\":\"mine\"}");
    assert_err(&resp, "ShuttingDown");
}
