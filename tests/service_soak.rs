//! Soak tests of the live `grmined` surfaces: a seeded
//! disconnect-mid-mine storm over real TCP connections (dropped peers
//! must release their admission slots and never corrupt later results),
//! and graceful SIGTERM shutdown of the spawned daemon binary.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use social_ties::core::service::{serve, Service, ServiceConfig};
use social_ties::datagen::dblp_config_scaled;
use social_ties::graph::io;
use social_ties::{generate, GrMiner, MinerConfig, SocialGraph};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn workload() -> SocialGraph {
    generate(&dblp_config_scaled(0.2)).unwrap()
}

/// Bind a listener, serve `svc` on a background thread, and return the
/// address plus the join handle (resolved by `svc.shut_down()`).
fn spawn_server(svc: &Arc<Service>) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server_svc = Arc::clone(svc);
    let handle = std::thread::spawn(move || {
        serve(listener, &server_svc).expect("serve runs until shutdown");
    });
    (addr, handle)
}

fn send_line(stream: &mut TcpStream, line: &str) {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .expect("request write");
}

fn read_line(stream: &mut TcpStream) -> String {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("response read");
    line.trim_end().to_string()
}

#[test]
fn disconnect_storm_releases_slots_and_keeps_results_bit_identical() {
    let graph = workload();
    let svc = Arc::new(Service::new(
        graph.clone(),
        ServiceConfig {
            max_concurrent: 2,
            queue_depth: 16,
            cache_capacity: 0, // every request must really mine
            ..ServiceConfig::default()
        },
    ));
    let (addr, server) = spawn_server(&svc);

    // Seeded storm: every session starts a real mine (unique k so no
    // two share anything), half the peers vanish without reading.
    let mut rng = StdRng::seed_from_u64(0x50a6_5eed);
    let sessions = 12;
    let mut survivors = Vec::new();
    for i in 0..sessions {
        let addr = addr.clone();
        let drop_mid_mine = i % 2 == 0;
        let jitter = Duration::from_millis(rng.gen_range(0..20));
        survivors.push(std::thread::spawn(move || {
            std::thread::sleep(jitter);
            let mut stream = TcpStream::connect(&addr).expect("connect");
            send_line(
                &mut stream,
                &format!(
                    "{{\"id\":{i},\"type\":\"mine\",\"min_supp\":1,\
                     \"min_score\":0.2,\"k\":{},\"dynamic\":false}}",
                    100 + i
                ),
            );
            if drop_mid_mine {
                // Vanish without reading: the reader thread sees EOF and
                // cancels the in-flight mine through the token tree.
                drop(stream);
                return None;
            }
            let line = read_line(&mut stream);
            assert!(line.contains("\"ok\":true"), "survivor got: {line}");
            assert!(line.contains(&format!("\"id\":{i}")), "{line}");
            Some(line)
        }));
    }
    let served: Vec<Option<String>> = survivors.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(served.iter().flatten().count(), sessions / 2);

    // Every admission slot must come back, dropped peers included.
    let deadline = Instant::now() + Duration::from_secs(30);
    while svc.slots_available() < svc.capacity() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        svc.slots_available(),
        svc.capacity(),
        "disconnects leaked admission slots"
    );

    // A fresh connection gets results bit-identical to the library run.
    let cfg = MinerConfig {
        min_supp: 1,
        min_score: 0.2,
        k: 100,
        dynamic_topk: false,
        ..MinerConfig::default()
    };
    let expected = GrMiner::new(&graph, cfg).try_mine().unwrap();
    let expected_top = serde_json::to_string(&serde::to_content(&expected.top)).expect("serialize");
    let mut stream = TcpStream::connect(&addr).expect("connect");
    send_line(
        &mut stream,
        "{\"id\":\"fresh\",\"type\":\"mine\",\"min_supp\":1,\
         \"min_score\":0.2,\"k\":100,\"dynamic\":false}",
    );
    let line = read_line(&mut stream);
    assert!(
        line.contains(&format!("\"top\":{expected_top}")),
        "post-storm mine diverged: {}",
        &line[..line.len().min(400)]
    );

    svc.shut_down();
    server.join().expect("server drains");
}

#[test]
fn cancelled_sessions_drain_partial_stats_exactly_once() {
    // In-process twin of the storm's accounting claim: a request whose
    // connection token cancels mid-mine merges its partial counters
    // into the aggregate exactly once — the counter total moves by the
    // partial drain, and replaying the mine afterwards is unperturbed.
    let graph = workload();
    let svc = Service::new(graph.clone(), ServiceConfig::default());
    let before = svc.aggregate_stats();
    assert_eq!(before.cancel_checks, 0);
    let conn = social_ties::graph::CancelToken::default();
    let resp = svc.handle_line(
        "{\"id\":1,\"type\":\"mine\",\"timeout_ms\":0,\"min_supp\":1,\"k\":50}",
        &conn,
    );
    assert!(resp.contains("\"Cancelled\""), "{resp}");
    let after = svc.aggregate_stats();
    assert!(
        after.cancel_checks > 0,
        "the cancelled mine drained its counters into the aggregate"
    );
    assert_eq!(after.requests_served, 0, "a cancelled mine is not served");
    // The drain happened exactly once: a second stats read is stable.
    assert_eq!(svc.aggregate_stats().cancel_checks, after.cancel_checks);
}

#[test]
fn sigterm_shuts_the_daemon_down_with_exit_zero() {
    let dir = std::env::temp_dir().join(format!("grm-svc-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("soak.grm");
    io::save_graph(&generate(&dblp_config_scaled(0.05)).unwrap(), &path).expect("save");

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_grmined"))
        .arg(&path)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let stdout = child.stdout.take().expect("stdout");
    let mut ready = String::new();
    BufReader::new(stdout)
        .read_line(&mut ready)
        .expect("ready line");
    assert!(ready.contains("\"ready\":true"), "{ready}");

    // The ready line carries the bound address; exercise one request so
    // the daemon is provably serving when the signal lands.
    let addr = ready
        .split("\"addr\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("addr in ready line")
        .to_string();
    let mut stream = TcpStream::connect(&addr).expect("connect");
    send_line(&mut stream, "{\"id\":1,\"type\":\"schema\"}");
    assert!(read_line(&mut stream).contains("\"ok\":true"));

    let kill = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let deadline = Instant::now() + Duration::from_secs(20);
    let status = loop {
        if let Some(status) = child.try_wait().expect("wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "daemon ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(0), "graceful shutdown exits 0");
    let _ = std::fs::remove_dir_all(&dir);
}
