//! Property-based tests (proptest) for the paper's theorems and the
//! miner's end-to-end correctness on arbitrary attributed graphs.

use proptest::prelude::*;
use social_ties::core::reference::mine_reference;
use social_ties::graph::io;
use social_ties::graph::kernel;
use social_ties::graph::sort::{partition_by, PartitionArena};
use social_ties::{Gr, GrMiner, MinerConfig, SchemaBuilder, SocialGraph};

/// An arbitrary small attributed graph: up to 3 node attrs (random
/// homophily flags), up to 1 edge attr, up to 10 nodes / 40 edges.
fn arb_graph() -> impl Strategy<Value = SocialGraph> {
    (
        prop::collection::vec(any::<bool>(), 1..=3), // homophily flags
        2u16..=3,                                    // node domain size
        0usize..=1,                                  // edge attr count
        2u32..=10,                                   // nodes
        1u32..=40,                                   // edges
        any::<u64>(),                                // value seed
    )
        .prop_map(|(flags, domain, ea, nodes, edges, seed)| {
            let mut sb = SchemaBuilder::new();
            for (i, &h) in flags.iter().enumerate() {
                sb = sb.node_attr(format!("N{i}"), domain, h);
            }
            for i in 0..ea {
                sb = sb.edge_attr(format!("E{i}"), 2);
            }
            let schema = sb.build().unwrap();
            let mut b = social_ties::GraphBuilder::new(schema);
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..nodes {
                let row: Vec<u16> = (0..flags.len())
                    .map(|_| (next() % (domain as u64 + 1)) as u16)
                    .collect();
                b.add_node(&row).unwrap();
            }
            for _ in 0..edges {
                let s = (next() % nodes as u64) as u32;
                let mut t = (next() % nodes as u64) as u32;
                if t == s {
                    t = (t + 1) % nodes;
                }
                let ev: Vec<u16> = (0..ea).map(|_| (next() % 3) as u16).collect();
                b.add_edge(s, t, &ev).unwrap();
            }
            b.build().unwrap()
        })
}

proptest! {
    // Each case runs a brute-force reference mine (exponential in attrs),
    // so keep the case count moderate; the deterministic differential
    // tests in miner_equivalence.rs cover many more seeds cheaply.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: GRMiner (static threshold) equals the
    /// brute-force Definition-5 oracle on arbitrary graphs and thresholds.
    #[test]
    fn grminer_equals_reference(
        g in arb_graph(),
        min_supp in 1u64..=3,
        min_nhp in prop::sample::select(vec![0.2, 0.45, 0.75]),
        k in 1usize..=20,
    ) {
        let cfg = MinerConfig::nhp(min_supp, min_nhp, k).without_dynamic_topk();
        let fast = GrMiner::new(&g, cfg.clone()).mine();
        let oracle = mine_reference(&g, &cfg);
        let fk: Vec<(Gr, u64)> = fast.top.iter().map(|s| (s.gr.clone(), s.supp)).collect();
        let ok: Vec<(Gr, u64)> = oracle.iter().map(|s| (s.gr.clone(), s.supp)).collect();
        prop_assert_eq!(fk, ok);
    }

    /// Theorem 1: for every examined GR, nhp ∈ [0, 1], the denominator is
    /// positive, and nhp ≥ conf (Remark 1).
    #[test]
    fn theorem1_nhp_bounds(g in arb_graph()) {
        let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.0, 1000)).mine();
        for x in &result.top {
            prop_assert!(x.supp > 0);
            prop_assert!(x.supp_lw > x.heff, "denominator must stay positive");
            let nhp = x.nhp();
            prop_assert!((0.0..=1.0 + 1e-12).contains(&nhp));
            prop_assert!(nhp + 1e-12 >= x.conf(), "nhp >= conf (Remark 1)");
            prop_assert!((x.score - nhp).abs() < 1e-12);
        }
    }

    /// Theorem 2(1): results respect minSupp; Def. 5(1): results respect
    /// minNhp; Def. 5(3): results are rank-sorted and at most k.
    #[test]
    fn definition5_conditions(
        g in arb_graph(),
        min_supp in 1u64..=4,
        k in 1usize..=10,
    ) {
        let cfg = MinerConfig::nhp(min_supp, 0.4, k);
        let result = GrMiner::new(&g, cfg).mine();
        prop_assert!(result.top.len() <= k);
        for w in result.top.windows(2) {
            prop_assert_ne!(
                w[0].rank_cmp(&w[1]),
                std::cmp::Ordering::Greater,
                "output must be rank-sorted"
            );
        }
        for x in &result.top {
            prop_assert!(x.supp >= min_supp);
            prop_assert!(x.score >= 0.4);
            prop_assert!(!x.gr.is_trivial(g.schema()));
        }
        // Def. 5(2): no result generalizes another.
        for a in &result.top {
            for b in &result.top {
                if a.gr != b.gr {
                    prop_assert!(!a.gr.is_more_general_than(&b.gr));
                }
            }
        }
    }

    /// GRMiner(k) never does more work than GRMiner, and every GR it
    /// returns satisfies condition (1) with exactly measured supports
    /// (the generality corner case may add entries — see DESIGN.md — but
    /// never unsound ones).
    #[test]
    fn dynamic_pruning_is_sound(g in arb_graph(), k in 1usize..=8) {
        let cfg = MinerConfig::nhp(1, 0.3, k);
        let dynamic = GrMiner::new(&g, cfg.clone()).mine();
        let exact = GrMiner::new(&g, cfg.clone().without_dynamic_topk()).mine();
        prop_assert!(dynamic.stats.grs_examined <= exact.stats.grs_examined);

        let cond1 = mine_reference(&g, &MinerConfig {
            generality_filter: false,
            k: usize::MAX,
            dynamic_topk: false,
            ..cfg
        });
        for x in &dynamic.top {
            prop_assert!(
                cond1.iter().any(|r| r.gr == x.gr && r.supp == x.supp
                    && r.supp_lw == x.supp_lw && r.heff == x.heff),
                "unsound dynamic result: {:?}", x.gr
            );
        }
        // Exact winners are only displaced by better-ranked entries.
        if dynamic.top.len() == k {
            let worst = dynamic.top.last().expect("k >= 1");
            for e in &exact.top {
                let present = dynamic.top.iter().any(|d| d.gr == e.gr);
                let outranked = e.rank_cmp(worst) == std::cmp::Ordering::Greater;
                prop_assert!(present || outranked);
            }
        }
    }

    /// The fused two-level engine against a naive stable `sort_by_key`
    /// oracle, across random domains and key columns (value 0 plays the
    /// NULL role — the engine treats it like any other bucket; the miner
    /// skips it later). Three things must agree with the oracle: the
    /// final slice order (stability included), the parent partition
    /// records, and every pre-counted child partitioning. The unfused
    /// columnar pass must match bit for bit as well.
    #[test]
    fn fused_partition_engine_matches_sort_by_key_oracle(
        domain1 in 1u16..=9,
        domain2 in 1u16..=6,
        seed in any::<u64>(),
        n in 0usize..300,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let col1: Vec<u16> = (0..n).map(|_| (next() % domain1 as u64) as u16).collect();
        let col2: Vec<u16> = (0..n).map(|_| (next() % domain2 as u64) as u16).collect();
        let (b1, b2) = (domain1 as usize, domain2 as usize);

        // Oracle: a stable comparison sort by the composite key.
        let mut oracle: Vec<u32> = (0..n as u32).collect();
        oracle.sort_by_key(|&id| (col1[id as usize], col2[id as usize]));

        // Fused engine: parent pass on col1, pre-counted children on col2.
        let mut arena = PartitionArena::new();
        let mut data: Vec<u32> = (0..n as u32).collect();
        let (frame, level) = arena
            .partition_col_fused(&mut data, b1, &col1, &col2, b2)
            .expect("keys lie below their domains");
        let parts: Vec<_> = arena.records(&frame).to_vec();
        // Parent records match the oracle's value grouping.
        let mut at = 0usize;
        for part in &parts {
            prop_assert_eq!(part.range().start, at);
            for &id in &data[part.range()] {
                prop_assert_eq!(col1[id as usize], part.value);
            }
            at = part.range().end;
        }
        prop_assert_eq!(at, n, "partitions tile the slice");
        for part in &parts {
            let hist = arena.child_hist(level, *part);
            let sub = &mut data[part.range()];
            let child = arena.partition_pre_counted(sub, b2, hist);
            let mut cat = 0usize;
            for c in arena.records(&child) {
                prop_assert_eq!(c.range().start, cat);
                for &id in &sub[c.range()] {
                    prop_assert_eq!(col2[id as usize], c.value);
                }
                cat = c.range().end;
            }
            prop_assert_eq!(cat, sub.len());
            arena.pop_frame(child);
        }
        arena.pop_frame(frame);
        arena.pop_fused(level);
        // Content + stability: the two-level result IS the stable
        // composite sort.
        prop_assert_eq!(&data, &oracle, "fused engine diverged from sort_by_key");

        // The unfused columnar passes produce the identical result.
        let mut plain: Vec<u32> = (0..n as u32).collect();
        let f1 = arena.partition_col(&mut plain, b1, &col1).unwrap();
        let plain_parts: Vec<_> = arena.records(&f1).to_vec();
        prop_assert_eq!(&plain_parts, &parts, "fusion changed the parent records");
        for part in &plain_parts {
            let sub = &mut plain[part.range()];
            let f2 = arena.partition_col(sub, b2, &col2).unwrap();
            arena.pop_frame(f2);
        }
        arena.pop_frame(f1);
        prop_assert_eq!(&plain, &oracle, "unfused engine diverged from sort_by_key");
    }

    /// The vectorized counting kernels against their scalar oracles, on
    /// arbitrary key material: the gather reproduces `col[data[i]]` and
    /// reports the true maximum; the striped histogram equals the naive
    /// count (and re-zeroes its stripes); and a full arena pass — plain
    /// and fused — is bit-identical with the kernels on and off.
    #[test]
    fn kernel_primitives_match_scalar_oracle(
        domain in 1u16..=24,
        next_domain in 1u16..=6,
        seed in any::<u64>(),
        n in 0usize..400,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let col: Vec<u16> = (0..n).map(|_| (next() % domain as u64) as u16).collect();
        let next_col: Vec<u16> = (0..n).map(|_| (next() % next_domain as u64) as u16).collect();
        let data: Vec<u32> = {
            let mut d: Vec<u32> = (0..n as u32).collect();
            // A deterministic shuffle so gathers are non-sequential.
            for i in (1..d.len()).rev() {
                d.swap(i, (next() % (i as u64 + 1)) as usize);
            }
            d
        };

        // gather_keys: exact values + exact maximum.
        let mut keys = vec![0u16; n];
        let (max, _) = kernel::gather_keys(&data, &col, &mut keys);
        let expect: Vec<u16> = data.iter().map(|&id| col[id as usize]).collect();
        prop_assert_eq!(&keys, &expect);
        prop_assert_eq!(max, expect.iter().copied().max().unwrap_or(0));

        // histogram_u32: equals the naive count; stripes re-zeroed.
        let b = domain as usize;
        let mut counts = vec![0u32; b];
        let mut stripes = vec![0u32; kernel::STRIPES * b];
        kernel::histogram_u32(&keys, &mut counts, &mut stripes);
        let mut naive = vec![0u32; b];
        for &k in &keys {
            naive[k as usize] += 1;
        }
        prop_assert_eq!(&counts, &naive);
        prop_assert!(stripes.iter().all(|&s| s == 0), "stripes must re-zero");

        // Arena passes: kernel on vs off, plain and fused, bit for bit.
        let run = |on: bool| {
            let mut arena = PartitionArena::new();
            arena.set_kernel_enabled(on);
            let mut plain = data.clone();
            let f = arena.partition_col(&mut plain, b, &col).unwrap();
            let precs = arena.records(&f).to_vec();
            arena.pop_frame(f);
            let mut fused = data.clone();
            let (f, lvl) = arena
                .partition_col_fused(&mut fused, b, &col, &next_col, next_domain as usize)
                .unwrap();
            let frecs = arena.records(&f).to_vec();
            let mut kids = Vec::new();
            for rec in frecs.clone() {
                let hist = arena.child_hist(lvl, rec);
                let sub = &mut fused[rec.range()];
                let cf = arena.partition_pre_counted(sub, next_domain as usize, hist);
                kids.push((sub.to_vec(), arena.records(&cf).to_vec()));
                arena.pop_frame(cf);
            }
            arena.pop_frame(f);
            arena.pop_fused(lvl);
            (plain, precs, fused, frecs, kids)
        };
        prop_assert_eq!(run(true), run(false), "kernel must be a pure execution strategy");
    }

    /// Counting sort: output is a permutation, partitions tile the slice
    /// in increasing key order, and the sort is stable.
    #[test]
    fn counting_sort_properties(
        keys in prop::collection::vec(0u16..8, 0..200),
    ) {
        let mut data: Vec<u32> = (0..keys.len() as u32).collect();
        let parts = partition_by(&mut data, 8, |i| keys[i as usize]).unwrap();
        // Permutation.
        let mut sorted = data.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..keys.len() as u32).collect::<Vec<_>>());
        // Tiling, ordering, stability.
        let mut next = 0usize;
        for p in &parts {
            prop_assert_eq!(p.range.start, next);
            next = p.range.end;
            let ids = &data[p.range.clone()];
            for w in ids.windows(2) {
                prop_assert!(w[0] < w[1], "stability preserves input order");
            }
            for &id in ids {
                prop_assert_eq!(keys[id as usize], p.value);
            }
        }
        prop_assert_eq!(next, keys.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// GRMGRAPH persistence is lossless on arbitrary graphs: every node
    /// row, edge endpoint, edge row and schema flag survives, and mining
    /// the reloaded graph yields identical results.
    #[test]
    fn io_round_trip_lossless(g in arb_graph()) {
        let mut buf = Vec::new();
        io::write_graph(&g, &mut buf).unwrap();
        let back = io::read_graph(&buf[..]).unwrap();
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        prop_assert_eq!(back.schema(), g.schema());
        for n in g.node_ids() {
            prop_assert_eq!(back.node_row(n), g.node_row(n));
        }
        for e in g.edge_ids() {
            prop_assert_eq!(back.src(e), g.src(e));
            prop_assert_eq!(back.dst(e), g.dst(e));
            prop_assert_eq!(back.edge_row(e), g.edge_row(e));
        }
        let cfg = MinerConfig::nhp(1, 0.5, 10);
        let a = GrMiner::new(&g, cfg.clone()).mine();
        let b = GrMiner::new(&back, cfg).mine();
        let ka: Vec<Gr> = a.top.iter().map(|x| x.gr.clone()).collect();
        let kb: Vec<Gr> = b.top.iter().map(|x| x.gr.clone()).collect();
        prop_assert_eq!(ka, kb);
    }

    /// The homophily-effect identity: for every mined GR,
    /// `heff <= supp_lw - supp` is NOT generally true, but
    /// `supp + heff <= supp_lw` is (Theorem 1's disjointness argument:
    /// the edges counted by supp go to r, those by heff to l[β], and the
    /// two sets are disjoint whenever β ≠ ∅).
    #[test]
    fn theorem1_disjointness(g in arb_graph()) {
        let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.0, 500)).mine();
        for x in &result.top {
            if x.heff > 0 {
                prop_assert!(
                    x.supp + x.heff <= x.supp_lw,
                    "supp {} + heff {} > supp_lw {}",
                    x.supp, x.heff, x.supp_lw
                );
            }
        }
    }
}

proptest! {
    // The work-stealing engine's exactness contract on arbitrary graphs:
    // each case mines sequentially (static) and in parallel (dynamic,
    // forced splitting), so keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sharded out-of-core engine is exact on arbitrary graphs: for
    /// every shard count, thread count, and top-k mode, `mine_sharded`
    /// over a spilled `ShardStore` reproduces the static sequential
    /// output bit for bit, and (static mode) its semantic counters equal
    /// the in-core collect-mode engine's.
    #[test]
    fn sharded_mine_equals_sequential(
        g in arb_graph(),
        shards in prop::sample::select(vec![1usize, 2, 3, 7]),
        threads in 1usize..=4,
        dynamic in any::<bool>(),
        k in 1usize..=8,
    ) {
        use social_ties::core::parallel::{mine_parallel_with_opts, ParallelOptions};
        use social_ties::core::{mine_sharded, ShardedOptions};
        use social_ties::graph::shard::ShardStore;
        use social_ties::graph::CompactModel;
        static CASE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let case = CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("grm-prop-shard-{}-{case}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ShardStore::build_from_graph(&g, dir.clone(), shards, CompactModel::MAX_EDGES)
            .expect("store builds");
        let mut cfg = MinerConfig::nhp(1, 0.3, k);
        if !dynamic {
            cfg = cfg.without_dynamic_topk();
        }
        let seq = GrMiner::new(&g, cfg.clone().without_dynamic_topk()).mine();
        let out = mine_sharded(&store, &cfg, &ShardedOptions { threads, memory_budget: None })
            .expect("sharded mine");
        prop_assert_eq!(&seq.top, &out.top, "sharded deviated from sequential");
        if !dynamic {
            let reference = mine_parallel_with_opts(
                &g,
                &cfg,
                &social_ties::core::Dims::all(g.schema()),
                ParallelOptions { threads: 1, split_dominant: false, steal: false,
                    split_depth: 0, split_min: 0 },
            );
            prop_assert_eq!(reference.stats.semantic(), out.stats.semantic());
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The shared dynamic top-k bound is sound: it never exceeds the
    /// true k-th score of the final result, and the dynamic parallel
    /// engine (bound pruning + exactness-verified post-pass) reproduces
    /// the static Definition-5 output bit for bit — on arbitrary graphs,
    /// thresholds, k, and thread counts.
    #[test]
    fn shared_bound_never_exceeds_true_kth_score(
        g in arb_graph(),
        k in 1usize..=8,
        min_nhp in prop::sample::select(vec![0.0, 0.3, 0.6]),
        threads in 1usize..=4,
    ) {
        use social_ties::core::parallel::{mine_parallel_traced, ParallelOptions};
        let cfg = MinerConfig::nhp(1, min_nhp, k);
        let (par, bound) = mine_parallel_traced(
            &g,
            &cfg,
            &social_ties::core::Dims::all(g.schema()),
            ParallelOptions {
                threads,
                split_min: 1,
                ..ParallelOptions::default()
            },
        );
        let seq = GrMiner::new(&g, cfg.without_dynamic_topk()).mine();
        prop_assert_eq!(&seq.top, &par.top, "dynamic parallel deviated from static");
        if let Some(b) = bound {
            // A published bound implies k sure-survivors existed, so the
            // result is a full top-k and the bound stays at or below its
            // weakest member's score.
            prop_assert_eq!(par.top.len(), k);
            let kth = par.top.last().unwrap().score;
            prop_assert!(b <= kth + 1e-12, "bound {} exceeds k-th score {}", b, kth);
        }
    }
}
