//! The seeded fault-injection matrix, compiled only with
//! `--features fault-inject`: every armed failpoint schedule must turn
//! into a typed [`MinerError`] (or a clean recovery), never an abort,
//! with the pool's resident peak inside the budget and a fault-free
//! re-run over the same store still bit-identical to the in-core
//! oracle (which doubles as the no-leaked-pins / no-wedged-state
//! check).
//!
//! The failpoint registry is process-global, so every test here takes
//! the shared [`guard`] and disarms on both sides of its scenario.
#![cfg(feature = "fault-inject")]

use social_ties::core::parallel::{try_mine_parallel_with_opts, ParallelOptions};
use social_ties::core::sharded::{mine_sharded, ShardedOptions};
use social_ties::core::{Dims, MinerError};
use social_ties::datagen::dblp_config_scaled;
use social_ties::graph::failpoint::{self, FaultKind};
use social_ties::graph::shard::{resident_cost, ShardStore};
use social_ties::graph::{CompactModel, GraphError};
use social_ties::{generate, GrMiner, MinerConfig, SocialGraph};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn tdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("grm-fault-inj-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn store_for(g: &SocialGraph, name: &str, shards: usize) -> ShardStore {
    ShardStore::build_from_graph(g, tdir(name), shards, CompactModel::MAX_EDGES)
        .expect("store builds")
}

fn cleanup(store: ShardStore) {
    let dir = store.dir().to_path_buf();
    drop(store);
    let _ = std::fs::remove_dir_all(dir);
}

fn workload() -> SocialGraph {
    generate(&dblp_config_scaled(0.05)).unwrap()
}

fn cfg() -> MinerConfig {
    MinerConfig::nhp(3, 0.5, 10).without_dynamic_topk()
}

#[test]
fn one_transient_spill_failure_is_retried_and_recovered() {
    let _g = guard();
    let g = workload();
    let oracle = GrMiner::new(&g, cfg()).mine();

    failpoint::disarm_all();
    failpoint::arm("spill.write", 0, 1, FaultKind::IoError);
    let store = store_for(&g, "spill-retry", 2);
    failpoint::disarm_all();
    assert!(
        store.spill_retries() >= 1,
        "the injected write failure must be visible as a retry"
    );
    let out = mine_sharded(&store, &cfg(), &ShardedOptions::default()).expect("recovered mine");
    assert_eq!(out.top, oracle.top, "retry must not corrupt the spill");
    assert!(
        out.stats.spill_retries >= 1,
        "the retry rides out through MinerStats: {:?}",
        out.stats
    );
    cleanup(store);
}

#[test]
fn exhausted_spill_retries_surface_a_typed_io_error() {
    let _g = guard();
    let g = workload();
    failpoint::disarm_all();
    // Two consecutive failures at the same chunk: the single bounded
    // retry is exhausted and the build fails with the *first* error.
    failpoint::arm("spill.write", 0, 2, FaultKind::IoError);
    let err = ShardStore::build_from_graph(&g, tdir("spill-exhaust"), 2, CompactModel::MAX_EDGES)
        .expect_err("doubly-failed spill must not succeed");
    failpoint::disarm_all();
    assert!(
        matches!(err, GraphError::Io { ref message } if message.contains("spill.write")),
        "got {err:?}"
    );
    let _ = std::fs::remove_dir_all(tdir("spill-exhaust"));
}

#[test]
fn slice_spill_failures_during_the_mine_are_retried_too() {
    let _g = guard();
    let g = workload();
    let oracle = GrMiner::new(&g, cfg()).mine();
    // Build the store fault-free, then arm: the next spill writes are
    // the mine's own per-value slice spills.
    let store = store_for(&g, "slice-retry", 2);
    failpoint::disarm_all();
    failpoint::arm("spill.write", 0, 1, FaultKind::IoError);
    let out = mine_sharded(&store, &cfg(), &ShardedOptions::default());
    failpoint::disarm_all();
    let out = out.expect("one transient slice-spill failure must recover");
    assert_eq!(out.top, oracle.top);
    assert!(out.stats.spill_retries >= 1, "{:?}", out.stats);
    assert!(out.stats.faults_injected >= 1, "{:?}", out.stats);
    cleanup(store);
}

#[test]
fn shard_load_faults_become_typed_errors_and_leave_no_wedged_state() {
    let _g = guard();
    let g = workload();
    let oracle = GrMiner::new(&g, cfg()).mine();
    let store = store_for(&g, "load-faults", 3);
    for kind in [FaultKind::IoError, FaultKind::ShortRead] {
        failpoint::disarm_all();
        failpoint::arm("shard.load", 0, 1, kind);
        let out = mine_sharded(&store, &cfg(), &ShardedOptions::default());
        failpoint::disarm_all();
        match out {
            Err(MinerError::Graph(GraphError::Io { .. }))
            | Err(MinerError::Graph(GraphError::ShardIo(_))) => {}
            other => panic!("{kind:?}: expected a typed storage error, got {other:?}"),
        }
        // No leaked pins, no wedged store: the same store mines clean.
        let rerun = mine_sharded(&store, &cfg(), &ShardedOptions::default())
            .expect("fault-free rerun over the same store");
        assert_eq!(rerun.top, oracle.top, "{kind:?}: rerun diverged");
    }
    cleanup(store);
}

#[test]
fn a_mid_mine_budget_shrink_stays_typed_and_inside_the_original_budget() {
    let _g = guard();
    let g = workload();
    let oracle = GrMiner::new(&g, cfg()).mine();
    let store = store_for(&g, "shrink", 3);
    let generous = resident_cost(g.schema(), g.node_count(), g.edge_count()) * 4;
    for shrink_to in [1u64, 1024, generous / 2] {
        failpoint::disarm_all();
        failpoint::arm("pool.evict", 0, 1, FaultKind::ShrinkBudget(shrink_to));
        let out = mine_sharded(
            &store,
            &cfg(),
            &ShardedOptions {
                threads: 2,
                memory_budget: Some(generous),
            },
        );
        failpoint::disarm_all();
        match out {
            Ok(r) => {
                assert_eq!(r.top, oracle.top, "shrink {shrink_to}: wrong results");
                assert!(
                    r.stats.shard_resident_bytes_peak <= generous,
                    "shrink {shrink_to}: peak {} over the budget {generous}",
                    r.stats.shard_resident_bytes_peak
                );
            }
            Err(MinerError::Graph(GraphError::MemoryBudgetTooSmall { .. })) => {
                // The shrunk budget can no longer hold a unit — the
                // typed remedy, never a deadlock or an abort.
            }
            Err(other) => panic!("shrink {shrink_to}: unexpected error {other}"),
        }
    }
    cleanup(store);
}

#[test]
fn an_injected_worker_panic_is_contained_in_the_parallel_engine() {
    let _g = guard();
    let g = workload();
    let oracle = GrMiner::new(&g, cfg()).mine();
    failpoint::disarm_all();
    failpoint::arm("worker.body", 0, 1, FaultKind::Panic);
    let out = try_mine_parallel_with_opts(
        &g,
        &cfg(),
        &Dims::all(g.schema()),
        ParallelOptions {
            threads: 4,
            ..ParallelOptions::default()
        },
    );
    failpoint::disarm_all();
    match out {
        Err(e @ MinerError::WorkerPanicked { .. }) => {
            assert!(
                e.to_string().contains("injected panic at worker.body"),
                "payload must survive verbatim: {e}"
            );
            let partial = e.partial_stats().unwrap();
            assert!(partial.faults_injected >= 1, "{partial:?}");
            assert!(partial.cancel_checks > 0, "siblings drained: {partial:?}");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    // The panic left nothing behind: a clean re-run is bit-identical.
    let rerun = try_mine_parallel_with_opts(
        &g,
        &cfg(),
        &Dims::all(g.schema()),
        ParallelOptions {
            threads: 4,
            ..ParallelOptions::default()
        },
    )
    .expect("clean rerun");
    assert_eq!(rerun.top, oracle.top);
}

#[test]
fn an_injected_worker_panic_is_contained_in_the_sharded_engine() {
    let _g = guard();
    let g = workload();
    let oracle = GrMiner::new(&g, cfg()).mine();
    let store = store_for(&g, "worker-panic", 3);
    failpoint::disarm_all();
    failpoint::arm("worker.body", 1, 1, FaultKind::Panic);
    let out = mine_sharded(
        &store,
        &cfg(),
        &ShardedOptions {
            threads: 2,
            memory_budget: None,
        },
    );
    failpoint::disarm_all();
    match out {
        Err(e @ MinerError::WorkerPanicked { .. }) => {
            assert!(e.to_string().contains("injected panic at worker.body"));
            let partial = e.partial_stats().unwrap();
            assert!(partial.faults_injected >= 1, "{partial:?}");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    let rerun = mine_sharded(&store, &cfg(), &ShardedOptions::default()).expect("clean rerun");
    assert_eq!(rerun.top, oracle.top);
    cleanup(store);
}

/// The acceptance matrix: a fixed seed grid over every site and a range
/// of hit indices. Each cell must end in a typed error or a clean,
/// bit-identical result — zero aborts, peak ≤ budget throughout.
#[test]
fn the_seeded_matrix_never_aborts_and_never_returns_wrong_results() {
    let _g = guard();
    let g = workload();
    let oracle = GrMiner::new(&g, cfg()).mine();
    let store = store_for(&g, "matrix", 3);
    let budget = resident_cost(g.schema(), g.node_count(), g.edge_count()) * 4;
    let matrix: &[(&'static str, FaultKind)] = &[
        ("spill.write", FaultKind::IoError),
        ("shard.load", FaultKind::IoError),
        ("shard.load", FaultKind::ShortRead),
        ("pool.evict", FaultKind::ShrinkBudget(4096)),
        ("worker.body", FaultKind::Panic),
    ];
    for &(site, kind) in matrix {
        for after in [0u64, 1, 2, 5, 50] {
            failpoint::disarm_all();
            failpoint::arm(site, after, 1, kind);
            let out = mine_sharded(
                &store,
                &cfg(),
                &ShardedOptions {
                    threads: 2,
                    memory_budget: Some(budget),
                },
            );
            failpoint::disarm_all();
            match out {
                // A schedule past the site's actual hit count injects
                // nothing — the mine must then be bit-identical.
                Ok(r) => {
                    assert_eq!(r.top, oracle.top, "{site}@{after}: wrong results");
                    assert!(
                        r.stats.shard_resident_bytes_peak <= budget,
                        "{site}@{after}: peak over budget"
                    );
                }
                Err(e) => {
                    // Typed, never an abort; partial stats (when the
                    // error carries them) also respect the budget.
                    if let Some(partial) = e.partial_stats() {
                        assert!(
                            partial.shard_resident_bytes_peak <= budget,
                            "{site}@{after}: drained peak over budget: {partial:?}"
                        );
                    }
                    match e {
                        MinerError::Graph(_) | MinerError::WorkerPanicked { .. } => {}
                        other => panic!("{site}@{after}: unexpected error {other}"),
                    }
                }
            }
        }
    }
    // The store survived the whole matrix: one final clean mine.
    let rerun = mine_sharded(&store, &cfg(), &ShardedOptions::default()).expect("final clean mine");
    assert_eq!(rerun.top, oracle.top);
    cleanup(store);
}
