//! Fault-tolerant mining, the always-on half: cooperative cancellation
//! and deadlines across all three engines, spill-integrity rejection of
//! corrupted/truncated shard files, eager budget validation, and the
//! property that a cancelled mine never deadlocks, always drains its
//! counters, and never perturbs a later fault-free run. The seeded
//! failpoint matrix (injected I/O errors, short reads, budget shrinks,
//! worker panics) lives in `tests/fault_injection.rs` behind
//! `--features fault-inject`.

use proptest::prelude::*;
use social_ties::core::parallel::{try_mine_parallel_with_opts, ParallelOptions};
use social_ties::core::sharded::{mine_sharded, ShardedOptions};
use social_ties::core::{Dims, MinerError};
use social_ties::datagen::dblp_config_scaled;
use social_ties::graph::shard::ShardStore;
use social_ties::graph::{CancelToken, CompactModel, GraphError, ShardIoError};
use social_ties::{generate, toy_network, GrMiner, MinerConfig, ScoredGr, SocialGraph};
use std::path::PathBuf;

fn tdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("grm-fault-tol-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn store_for(g: &SocialGraph, name: &str, shards: usize) -> ShardStore {
    ShardStore::build_from_graph(g, tdir(name), shards, CompactModel::MAX_EDGES)
        .expect("store builds")
}

fn cleanup(store: ShardStore) {
    let dir = store.dir().to_path_buf();
    drop(store);
    let _ = std::fs::remove_dir_all(dir);
}

fn workload() -> SocialGraph {
    generate(&dblp_config_scaled(0.05)).unwrap()
}

/// Run every engine under `cfg` and return the three outcomes
/// (sequential, parallel 2-thread, sharded 2×2).
fn mine_everywhere(
    g: &SocialGraph,
    cfg: &MinerConfig,
    store: &ShardStore,
) -> [Result<Vec<ScoredGr>, MinerError>; 3] {
    let seq = GrMiner::new(g, cfg.clone()).try_mine().map(|r| r.top);
    let par = try_mine_parallel_with_opts(
        g,
        cfg,
        &Dims::all(g.schema()),
        ParallelOptions {
            threads: 2,
            ..ParallelOptions::default()
        },
    )
    .map(|r| r.top);
    let sharded = mine_sharded(
        store,
        cfg,
        &ShardedOptions {
            threads: 2,
            memory_budget: None,
        },
    )
    .map(|r| r.top);
    [seq, par, sharded]
}

#[test]
fn a_pre_cancelled_token_stops_every_engine_with_drained_stats() {
    let g = workload();
    let store = store_for(&g, "precancel", 2);
    let token = CancelToken::new();
    token.cancel();
    let cfg = MinerConfig::nhp(3, 0.5, 10).with_cancel(token);
    for (i, out) in mine_everywhere(&g, &cfg, &store).into_iter().enumerate() {
        match out {
            Err(e @ MinerError::Cancelled { .. }) => {
                let partial = e.partial_stats().expect("cancellation carries stats");
                // A pre-tripped token means the engine must have probed
                // it at least once before giving up.
                assert!(partial.cancel_checks > 0, "engine {i}: {partial:?}");
                assert!(e.to_string().contains("cancelled"), "engine {i}");
            }
            other => panic!("engine {i}: expected Cancelled, got {other:?}"),
        }
    }
    cleanup(store);
}

#[test]
fn an_expired_deadline_cancels_every_engine() {
    let g = workload();
    let store = store_for(&g, "deadline", 2);
    let cfg = MinerConfig::nhp(3, 0.5, 10).with_deadline_ms(0);
    for (i, out) in mine_everywhere(&g, &cfg, &store).into_iter().enumerate() {
        assert!(
            matches!(out, Err(MinerError::Cancelled { .. })),
            "engine {i}: an already-expired deadline must cancel, got {out:?}"
        );
    }
    cleanup(store);
}

#[test]
fn a_generous_deadline_changes_nothing() {
    let g = workload();
    let cfg = MinerConfig::nhp(3, 0.5, 10);
    let plain = GrMiner::new(&g, cfg.clone()).mine();
    let bounded = GrMiner::new(&g, cfg.with_deadline_ms(600_000))
        .try_mine()
        .expect("a ten-minute deadline never expires here");
    assert_eq!(plain.top, bounded.top);
    assert_eq!(plain.stats.semantic(), bounded.stats.semantic());
}

#[test]
fn cancellation_at_fixed_depths_drains_and_never_perturbs_reruns() {
    let g = workload();
    let cfg = MinerConfig::nhp(3, 0.5, 10);
    let oracle = GrMiner::new(&g, cfg.clone()).mine();
    for trip in [1u64, 3, 17, 121, 1009] {
        let token = CancelToken::tripping_after(trip);
        let out = GrMiner::new(&g, cfg.clone().with_cancel(token)).try_mine();
        match out {
            Err(e @ MinerError::Cancelled { .. }) => {
                let partial = e.partial_stats().unwrap();
                assert!(
                    partial.cancel_checks >= 1,
                    "trip {trip}: counters must be drained, got {partial:?}"
                );
            }
            Ok(r) => assert_eq!(r.top, oracle.top, "trip {trip}: late trip, full result"),
            Err(other) => panic!("trip {trip}: unexpected error {other}"),
        }
        // The cancelled run left no residue: a fresh uncancelled mine is
        // bit-identical to the oracle.
        let rerun = GrMiner::new(&g, cfg.clone()).mine();
        assert_eq!(rerun.top, oracle.top, "trip {trip}: rerun diverged");
        assert_eq!(rerun.stats.semantic(), oracle.stats.semantic());
    }
}

#[test]
fn corrupted_spill_files_are_rejected_with_typed_errors() {
    let g = workload();

    // Flipping a payload byte breaks the per-chunk checksum.
    let store = store_for(&g, "corrupt-body", 2);
    let victim = store.dir().join("shard-0.edges");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&victim, &bytes).unwrap();
    let err = store.load_shard(0).expect_err("corrupted shard must fail");
    assert!(
        matches!(
            err,
            GraphError::ShardIo(ShardIoError::ChecksumMismatch { .. })
                | GraphError::ShardIo(ShardIoError::ShortRead { .. })
        ),
        "got {err:?}"
    );
    // The full mine surfaces the same typed error instead of panicking
    // or returning silently wrong results.
    let cfg = MinerConfig::nhp(3, 0.5, 10);
    let out = mine_sharded(&store, &cfg, &ShardedOptions::default());
    assert!(
        matches!(out, Err(MinerError::Graph(GraphError::ShardIo(_)))),
        "got {out:?}"
    );
    cleanup(store);

    // Clobbering the header magic is caught before any chunk is read.
    let store = store_for(&g, "corrupt-magic", 2);
    let victim = store.dir().join("shard-1.edges");
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes[0] ^= 0xFF;
    std::fs::write(&victim, &bytes).unwrap();
    let err = store.load_shard(1).expect_err("bad magic must fail");
    assert!(
        matches!(err, GraphError::ShardIo(ShardIoError::BadMagic)),
        "got {err:?}"
    );
    cleanup(store);

    // Truncation surfaces as a typed short read.
    let store = store_for(&g, "corrupt-trunc", 2);
    let victim = store.dir().join("shard-0.edges");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() - 7]).unwrap();
    let err = store.load_shard(0).expect_err("truncated shard must fail");
    assert!(
        matches!(
            err,
            GraphError::ShardIo(ShardIoError::ShortRead { .. })
                | GraphError::ShardIo(ShardIoError::ChecksumMismatch { .. })
        ),
        "got {err:?}"
    );
    cleanup(store);
}

#[test]
fn impossible_budget_fails_eagerly_with_zero_work_done() {
    let g = toy_network();
    let store = store_for(&g, "eager-budget", 2);
    let err = mine_sharded(
        &store,
        &MinerConfig::nhp(1, 0.5, 10),
        &ShardedOptions {
            threads: 4,
            memory_budget: Some(1),
        },
    )
    .expect_err("a 1-byte budget cannot hold a shard");
    match err {
        MinerError::Graph(GraphError::MemoryBudgetTooSmall { needed, budget }) => {
            assert_eq!(budget, 1);
            assert!(needed > 1);
            // The message carries the minimum viable budget — validation
            // happened at pool construction, before any worker ran.
            let msg = err.to_string();
            assert!(msg.contains("minimum viable budget"), "got: {msg}");
        }
        other => panic!("expected MemoryBudgetTooSmall, got {other:?}"),
    }
    cleanup(store);
}

#[test]
fn infallible_entry_points_panic_with_a_redirect_when_cancellable() {
    // `mine()` cannot report a typed cancellation; its documented
    // contract is a panic pointing at `try_mine`.
    let g = toy_network();
    let token = CancelToken::new();
    token.cancel();
    let cfg = MinerConfig::nhp(1, 0.5, 10).with_cancel(token);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        GrMiner::new(&g, cfg).mine()
    }));
    let payload = caught.expect_err("mine() must panic on cancellation");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("try_mine"), "got: {msg}");
}

proptest! {
    // Each case mines the toy network up to three times; keep the count
    // moderate. The fixed-depth deterministic sweep above covers the
    // larger workload.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cancelling at an arbitrary probe depth, under an arbitrary thread
    /// count, never deadlocks (the test completing is the proof), always
    /// drains counters into the typed error, and never perturbs an
    /// uncancelled re-run.
    #[test]
    fn random_depth_cancellation_is_safe(
        trip in 1u64..4000,
        threads in 1usize..4,
        parallel in any::<bool>(),
    ) {
        let g = toy_network();
        // Static threshold: the exactness anchor every engine reproduces
        // bit-identically (sequential *dynamic* has the documented
        // generality corner case, so it is not a cross-engine oracle).
        let cfg = MinerConfig::nhp(1, 0.0, 50).without_dynamic_topk();
        let oracle = GrMiner::new(&g, cfg.clone()).mine();
        let cancellable = cfg.clone().with_cancel(CancelToken::tripping_after(trip));
        let out = if parallel {
            try_mine_parallel_with_opts(
                &g,
                &cancellable,
                &Dims::all(g.schema()),
                ParallelOptions { threads, ..ParallelOptions::default() },
            )
        } else {
            GrMiner::new(&g, cancellable).try_mine()
        };
        match out {
            Ok(r) => prop_assert_eq!(r.top, oracle.top.clone()),
            Err(e @ MinerError::Cancelled { .. }) => {
                let partial = e.partial_stats().unwrap();
                prop_assert!(partial.cancel_checks > 0, "drained: {:?}", partial);
            }
            Err(other) => prop_assert!(false, "unexpected error {}", other),
        }
        // Re-run without cancellation: bit-identical to the oracle.
        let rerun = GrMiner::new(&g, cfg).mine();
        prop_assert_eq!(rerun.top, oracle.top);
        prop_assert_eq!(rerun.stats.semantic(), oracle.stats.semantic());
    }
}
