//! Data-driven homophily detection recovers the planted configuration of
//! both synthetic workloads — closing the loop between the generator's
//! ground truth and the §III-B problem input.

use social_ties::datagen::{dblp_config_scaled, pokec_config_scaled};
use social_ties::generate;
use social_ties::graph::stats;

#[test]
fn pokec_detection_matches_planted_flags() {
    let g = generate(&pokec_config_scaled(0.04)).unwrap();
    let schema = g.schema();
    let scores = stats::homophily_scores(&g);

    // Region is the dominant homophily driver: highest assortativity.
    let region = schema.node_attr_by_name("Region").unwrap();
    let best = scores
        .iter()
        .max_by(|a, b| a.assortativity().total_cmp(&b.assortativity()))
        .unwrap();
    assert_eq!(
        best.attr, region,
        "Region should top the assortativity list"
    );
    assert!(best.assortativity() > 0.4, "got {}", best.assortativity());

    // Gender and Marital (non-homophily in the config) measure near zero…
    for name in ["Gender", "Marital"] {
        let a = schema.node_attr_by_name(name).unwrap();
        let s = scores.iter().find(|s| s.attr == a).unwrap();
        assert!(
            s.assortativity().abs() < 0.08,
            "{name} assortativity {}",
            s.assortativity()
        );
    }
    // …and are never suggested.
    let suggested = stats::suggest_homophily_attrs(&g, 0.1);
    for name in ["Gender", "Marital"] {
        let a = schema.node_attr_by_name(name).unwrap();
        assert!(!suggested.contains(&a), "{name} wrongly suggested");
    }
    assert!(suggested.contains(&region));
}

#[test]
fn dblp_detection_flags_area_not_productivity() {
    let g = generate(&dblp_config_scaled(0.3)).unwrap();
    let schema = g.schema();
    let suggested = stats::suggest_homophily_attrs(&g, 0.1);
    let area = schema.node_attr_by_name("Area").unwrap();
    let prod = schema.node_attr_by_name("Productivity").unwrap();
    assert!(suggested.contains(&area), "Area is strongly homophilous");
    assert!(
        !suggested.contains(&prod),
        "Productivity must not look homophilous (students<->professors)"
    );
}

#[test]
fn audit_report_renders_for_both_workloads() {
    for g in [
        generate(&pokec_config_scaled(0.01)).unwrap(),
        generate(&dblp_config_scaled(0.05)).unwrap(),
    ] {
        let report = stats::audit_report(&g);
        assert!(report.contains("nodes:"));
        assert!(report.contains("assortativity"));
        assert!(report.lines().count() >= 4);
    }
}

#[test]
fn dst_marginal_reflects_attractiveness_weights() {
    // DBLP's Poor authors are ~91% of nodes but far less of edge
    // destinations (the supervisor-hub effect the generator plants).
    let g = generate(&dblp_config_scaled(0.3)).unwrap();
    let prod = g.schema().node_attr_by_name("Productivity").unwrap();
    let nodes = stats::node_marginal(&g, prod);
    let dsts = stats::dst_marginal(&g, prod);
    let node_poor = nodes[1] as f64 / nodes.iter().sum::<u64>() as f64;
    let dst_poor = dsts[1] as f64 / dsts.iter().sum::<u64>() as f64;
    assert!(node_poor > 0.88, "population share {node_poor}");
    assert!(
        dst_poor < node_poor - 0.1,
        "edge share {dst_poor} must sit well below population share {node_poor}"
    );
}
