//! End-to-end checks on the Fig. 1 toy dating network: the motivating
//! Examples 1–2 of the paper, executed through the full public API.

use social_ties::core::query;
use social_ties::{toy_network, GrBuilder, GrMiner, MinerConfig, RankMetric};

#[test]
fn gr4_surfaces_at_full_nhp() {
    // Example 2 / §III-B: (SEX:F, EDU:Grad) -> (SEX:M, EDU:College) has
    // conf 2/6 but nhp 2/(6-4) = 100% once the homophily effect (GR3's 4
    // edges) is excluded.
    let g = toy_network();
    let result = GrMiner::new(&g, MinerConfig::nhp(2, 0.95, 50)).mine();
    let s = g.schema();
    let gr4 = result
        .top
        .iter()
        .find(|x| {
            x.gr.display(s) == "(SEX:F, EDU:Grad) -[TYPE:dates]-> (EDU:College)"
                || x.gr.display(s) == "(SEX:F, EDU:Grad) -> (EDU:College)"
        })
        .or_else(|| {
            // The most general form satisfying the thresholds may drop SEX
            // or TYPE from the LHS; accept any generalization whose RHS is
            // EDU:College with the full-nhp score.
            result.top.iter().find(|x| {
                x.gr.r.pairs().iter().any(|&(a, v)| {
                    s.node_attr(a).name() == "EDU" && s.node_attr(a).value_name(v) == "College"
                }) && (x.score - 1.0).abs() < 1e-9
            })
        });
    assert!(
        gr4.is_some(),
        "a College-preference GR with nhp=1.0 must be in the top-k:\n{}",
        result.report(s)
    );
}

#[test]
fn query_reproduces_example_1() {
    let g = toy_network();
    let s = g.schema();
    // GR1: (SEX:M) -> (SEX:F, RACE:Asian), supp 7/15.
    let gr1 = GrBuilder::new(s)
        .l("SEX", "M")
        .r("SEX", "F")
        .r("RACE", "Asian")
        .build()
        .unwrap();
    let m1 = query::evaluate(&g, &gr1);
    assert_eq!(m1.supp, 7);
    assert_eq!(m1.edges, 15);
    assert!((m1.supp_rel - 7.0 / 15.0).abs() < 1e-12);

    // GR2: (SEX:M, RACE:Asian) -> (SEX:F, RACE:Asian), supp 0. nhp is
    // defined (β = {RACE}, denominator > 0) and equals 0.
    let gr2 = GrBuilder::new(s)
        .l("SEX", "M")
        .l("RACE", "Asian")
        .r("SEX", "F")
        .r("RACE", "Asian")
        .build()
        .unwrap();
    let m2 = query::evaluate(&g, &gr2);
    assert_eq!(m2.supp, 0);
    assert_eq!(m2.conf, Some(0.0));
}

#[test]
fn query_reproduces_example_2() {
    let g = toy_network();
    let s = g.schema();
    let gr3 = GrBuilder::new(s)
        .l("SEX", "F")
        .l("EDU", "Grad")
        .r("SEX", "M")
        .r("EDU", "Grad")
        .build()
        .unwrap();
    let m3 = query::evaluate(&g, &gr3);
    assert_eq!((m3.supp, m3.supp_lw), (4, 6));
    assert_eq!(m3.conf, Some(4.0 / 6.0));
    assert!(m3.beta_attrs.is_empty(), "same EDU value: β = ∅");
    assert_eq!(m3.nhp, m3.conf, "Remark 1: nhp degenerates to conf");

    let gr4 = GrBuilder::new(s)
        .l("SEX", "F")
        .l("EDU", "Grad")
        .r("SEX", "M")
        .r("EDU", "College")
        .build()
        .unwrap();
    let m4 = query::evaluate(&g, &gr4);
    assert_eq!((m4.supp, m4.supp_lw, m4.heff), (2, 6, 4));
    assert_eq!(m4.nhp, Some(1.0));
    assert!(m4.nhp.unwrap() > m4.conf.unwrap(), "nhp boosts GR4's rank");
}

#[test]
fn trivial_grs_never_reported_under_nhp() {
    let g = toy_network();
    let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.0, 500)).mine();
    for x in &result.top {
        assert!(!x.gr.is_trivial(g.schema()), "{}", x.gr.display(g.schema()));
    }
}

#[test]
fn conf_and_nhp_rankings_differ() {
    let g = toy_network();
    let nhp = GrMiner::new(&g, MinerConfig::nhp(2, 0.5, 5)).mine();
    let conf = GrMiner::new(&g, MinerConfig::conf(2, 0.5, 5)).mine();
    assert!(!nhp.top.is_empty() && !conf.top.is_empty());
    let nhp_keys: Vec<_> = nhp.top.iter().map(|x| x.gr.clone()).collect();
    let conf_keys: Vec<_> = conf.top.iter().map(|x| x.gr.clone()).collect();
    assert_ne!(nhp_keys, conf_keys, "the two metrics must rank differently");
}

#[test]
fn all_alt_metrics_run_on_toy() {
    let g = toy_network();
    for metric in [
        RankMetric::Laplace { k: 2 },
        RankMetric::Gain { theta: 0.2 },
        RankMetric::PiatetskyShapiro,
        RankMetric::Conviction,
        RankMetric::Lift,
    ] {
        let cfg = MinerConfig {
            min_supp: 2,
            min_score: f64::NEG_INFINITY,
            k: 10,
            ..MinerConfig::default().with_metric(metric)
        };
        let result = GrMiner::new(&g, cfg).mine();
        assert!(
            !result.top.is_empty(),
            "metric {metric} produced no results"
        );
        // Scores are finite or +inf (conviction), never NaN.
        for x in &result.top {
            assert!(!x.score.is_nan(), "metric {metric} produced NaN");
        }
    }
}
