//! Mining a DBLP-like co-authorship network (§VI-C): cross-area
//! collaboration patterns that homophily-based rankings miss.
//!
//! Run with: `cargo run --release --example coauthorship [scale]`
//! (default 1.0 = the paper's scale: 28,702 authors / 66,832 edges).

use social_ties::core::query;
use social_ties::datagen::dblp_config_scaled;
use social_ties::{generate, GrBuilder, GrMiner, MinerConfig, RankMetric};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);

    println!("generating DBLP-like co-authorship network at scale {scale}…");
    let graph = generate(&dblp_config_scaled(scale)).expect("generator config is valid");
    let schema = graph.schema();
    println!(
        "{} authors, {} directed co-author edges\n",
        graph.node_count(),
        graph.edge_count()
    );

    // Paper settings for DBLP: minSupp 0.1% (= 67 at full scale),
    // minNhp = minConf = 50%, k = 20.
    let min_supp = (((graph.edge_count() as f64) * 0.001) as u64).max(1);

    let by_nhp = GrMiner::new(&graph, MinerConfig::nhp(min_supp, 0.5, 20)).mine();
    println!("top GRs by nhp (Table IIb, left column):");
    for (i, x) in by_nhp.top.iter().take(8).enumerate() {
        println!(
            "{:>3}. {}  nhp={:.1}%  supp={}  (conf={:.1}%)",
            i + 1,
            x.gr.display(schema),
            x.score * 100.0,
            x.supp,
            x.conf() * 100.0
        );
    }

    let by_conf = GrMiner::new(&graph, MinerConfig::conf(min_supp, 0.5, 20)).mine();
    println!("\ntop GRs by conf (Table IIb, right column):");
    for (i, x) in by_conf.top.iter().take(8).enumerate() {
        println!(
            "{:>3}. {}  conf={:.1}%  supp={}",
            i + 1,
            x.gr.display(schema),
            x.score * 100.0,
            x.supp
        );
    }

    // The D2 story: database researchers who collaborate *often* outside
    // their own area overwhelmingly collaborate with data mining — a
    // pattern with tiny confidence that only nhp surfaces.
    let d2 = GrBuilder::new(schema)
        .l("Area", "DB")
        .w("S", "often")
        .r("Area", "DM")
        .build()
        .unwrap();
    let m = query::evaluate(&graph, &d2);
    println!("\nD2 = {}", d2.display(schema));
    println!("     {}", m.summary());

    // §VII: the lift metric corrects the Poor-productivity population
    // skew that inflates D1-style patterns.
    let cfg = MinerConfig {
        min_supp,
        min_score: f64::NEG_INFINITY,
        k: 5,
        dynamic_topk: false,
        ..MinerConfig::default().with_metric(RankMetric::Lift)
    };
    let by_lift = GrMiner::new(&graph, cfg).mine();
    println!("\ntop GRs by lift (population-skew corrected, §VII):");
    for (i, x) in by_lift.top.iter().enumerate() {
        println!(
            "{:>3}. {}  lift={:.2}  supp={}",
            i + 1,
            x.gr.display(schema),
            x.score,
            x.supp
        );
    }
}
