//! The §VI-B workflow on a Pokec-like friendship/dating network: mine the
//! top-k GRs by nhp, then run the hypothesis cycle of Remark 3 — take a
//! mined GR as a seed, vary it, and re-query the data.
//!
//! Run with: `cargo run --release --example dating_insights [scale]`
//! (default scale 0.1 → 5k users / 60k edges; 1.0 → 50k / 600k).

use social_ties::core::query;
use social_ties::datagen::pokec_config_scaled;
use social_ties::{generate, GrBuilder, GrMiner, MinerConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);

    println!("generating Pokec-like network at scale {scale}…");
    let graph = generate(&pokec_config_scaled(scale)).expect("generator config is valid");
    let schema = graph.schema();
    println!(
        "{} users, {} directed friendship edges\n",
        graph.node_count(),
        graph.edge_count()
    );

    // Paper settings: minSupp 0.1% of |E|, minNhp 50%, k = 300; we print
    // the first 10.
    let min_supp = ((graph.edge_count() as f64) * 0.001) as u64;
    let result = GrMiner::new(&graph, MinerConfig::nhp(min_supp.max(1), 0.5, 300)).mine();
    println!(
        "top GRs by non-homophily preference (of {} mined):",
        result.top.len()
    );
    for (i, x) in result.top.iter().take(10).enumerate() {
        println!(
            "{:>3}. {}  nhp={:.1}%  supp={}  (conf={:.1}%)",
            i + 1,
            x.gr.display(schema),
            x.score * 100.0,
            x.supp,
            x.conf() * 100.0
        );
    }
    println!("\nminer: {}\n", result.stats);

    // --- Hypothesis cycle (Remark 3) -----------------------------------
    // Seed: who do people looking for sexual partners connect to?
    println!("hypothesis cycle around P5, as in §VI-B:");
    let base = GrBuilder::new(schema)
        .l("Looking", "SexualPartner")
        .r("Gender", "F")
        .build()
        .unwrap();
    println!(
        "  {:55} {}",
        base.display(schema),
        query::evaluate(&graph, &base).summary()
    );

    // Variation 1: split by the seeker's gender.
    for (src, dst) in [("M", "F"), ("F", "M")] {
        let gr = GrBuilder::new(schema)
            .l("Gender", src)
            .l("Looking", "SexualPartner")
            .r("Gender", dst)
            .build()
            .unwrap();
        println!(
            "  {:55} {}",
            gr.display(schema),
            query::evaluate(&graph, &gr).summary()
        );
    }

    // Variation 2: the P207 age preference and its gender flip.
    println!("\nhypothesis cycle around P207:");
    for src in ["M", "F"] {
        let gr = GrBuilder::new(schema)
            .l("Gender", src)
            .l("Age", "25-34")
            .r("Age", "18-24")
            .build()
            .unwrap();
        println!(
            "  {:55} {}",
            gr.display(schema),
            query::evaluate(&graph, &gr).summary()
        );
    }
    println!(
        "\n(nhp conditions on partners outside one's own 25-34 bracket, so it\n\
         reads: among cross-age-bracket ties, how often is 18-24 the choice.)"
    );
}
