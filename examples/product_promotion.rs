//! Example 3 of the paper: a financial institution leveraging social
//! influence to promote products.
//!
//! The homophily play — "promote Stocks to friends of lawyers who bought
//! Stocks" — fails when those friends already own Stocks. The
//! beyond-homophily play finds the *secondary bond*: among friends of
//! stock-owning lawyers who do **not** buy Stocks, many buy Bonds, so
//! `(JOB:Lawyer, PRODUCT:Stocks) -> (PRODUCT:Bonds)` has a high nhp and
//! implies a high adoption rate for a Bonds campaign.
//!
//! Run with: `cargo run --release --example product_promotion`

use social_ties::core::query;
use social_ties::datagen::{EdgeAttrSpec, GeneratorConfig, NodeAttrSpec, PlantedRule};
use social_ties::{generate, GrBuilder, GrMiner, MinerConfig};

fn config() -> GeneratorConfig {
    GeneratorConfig {
        nodes: 20_000,
        edges: 150_000,
        node_attrs: vec![
            NodeAttrSpec::named(
                "JOB",
                true, // professionals befriend professionals
                vec![
                    "Lawyer".into(),
                    "Engineer".into(),
                    "Teacher".into(),
                    "Sales".into(),
                ],
                vec![0.12, 0.28, 0.25, 0.35],
            ),
            NodeAttrSpec::named(
                "PRODUCT",
                true, // product adoption is strongly homophilous
                vec![
                    "Stocks".into(),
                    "Bonds".into(),
                    "Savings".into(),
                    "None".into(),
                ],
                vec![0.18, 0.12, 0.30, 0.40],
            )
            .with_homophily_weight(1.5),
        ],
        edge_attrs: vec![EdgeAttrSpec::named(
            "TIE",
            vec!["friend".into(), "colleague".into()],
            vec![0.7, 0.3],
        )],
        rules: vec![
            // The planted secondary bond of Example 3: stock-owning
            // lawyers' ties, when not with fellow stock owners, lean
            // toward bond owners.
            PlantedRule::new(
                "example3",
                vec![("JOB".into(), 1), ("PRODUCT".into(), 1)],
                "PRODUCT",
                2,
                0.35,
            ),
        ],
        correlations: vec![],
        homophily_prob: 0.65,
        undirected: false,
        seed: 3,
    }
}

fn main() {
    let graph = generate(&config()).expect("valid config");
    let schema = graph.schema();
    println!(
        "customer network: {} customers, {} social ties\n",
        graph.node_count(),
        graph.edge_count()
    );

    // The obvious homophily strategy and its beyond-homophily rival.
    let stocks_to_stocks = GrBuilder::new(schema)
        .l("JOB", "Lawyer")
        .l("PRODUCT", "Stocks")
        .r("PRODUCT", "Stocks")
        .build()
        .unwrap();
    let stocks_to_bonds = GrBuilder::new(schema)
        .l("JOB", "Lawyer")
        .l("PRODUCT", "Stocks")
        .r("PRODUCT", "Bonds")
        .build()
        .unwrap();

    let m_same = query::evaluate(&graph, &stocks_to_stocks);
    let m_bond = query::evaluate(&graph, &stocks_to_bonds);
    println!(
        "homophily strategy      {}",
        stocks_to_stocks.display(schema)
    );
    println!("                        {}", m_same.summary());
    println!(
        "beyond-homophily play   {}",
        stocks_to_bonds.display(schema)
    );
    println!("                        {}", m_bond.summary());
    println!(
        "\n=> among friends who do NOT hold Stocks already, {:.0}% hold Bonds:\n\
         promote Bonds, not more Stocks.\n",
        m_bond.nhp.unwrap_or(0.0) * 100.0
    );

    // A full mine surfaces the same insight without prior hypotheses.
    let min_supp = (graph.edge_count() / 1000) as u64;
    let result = GrMiner::new(&graph, MinerConfig::nhp(min_supp.max(1), 0.4, 15)).mine();
    println!("top GRs by nhp (minSupp {min_supp}, minNhp 40%):");
    print!("{}", result.report(schema));
}
