//! Quickstart: build a tiny attributed dating network, mine the top-k
//! group relationships beyond homophily, and inspect one of them.
//!
//! Run with: `cargo run --release --example quickstart`

use social_ties::core::query;
use social_ties::{toy_network, GrBuilder, GrMiner, MinerConfig};

fn main() {
    // The Fig. 1 toy dating network: 14 people with SEX / RACE / EDU
    // attributes (RACE and EDU homophilous), 15 dating edges.
    let graph = toy_network();
    let schema = graph.schema();
    println!(
        "network: {} nodes, {} edges, {} node attrs, {} edge attrs\n",
        graph.node_count(),
        graph.edge_count(),
        schema.node_attr_count(),
        schema.edge_attr_count()
    );

    // Mine the top-5 GRs by non-homophily preference:
    // minSupp = 2 edges, minNhp = 50%.
    let result = GrMiner::new(&graph, MinerConfig::nhp(2, 0.5, 5)).mine();
    println!("top-5 GRs by non-homophily preference:");
    print!("{}", result.report(schema));
    println!("\nminer stats: {}\n", result.stats);

    // Compare with the classic support/confidence ranking: trivial
    // homophily restatements are allowed to show up there.
    let by_conf = GrMiner::new(&graph, MinerConfig::conf(2, 0.5, 5)).mine();
    println!("top-5 GRs by plain confidence:");
    print!("{}", by_conf.report(schema));

    // Ad-hoc hypothesis: the paper's GR4. Confidence says 33%; once the
    // homophily effect (Grad-Grad dating) is excluded, the preference for
    // College partners is 100%.
    let gr4 = GrBuilder::new(schema)
        .l("SEX", "F")
        .l("EDU", "Grad")
        .r("SEX", "M")
        .r("EDU", "College")
        .build()
        .expect("valid names");
    let m = query::evaluate(&graph, &gr4);
    println!("\nGR4 = {}", gr4.display(schema));
    println!("     {}", m.summary());
}
