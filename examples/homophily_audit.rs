//! Audit a network before mining: which attributes are actually
//! homophilous?
//!
//! The mining problem of the paper takes per-attribute homophily flags as
//! input (§III-B) and points to Traud–Mucha–Porter for measuring them.
//! This example measures per-attribute assortativity on the Pokec-like
//! network and compares against the flags the dataset was configured with,
//! then mines with the *suggested* flags to show the pipeline end to end.
//!
//! Run with: `cargo run --release --example homophily_audit [scale]`

use social_ties::datagen::pokec_config_scaled;
use social_ties::graph::stats;
use social_ties::{generate, GrMiner, MinerConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);

    let graph = generate(&pokec_config_scaled(scale)).expect("valid config");
    println!("{}", stats::audit_report(&graph));

    let suggested = stats::suggest_homophily_attrs(&graph, 0.1);
    let names: Vec<&str> = suggested
        .iter()
        .map(|&a| graph.schema().node_attr(a).name())
        .collect();
    println!("suggested homophily attributes (assortativity > 0.1): {names:?}");
    println!("schema flags                                        : [\"Age\", \"Region\", \"Education\", \"Looking\"]");
    println!(
        "\nNote the gap: the schema declares Age/Education/Looking homophilous\n\
         from domain knowledge (as the paper does for dating networks), while\n\
         global assortativity is diluted by the dominant Region mixing. The\n\
         flags are a modeling *input* — they decide which same-value RHS\n\
         patterns count as trivial and enter β — not a measured property,\n\
         which is exactly why §III-B takes them as given.\n"
    );

    // Mine with the paper's settings; the audit told us which trivial
    // patterns the nhp metric will be discounting.
    let min_supp = ((graph.edge_count() / 250) as u64).max(1);
    let result = GrMiner::new(&graph, MinerConfig::nhp(min_supp, 0.5, 10)).mine();
    println!("top-10 beyond-homophily GRs (minSupp {min_supp}):");
    print!("{}", result.report(graph.schema()));
}
