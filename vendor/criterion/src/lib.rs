//! Offline, API-compatible subset of `criterion`.
//!
//! Implements the surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, `criterion_group!`/`criterion_main!` — with a
//! plain wall-clock sampler: each benchmark runs `sample_size` timed
//! iterations (after one warm-up) and reports min/mean/max to stdout.
//! Passing `--test` (as `cargo bench -- --test`, mirroring real
//! criterion's smoke mode) runs every benchmark exactly once regardless
//! of sample size. Statistical analysis, HTML reports and regression
//! baselines of the real crate are out of scope.

use std::time::{Duration, Instant};

/// Opaque value barrier (stable-Rust best effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_text(self) -> String {
        self
    }
}

/// Throughput annotation (recorded, reported as elements/sec).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters: usize,
}

impl Bencher {
    /// Time `f`, `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up.
        black_box(f());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let mut line = format!(
        "{name:<40} time: [{:>10.3?} {:>10.3?} {:>10.3?}]",
        min, mean, max
    );
    if let Some(Throughput::Elements(n)) = throughput {
        let per_sec = n as f64 / mean.as_secs_f64();
        line.push_str(&format!("  thrpt: {per_sec:>12.0} elem/s"));
    }
    println!("{line}");
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep the offline harness cheap; raise per-group via
        // `sample_size` or globally via CRITERION_SAMPLE_SIZE. `--test`
        // (forwarded by `cargo bench -- --test`) overrides everything
        // with a single-iteration smoke run.
        let sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size,
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    fn iters(&self, sample_size: usize) -> usize {
        if self.test_mode {
            1
        } else {
            sample_size
        }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_text(), self.iters(self.sample_size), None, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    iters: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters,
    };
    f(&mut b);
    report(name, &b.samples, throughput);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl<'c> BenchmarkGroup<'c> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn iters(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.sample_size
        }
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_text());
        run_one(&name, self.iters(), self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.text);
        run_one(&name, self.iters(), self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn test_mode_runs_each_benchmark_once() {
        let mut c = Criterion {
            sample_size: 5,
            test_mode: true,
        };
        let mut runs = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warm-up + 1 sample, regardless of sample_size.
        assert_eq!(runs, 2);
        let mut group = c.benchmark_group("g");
        let mut grouped = 0usize;
        group.sample_size(7).bench_function("noop", |b| {
            b.iter(|| {
                grouped += 1;
            })
        });
        group.finish();
        assert_eq!(grouped, 2, "--test overrides group sample_size");
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
