//! Offline subset of `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! for the value-tree `serde` stub, with `#[serde(default)]` and
//! `#[serde(with = "module")]` field attributes.
//!
//! Implemented with hand-rolled token parsing (no `syn`/`quote`, which are
//! unavailable offline). Supports non-generic named/tuple/unit structs and
//! enums with unit, named-field, and tuple variants — the full shape set
//! used by this workspace.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
    with: Option<String>,
    is_option: bool,
}

enum VariantFields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skip attributes (`# [...]`) starting at `i`; parse serde field attrs
/// into `default` / `with` when requested.
fn skip_attrs(
    toks: &[TokenTree],
    mut i: usize,
    mut serde_sink: Option<(&mut bool, &mut Option<String>)>,
) -> usize {
    while i < toks.len() && is_punct(&toks[i], '#') {
        if let Some(TokenTree::Group(attr)) = toks.get(i + 1) {
            if let Some((default, with)) = serde_sink.as_mut() {
                parse_serde_attr(attr, default, with);
            }
        }
        i += 2;
    }
    i
}

fn parse_serde_attr(attr: &Group, default: &mut bool, with: &mut Option<String>) {
    let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
    let Some(first) = inner.first() else { return };
    if ident_of(first).as_deref() != Some("serde") {
        return;
    }
    let Some(TokenTree::Group(args)) = inner.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        match ident_of(&args[j]).as_deref() {
            Some("default") => {
                *default = true;
                j += 1;
            }
            Some("with") => {
                // with = "path"
                if let Some(TokenTree::Literal(lit)) = args.get(j + 2) {
                    *with = Some(lit.to_string().trim_matches('"').to_string());
                }
                j += 3;
            }
            _ => j += 1,
        }
        if j < args.len() && is_punct(&args[j], ',') {
            j += 1;
        }
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …) at `i`.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if i < toks.len() && ident_of(&toks[i]).as_deref() == Some("pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    i
}

/// Advance past one type, tracking `<…>` nesting; returns (next index,
/// first path ident of the type).
fn skip_type(toks: &[TokenTree], mut i: usize) -> (usize, Option<String>) {
    let mut depth = 0i32;
    let mut first_ident = None;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Ident(id) if first_ident.is_none() => {
                first_ident = Some(id.to_string());
            }
            _ => {}
        }
        i += 1;
    }
    (i, first_ident)
}

fn parse_named_fields(g: &Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        let mut default = false;
        let mut with = None;
        i = skip_attrs(&toks, i, Some((&mut default, &mut with)));
        i = skip_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("field name");
        i += 1; // name
        i += 1; // ':'
        let (next, first_ident) = skip_type(&toks, i);
        i = next + 1; // past comma (or end)
        out.push(Field {
            name,
            default,
            with,
            is_option: first_ident.as_deref() == Some("Option"),
        });
    }
    out
}

fn count_tuple_fields(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i, None);
        i = skip_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let (next, _) = skip_type(&toks, i);
        i = next + 1;
        n += 1;
    }
    n
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        i = skip_attrs(&toks, i, None);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("variant name");
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g))
            }
            _ => VariantFields::Unit,
        };
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        out.push(Variant { name, fields });
    }
    out
}

fn parse_input(input: TokenStream) -> (String, Body) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&toks, 0, None);
    i = skip_vis(&toks, i);
    let kind = ident_of(&toks[i]).expect("struct or enum");
    i += 1;
    let name = ident_of(&toks[i]).expect("type name");
    i += 1;
    assert!(
        !matches!(&toks.get(i), Some(t) if is_punct(t, '<')),
        "serde_derive stub: generic types are not supported (type {name})"
    );
    let body = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g))
            }
            _ => Body::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g))
            }
            other => panic!("serde_derive stub: malformed enum {name}: {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}`"),
    };
    (name, body)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn named_push(field: &Field, access: &str) -> String {
    match &field.with {
        Some(path) => format!(
            "__m.push((::std::string::String::from(\"{n}\"), \
             ::serde::with_to_content(|__cs| {path}::serialize(&{access}, __cs))));",
            n = field.name,
        ),
        None => format!(
            "__m.push((::std::string::String::from(\"{n}\"), ::serde::to_content(&{access})));",
            n = field.name,
        ),
    }
}

fn named_take(field: &Field, ty_name: &str) -> String {
    let missing = if field.default || field.is_option {
        "::core::default::Default::default()".to_string()
    } else {
        format!(
            "return ::core::result::Result::Err(::serde::missing_field::<__D::Error>(\
             \"{ty_name}\", \"{n}\"))",
            n = field.name,
        )
    };
    let some = match &field.with {
        Some(path) => format!(
            "{path}::deserialize(::serde::ContentDeserializer::new(__c))\
             .map_err(::serde::lift_err::<__D::Error>)?"
        ),
        None => "::serde::from_content::<_, __D::Error>(__c)?".to_string(),
    };
    format!(
        "{n}: match ::serde::take_field(&mut __m, \"{n}\") {{ \
         ::core::option::Option::Some(__c) => {some}, \
         ::core::option::Option::None => {missing}, }},",
        n = field.name,
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_input(input);
    let body_code = match &body {
        Body::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| named_push(f, &format!("self.{}", f.name)))
                .collect();
            format!(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
                 ::std::vec::Vec::new(); {pushes} \
                 __s.serialize_content(::serde::Content::Map(__m))"
            )
        }
        Body::TupleStruct(1) => "::serde::Serialize::serialize(&self.0, __s)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::to_content(&self.{i})"))
                .collect();
            format!(
                "__s.serialize_content(::serde::Content::Seq(vec![{}]))",
                items.join(", ")
            )
        }
        Body::UnitStruct => "__s.serialize_content(::serde::Content::Null)".to_string(),
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => __s.serialize_content(\
                             ::serde::Content::Str(::std::string::String::from(\"{vn}\"))),"
                        ),
                        VariantFields::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let pushes: String = fields
                                .iter()
                                .map(|f| named_push(f, f.name.as_str()))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{ \
                                 let mut __m: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::Content)> = ::std::vec::Vec::new(); {pushes} \
                                 __s.serialize_content(::serde::Content::Map(vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Content::Map(__m))])) }},",
                                binds = binds.join(", "),
                            )
                        }
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::to_content(__f0)".to_string()
                            } else {
                                format!(
                                    "::serde::Content::Seq(vec![{}])",
                                    binds
                                        .iter()
                                        .map(|b| format!("::serde::to_content({b})"))
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                )
                            };
                            format!(
                                "{name}::{vn}({binds}) => __s.serialize_content(\
                                 ::serde::Content::Map(vec![(\
                                 ::std::string::String::from(\"{vn}\"), {inner})])),",
                                binds = binds.join(", "),
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
         fn serialize<__S: ::serde::Serializer>(&self, __s: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{ {body_code} }} }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_input(input);
    let body_code = match &body {
        Body::NamedStruct(fields) => {
            let takes: String = fields.iter().map(|f| named_take(f, &name)).collect();
            format!(
                "let mut __m = ::serde::expect_map::<__D::Error>(\
                 __d.deserialize_content()?, \"{name}\")?; \
                 let _ = &mut __m; \
                 ::core::result::Result::Ok({name} {{ {takes} }})"
            )
        }
        Body::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(::serde::from_content::<_, __D::Error>(\
             __d.deserialize_content()?)?))"
        ),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::from_content::<_, __D::Error>(__it.next().ok_or_else(|| \
                         ::serde::missing_field::<__D::Error>(\"{name}\", \"{i}\"))?)?"
                    )
                })
                .collect();
            format!(
                "let __seq = ::serde::expect_seq::<__D::Error>(\
                 __d.deserialize_content()?, \"{name}\")?; \
                 let mut __it = __seq.into_iter(); \
                 ::core::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Named(fields) => {
                            let takes: String = fields
                                .iter()
                                .map(|f| named_take(f, &format!("{name}::{vn}")))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ \
                                 let mut __m = ::serde::expect_map::<__D::Error>(\
                                 __v, \"{name}::{vn}\")?; \
                                 let _ = &mut __m; \
                                 ::core::result::Result::Ok({name}::{vn} {{ {takes} }}) }},"
                            ))
                        }
                        VariantFields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                             ::serde::from_content::<_, __D::Error>(__v)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::from_content::<_, __D::Error>(\
                                         __it.next().ok_or_else(|| \
                                         ::serde::missing_field::<__D::Error>(\
                                         \"{name}::{vn}\", \"{i}\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ \
                                 let __seq = ::serde::expect_seq::<__D::Error>(\
                                 __v, \"{name}::{vn}\")?; \
                                 let mut __it = __seq.into_iter(); \
                                 ::core::result::Result::Ok({name}::{vn}({items})) }},",
                                items = items.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __d.deserialize_content()? {{ \
                 ::serde::Content::Str(__s0) => match __s0.as_str() {{ \
                 {unit_arms} \
                 __other => ::core::result::Result::Err(::serde::de::Error::custom(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))), }}, \
                 ::serde::Content::Map(__m0) if __m0.len() == 1 => {{ \
                 let (__k, __v) = __m0.into_iter().next().expect(\"len checked\"); \
                 match __k.as_str() {{ \
                 {data_arms} \
                 __other => ::core::result::Result::Err(::serde::de::Error::custom(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))), }} }}, \
                 __other => ::core::result::Result::Err(::serde::de::Error::custom(\
                 format!(\"expected variant of {name}, got {{__other:?}}\"))), }}"
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{ \
         fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D) \
         -> ::core::result::Result<Self, __D::Error> {{ {body_code} }} }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
