//! Offline, API-compatible subset of `rand` 0.8.
//!
//! Provides the surface this workspace uses: `Rng` (`gen`, `gen_range`,
//! `gen_bool`), `SeedableRng::seed_from_u64`, and `rngs::StdRng`. The
//! generator is xoshiro256** seeded through SplitMix64 — deterministic
//! across platforms and runs, which is what the datagen fixtures need.
//! Streams differ from the real crate's ChaCha-based `StdRng` (the real
//! crate documents its streams as non-portable across versions anyway).

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling conveniences over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`start..end` or `start..=end`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types samplable from the "standard" distribution (subset).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(
                self,
                rng: &mut R,
            ) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(
                self,
                rng: &mut R,
            ) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(
                self,
                rng: &mut R,
            ) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(
                self,
                rng: &mut R,
            ) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next_sm = move || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next_sm(), next_sm(), next_sm(), next_sm()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0u16..=2);
            assert!(w <= 2);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unsized_rng_is_usable() {
        fn sample(rng: &mut (impl Rng + ?Sized)) -> u32 {
            rng.gen_range(0..5u32)
        }
        let mut rng = StdRng::seed_from_u64(9);
        let dynrng: &mut StdRng = &mut rng;
        assert!(sample(dynrng) < 5);
    }
}
