//! Offline, API-compatible subset of `serde_json` over the serde stub's
//! [`Content`] value tree: `to_string`, `to_string_pretty`, `from_str`,
//! `from_slice`, and a re-exported [`Value`] alias.

use serde::{Content, Deserialize, Serialize};

/// JSON values (the serde stub's content tree).
pub type Value = Content;

/// Parse or stringify error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&serde::to_content(value), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&serde::to_content(value), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let content = Parser::new(s).parse_document()?;
    serde::from_content(content)
}

/// Deserialize a `T` from JSON bytes.
pub fn from_slice<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let text = format!("{v}");
        out.push_str(&text);
        // Keep the value a float on re-parse.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no infinities/NaN; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, level: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_content(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Content, Error> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error(format!("trailing characters at offset {}", self.pos)));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|&b| b as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, text: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number characters");
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got {:?} at offset {}",
                        other.map(|&b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got {:?} at offset {}",
                        other.map(|&b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let s: String = from_str("\"a\\nb\"").unwrap();
        assert_eq!(s, "a\nb");
        let f: f64 = from_str("1.5e2").unwrap();
        assert!((f - 150.0).abs() < 1e-12);
        let n: Option<u32> = from_str("null").unwrap();
        assert_eq!(n, None);
    }

    #[test]
    fn pretty_output_reparses() {
        let v = vec![(String::from("k"), 3u64)];
        let text = to_string_pretty(&v).unwrap();
        let back: Vec<(String, u64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_round_trip_is_exact() {
        let x = 0.1f64 + 0.2;
        let text = to_string(&x).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, x);
    }
}
