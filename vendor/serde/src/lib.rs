//! Offline, API-compatible subset of `serde`.
//!
//! The real serde pipes values through a visitor-based data model; this
//! subset routes everything through an owned value tree ([`Content`]),
//! which is all the workspace needs (JSON round-trips of owned structs
//! and enums). The generic trait signatures mirror real serde so code
//! written against it — including `#[serde(with = "module")]` helper
//! modules — compiles unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// The owned value tree every (de)serialization routes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

/// Uninhabited error for infallible serializers.
#[derive(Debug)]
pub enum Never {}

impl std::fmt::Display for Never {
    fn fmt(&self, _: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {}
    }
}

/// Deserialization error carried by [`ContentDeserializer`].
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub mod de {
    /// Mirror of `serde::de::Error`: any deserializer error type can be
    /// built from a message.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    impl Error for super::Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            super::Error(msg.to_string())
        }
    }
}

pub mod ser {
    /// Mirror of `serde::ser::Error`.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// A type that can be serialized through any [`Serializer`].
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink for one [`Content`] tree.
pub trait Serializer: Sized {
    type Ok;
    type Error;
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
}

/// A type that can be deserialized through any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A source of one [`Content`] tree.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// Serializer producing the value tree itself (infallible).
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = Never;
    fn serialize_content(self, content: Content) -> Result<Content, Never> {
        Ok(content)
    }
}

/// Deserializer reading from an owned value tree.
pub struct ContentDeserializer {
    content: Content,
}

impl ContentDeserializer {
    pub fn new(content: Content) -> Self {
        ContentDeserializer { content }
    }
}

impl<'de> Deserializer<'de> for ContentDeserializer {
    type Error = Error;
    fn deserialize_content(self) -> Result<Content, Error> {
        Ok(self.content)
    }
}

/// Serialize a value to its [`Content`] tree.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Content {
    match value.serialize(ContentSerializer) {
        Ok(c) => c,
        Err(never) => match never {},
    }
}

/// Run a `#[serde(with = …)]`-style serialize fn against the content sink.
pub fn with_to_content<F>(f: F) -> Content
where
    F: FnOnce(ContentSerializer) -> Result<Content, Never>,
{
    match f(ContentSerializer) {
        Ok(c) => c,
        Err(never) => match never {},
    }
}

/// Deserialize a value from a [`Content`] tree, lifting the error into any
/// [`de::Error`] type (used by derived impls).
pub fn from_content<T, E>(content: Content) -> Result<T, E>
where
    T: for<'de> Deserialize<'de>,
    E: de::Error,
{
    T::deserialize(ContentDeserializer::new(content)).map_err(E::custom)
}

/// Lift a content-deserializer error into the caller's error type.
pub fn lift_err<E: de::Error>(e: Error) -> E {
    E::custom(e)
}

/// Unwrap a map content or error (derived struct impls).
pub fn expect_map<E: de::Error>(content: Content, what: &str) -> Result<Vec<(String, Content)>, E> {
    match content {
        Content::Map(m) => Ok(m),
        other => Err(E::custom(format!("expected map for {what}, got {other:?}"))),
    }
}

/// Unwrap a sequence content or error (derived tuple impls).
pub fn expect_seq<E: de::Error>(content: Content, what: &str) -> Result<Vec<Content>, E> {
    match content {
        Content::Seq(s) => Ok(s),
        other => Err(E::custom(format!(
            "expected sequence for {what}, got {other:?}"
        ))),
    }
}

/// Remove a field from a decoded map by key.
pub fn take_field(map: &mut Vec<(String, Content)>, key: &str) -> Option<Content> {
    map.iter()
        .position(|(k, _)| k == key)
        .map(|i| map.remove(i).1)
}

/// Error for a missing struct field.
pub fn missing_field<E: de::Error>(ty: &str, field: &str) -> E {
    E::custom(format!("missing field `{field}` of {ty}"))
}

// ---------------------------------------------------------------------------
// Primitive and container impls
// ---------------------------------------------------------------------------

/// `Content` is its own (de)serialization fixpoint, so generic JSON
/// values (`serde_json::Value`) round-trip like any other type.
impl Serialize for Content {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.clone())
    }
}

impl<'de> Deserialize<'de> for Content {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_content()
    }
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_content(Content::U64(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.deserialize_content()? {
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| de::Error::custom(format!("{v} out of range"))),
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| de::Error::custom(format!("{v} out of range"))),
                    other => Err(de::Error::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_content(Content::I64(*self as i64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.deserialize_content()? {
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| de::Error::custom(format!("{v} out of range"))),
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| de::Error::custom(format!("{v} out of range"))),
                    other => Err(de::Error::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::F64(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            other => Err(de::Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::F64(*self as f64))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Bool(v) => Ok(v),
            other => Err(de::Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Str(self.clone()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Str(v) => Ok(v),
            other => Err(de::Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Str(self.to_string()))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Str(self.to_string()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => s.serialize_content(to_content(v)),
            None => s.serialize_content(Content::Null),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Null => Ok(None),
            c => from_content::<T, D::Error>(c).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Seq(self.iter().map(to_content).collect()))
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = expect_seq::<D::Error>(d.deserialize_content()?, "Vec")?;
        items.into_iter().map(from_content::<T, D::Error>).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Seq(self.iter().map(to_content).collect()))
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_content(Content::Seq(vec![$(to_content(&self.$n)),+]))
            }
        }
        impl<'de, $($t: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let seq = expect_seq::<D::Error>(d.deserialize_content()?, "tuple")?;
                let expected = [$($n,)+].len();
                if seq.len() != expected {
                    return Err(de::Error::custom(format!(
                        "expected tuple of {expected}, got {}", seq.len()
                    )));
                }
                let mut it = seq.into_iter();
                Ok(($({
                    let _ = $n;
                    from_content::<$t, D::Error>(it.next().expect("length checked"))?
                },)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (0 T0)
    (0 T0, 1 T1)
    (0 T0, 1 T1, 2 T2)
    (0 T0, 1 T1, 2 T2, 3 T3)
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let entries = self
            .iter()
            .map(|(k, v)| {
                let key = match to_content(k) {
                    Content::Str(text) => text,
                    other => format!("{other:?}"),
                };
                (key, to_content(v))
            })
            .collect();
        s.serialize_content(Content::Map(entries))
    }
}
