//! Offline, API-compatible subset of `proptest`.
//!
//! Supports the surface this workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(…)]`), `Strategy` with
//! `prop_map`, `any::<T>()`, integer-range strategies,
//! `prop::collection::vec`, `prop::sample::select`, tuple strategies, and
//! the `prop_assert*` macros. Cases are generated from a deterministic
//! per-test RNG; there is no shrinking — a failing case panics with the
//! case number, and the seed stream is stable so failures reproduce.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG strategies draw from.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen::<u64>()
    }

    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.inner.gen_range(0..n)
    }
}

/// Drives one property test.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // Stable per-test seed: same stream every run, distinct per test.
        let mut seed = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRunner {
            config,
            rng: TestRng {
                inner: StdRng::seed_from_u64(seed),
            },
        }
    }

    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    pub fn sample<S: Strategy>(&mut self, strategy: &S) -> S::Value {
        strategy.generate(&mut self.rng)
    }
}

/// A generator of random values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// Strategy for any value of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Fixed single value (used for constants in tuples).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive length bounds for collection strategies. `From` impls
    /// exist only for `usize` ranges so size literals infer as `usize`
    /// (mirroring real proptest's `SizeRange`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    /// Strategy for vectors with a random length in a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_inclusive - self.size.min) as u64;
            let n = self.size.min + rng.below(span + 1) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice among a fixed set.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// `prop::sample::select(options)`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assertion macros: panic on failure (no shrinking in this subset).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __cases = __config.cases;
            let mut __runner = $crate::TestRunner::new(__config, stringify!($name));
            let __strategies = ($($strategy,)*);
            for __case in 0..__cases {
                let ($($arg,)*) = __runner.sample(&__strategies);
                let __run = || { $body };
                if let Err(__panic) = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(__run),
                ) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed",
                        __case + 1, __cases, stringify!($name),
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_test_name() {
        let mut a = crate::TestRunner::new(ProptestConfig::default(), "t");
        let mut b = crate::TestRunner::new(ProptestConfig::default(), "t");
        let s = (0u32..100, any::<bool>());
        for _ in 0..20 {
            assert_eq!(a.sample(&s), b.sample(&s));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Macro smoke test: ranges, vec, select, prop_map, tuples.
        #[test]
        fn macro_full_surface(
            x in 1u64..=5,
            v in prop::collection::vec(any::<bool>(), 0..4),
            pick in prop::sample::select(vec![10u32, 20, 30]),
            mapped in (0u16..3).prop_map(|n| n + 100),
        ) {
            prop_assert!((1..=5).contains(&x));
            prop_assert!(v.len() < 4);
            prop_assert!(pick % 10 == 0);
            prop_assert!((100..103).contains(&mapped));
            prop_assert_eq!(mapped, mapped);
            prop_assert_ne!(pick, 0);
        }
    }
}
