//! Offline, API-compatible subset of `parking_lot` backed by `std::sync`.
//! `lock()` returns the guard directly (no poisoning `Result`), matching
//! parking_lot's signature; a poisoned std mutex propagates the inner
//! value, since parking_lot has no poisoning to surface.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` does not return a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose guards do not return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(l.into_inner(), 7);
    }
}
