//! Offline, API-compatible subset of `crossbeam`: `thread::scope` with
//! crossbeam's signature (the closure receives the scope, `spawn` closures
//! receive it again, and the result is a `Result` that is `Err` when a
//! worker panicked), implemented on `std::thread::scope`, plus the
//! `deque` work-stealing types (`Worker`/`Stealer`/`Injector`/`Steal`)
//! implemented on a mutex-guarded `VecDeque` with crossbeam's steal-half
//! batching semantics. The registry crate's deques are lock-free; the
//! stub trades that for simplicity while keeping the call sites drop-in
//! compatible (tasks here are coarse — whole enumeration subtrees — so
//! queue operations are nowhere near the contention point).

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped worker. The closure receives the scope (unused
        /// by most callers, hence the conventional `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope; all spawned workers are joined before this
    /// returns. A panicked worker yields `Err` with the panic payload.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub mod deque {
    //! Work-stealing deques mirroring `crossbeam-deque`.
    //!
    //! A [`Worker`] is the owner's end of one deque (LIFO pop for cache
    //! locality), a [`Stealer`] is a shareable handle that takes from the
    //! opposite end, and an [`Injector`] is a shared FIFO queue for
    //! seeding work. `steal_batch_and_pop` moves *half* of the source
    //! queue into the destination worker and returns one task — the
    //! steal-half policy that keeps thieves from ping-ponging single
    //! tasks.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source queue was empty.
        Empty,
        /// One task was taken.
        Success(T),
        /// The attempt lost a race and may be retried. The mutex-based
        /// stub never produces this, but callers written against the
        /// lock-free registry crate must handle it, so it exists.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the attempt should be retried.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// Whether the source was empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    fn steal_batch_and_pop_from<T>(src: &Mutex<VecDeque<T>>, dest: &Worker<T>) -> Steal<T> {
        // Take the batch under the source lock, release, then refill the
        // destination — the locks are never held together, so a worker
        // stealing from its own victim's victim cannot deadlock.
        let batch: Vec<T> = {
            let mut q = src.lock().expect("deque poisoned");
            if q.is_empty() {
                return Steal::Empty;
            }
            let take = q.len().div_ceil(2);
            q.drain(..take).collect()
        };
        let mut it = batch.into_iter();
        let first = it.next().expect("batch is non-empty");
        let mut q = dest.queue.lock().expect("deque poisoned");
        for t in it {
            q.push_back(t);
        }
        Steal::Success(first)
    }

    /// The owner's end of a work-stealing deque.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// New LIFO deque (the owner pops its most recent push — depth
        /// first — while stealers take the oldest, largest subtrees).
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Push a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("deque poisoned").push_back(task);
        }

        /// Pop from the owner's end (LIFO).
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("deque poisoned").pop_back()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque poisoned").is_empty()
        }

        /// A shareable stealing handle onto this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A shareable handle that steals from the opposite end of a
    /// [`Worker`]'s deque.
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steal a single task from the victim's cold end.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("deque poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steal half of the victim's queue into `dest`, returning one of
        /// the stolen tasks.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            steal_batch_and_pop_from(&self.queue, dest)
        }
    }

    /// A shared FIFO queue for injecting initial tasks into the pool.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Empty queue.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueue a task.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("deque poisoned").push_back(task);
        }

        /// Take a single task (FIFO).
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("deque poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Move half of the queue into `dest`, returning one task.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            // An Injector is not backed by a Worker, so `dest` being one
            // of its own consumers is fine: the same two-phase locking as
            // the stealer applies.
            steal_batch_and_pop_from(&self.queue, dest)
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque poisoned").is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_workers_share_stack_state() {
        let counter = AtomicU32::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn worker_panic_is_an_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    mod deque {
        use crate::deque::{Injector, Steal, Worker};

        #[test]
        fn owner_pops_lifo_stealers_take_fifo() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            for i in 0..4 {
                w.push(i);
            }
            assert_eq!(s.steal().success(), Some(0), "stealer takes the oldest");
            assert_eq!(w.pop(), Some(3), "owner takes the newest");
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), Some(1));
            assert_eq!(w.pop(), None);
            assert!(s.steal().is_empty());
        }

        #[test]
        fn steal_batch_moves_half_and_pops_one() {
            let victim = Worker::new_lifo();
            let thief = Worker::new_lifo();
            for i in 0..8 {
                victim.push(i);
            }
            let got = victim.stealer().steal_batch_and_pop(&thief);
            // Half of 8 = 4 moved from the cold end: 0 returned, 1..=3
            // land in the thief's deque (owner pops newest first).
            assert_eq!(got.success(), Some(0));
            assert_eq!(thief.pop(), Some(3));
            assert_eq!(thief.pop(), Some(2));
            assert_eq!(thief.pop(), Some(1));
            assert_eq!(thief.pop(), None);
            // The victim keeps the hot half.
            assert_eq!(victim.pop(), Some(7));
            assert!(!victim.is_empty());
        }

        #[test]
        fn injector_seeds_workers_fifo() {
            let inj: Injector<u32> = Injector::new();
            assert!(inj.is_empty());
            assert!(inj.steal().is_empty());
            for i in 0..5 {
                inj.push(i);
            }
            let w = Worker::new_lifo();
            assert_eq!(inj.steal_batch_and_pop(&w).success(), Some(0));
            assert_eq!(inj.steal().success(), Some(3), "half moved out");
            assert!(!matches!(inj.steal(), Steal::Retry));
        }

        #[test]
        fn concurrent_stealing_conserves_tasks() {
            use std::sync::atomic::{AtomicU32, Ordering};
            let victim = Worker::new_lifo();
            for i in 0..1000u32 {
                victim.push(i);
            }
            let stealer = victim.stealer();
            let taken = AtomicU32::new(0);
            crate::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|_| {
                        let local = Worker::new_lifo();
                        loop {
                            match stealer.steal_batch_and_pop(&local) {
                                Steal::Success(_) => {
                                    taken.fetch_add(1, Ordering::Relaxed);
                                    while local.pop().is_some() {
                                        taken.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Steal::Empty => break,
                                Steal::Retry => {}
                            }
                        }
                    });
                }
            })
            .unwrap();
            assert_eq!(taken.load(Ordering::Relaxed), 1000);
        }
    }
}
