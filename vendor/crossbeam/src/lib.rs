//! Offline, API-compatible subset of `crossbeam`: `thread::scope` with
//! crossbeam's signature (the closure receives the scope, `spawn` closures
//! receive it again, and the result is a `Result` that is `Err` when a
//! worker panicked), implemented on `std::thread::scope`.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped worker. The closure receives the scope (unused
        /// by most callers, hence the conventional `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope; all spawned workers are joined before this
    /// returns. A panicked worker yields `Err` with the panic payload.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_workers_share_stack_state() {
        let counter = AtomicU32::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn worker_panic_is_an_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
