//! Probe the toolchain channel for the `simd` feature: `std::simd`
//! (`portable_simd`) is nightly-only, so on stable/beta the feature
//! deliberately no-ops to the SWAR kernels (`grm_graph::kernel` module
//! docs) instead of failing the build. `--features simd` is therefore
//! always safe to pass — CI exercises it on stable.

use std::process::Command;

fn main() {
    println!("cargo::rustc-check-cfg=cfg(grm_nightly_simd)");
    println!("cargo::rerun-if-changed=build.rs");
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let nightly = Command::new(rustc)
        .arg("--version")
        .output()
        .map(|out| String::from_utf8_lossy(&out.stdout).contains("nightly"))
        .unwrap_or(false);
    if nightly {
        println!("cargo::rustc-cfg=grm_nightly_simd");
    }
}
