//! The single-table (joined) representation used by baseline **BL1**.
//!
//! §IV of the paper describes the straw-man layout that frequent-set miners
//! need: "collecting all information in one table. For graph data, this
//! means replicating the node information for every edge adjacent to the
//! node, and the size of this table is `|E| × (2×#AttrV + #AttrE)`". We
//! materialize it faithfully so BL1 pays the replication cost the paper
//! charges it with, and so tests can assert the §IV-A size comparison.

use crate::graph::SocialGraph;
use crate::value::{AttrValue, EdgeAttrId, NodeAttrId};

/// One row per edge: `[src node attrs | edge attrs | dst node attrs]`.
#[derive(Debug, Clone)]
pub struct SingleTable {
    rows: usize,
    node_attr_count: usize,
    edge_attr_count: usize,
    data: Vec<AttrValue>,
}

impl SingleTable {
    /// Materialize the join. O(|E| · (2·#AttrV + #AttrE)) time and space —
    /// deliberately the expensive representation.
    pub fn build(graph: &SocialGraph) -> Self {
        let na = graph.schema().node_attr_count();
        let ea = graph.schema().edge_attr_count();
        let width = 2 * na + ea;
        let rows = graph.edge_count();
        let mut data = Vec::with_capacity(rows * width);
        for e in graph.edge_ids() {
            data.extend_from_slice(graph.node_row(graph.src(e)));
            data.extend_from_slice(graph.edge_row(e));
            data.extend_from_slice(graph.node_row(graph.dst(e)));
        }
        SingleTable {
            rows,
            node_attr_count: na,
            edge_attr_count: ea,
            data,
        }
    }

    /// Number of rows (= `|E|`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width `2·#AttrV + #AttrE`.
    pub fn width(&self) -> usize {
        2 * self.node_attr_count + self.edge_attr_count
    }

    /// Total cell count `|E| × (2·#AttrV + #AttrE)` (§IV).
    pub fn cells(&self) -> usize {
        self.rows * self.width()
    }

    /// LHS (source) node attribute `a` of row `r`.
    #[inline]
    pub fn l_attr(&self, r: u32, a: NodeAttrId) -> AttrValue {
        self.data[r as usize * self.width() + a.index()]
    }

    /// Edge attribute `a` of row `r`.
    #[inline]
    pub fn w_attr(&self, r: u32, a: EdgeAttrId) -> AttrValue {
        self.data[r as usize * self.width() + self.node_attr_count + a.index()]
    }

    /// RHS (destination) node attribute `a` of row `r`.
    #[inline]
    pub fn r_attr(&self, r: u32, a: NodeAttrId) -> AttrValue {
        self.data
            [r as usize * self.width() + self.node_attr_count + self.edge_attr_count + a.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, SchemaBuilder};

    #[test]
    fn join_replicates_node_rows() {
        let schema = SchemaBuilder::new()
            .node_attr("A", 3, true)
            .node_attr("B", 2, false)
            .edge_attr("W", 2)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let x = b.add_node(&[1, 2]).unwrap();
        let y = b.add_node(&[3, 1]).unwrap();
        b.add_edge(x, y, &[2]).unwrap();
        b.add_edge(y, x, &[1]).unwrap();
        let g = b.build().unwrap();

        let t = SingleTable::build(&g);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.width(), 5);
        assert_eq!(t.cells(), 10);

        assert_eq!(t.l_attr(0, NodeAttrId(0)), 1);
        assert_eq!(t.l_attr(0, NodeAttrId(1)), 2);
        assert_eq!(t.w_attr(0, EdgeAttrId(0)), 2);
        assert_eq!(t.r_attr(0, NodeAttrId(0)), 3);
        assert_eq!(t.r_attr(0, NodeAttrId(1)), 1);

        assert_eq!(t.l_attr(1, NodeAttrId(0)), 3);
        assert_eq!(t.r_attr(1, NodeAttrId(1)), 2);
    }

    #[test]
    fn matches_graph_key_functions() {
        let schema = SchemaBuilder::new()
            .node_attr("A", 4, true)
            .edge_attr("W", 3)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        for v in 1..=4u16 {
            b.add_node(&[v]).unwrap();
        }
        b.add_edge(0, 1, &[1]).unwrap();
        b.add_edge(2, 3, &[3]).unwrap();
        b.add_edge(3, 0, &[2]).unwrap();
        let g = b.build().unwrap();
        let t = SingleTable::build(&g);
        for e in g.edge_ids() {
            assert_eq!(t.l_attr(e, NodeAttrId(0)), g.src_attr(e, NodeAttrId(0)));
            assert_eq!(t.r_attr(e, NodeAttrId(0)), g.dst_attr(e, NodeAttrId(0)));
            assert_eq!(t.w_attr(e, EdgeAttrId(0)), g.edge_attr(e, EdgeAttrId(0)));
        }
    }
}
