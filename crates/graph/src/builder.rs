//! Incremental construction of [`SocialGraph`]s with validation.

use crate::error::{GraphError, Result};
use crate::graph::SocialGraph;
use crate::schema::Schema;
use crate::value::{AttrValue, EdgeId, NodeId};
use std::sync::Arc;

/// Validating builder for [`SocialGraph`].
///
/// Every node and edge row is checked against the schema as it is added, so
/// a successfully built graph never contains out-of-domain values or
/// dangling endpoints.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    schema: Arc<Schema>,
    node_values: Vec<AttrValue>,
    srcs: Vec<NodeId>,
    dsts: Vec<NodeId>,
    edge_values: Vec<AttrValue>,
    allow_self_loops: bool,
}

impl GraphBuilder {
    /// Start building a graph over `schema`. Self-loops are rejected by
    /// default (a dyadic social tie relates two distinct actors); enable
    /// them with [`GraphBuilder::allow_self_loops`].
    pub fn new(schema: Schema) -> Self {
        GraphBuilder {
            schema: Arc::new(schema),
            node_values: Vec::new(),
            srcs: Vec::new(),
            dsts: Vec::new(),
            edge_values: Vec::new(),
            allow_self_loops: false,
        }
    }

    /// Pre-size internal buffers for `nodes` nodes and `edges` edges.
    pub fn with_capacity(schema: Schema, nodes: usize, edges: usize) -> Self {
        let na = schema.node_attr_count();
        let ea = schema.edge_attr_count();
        let mut b = GraphBuilder::new(schema);
        b.node_values.reserve(nodes * na);
        b.srcs.reserve(edges);
        b.dsts.reserve(edges);
        b.edge_values.reserve(edges * ea);
        b
    }

    /// Permit self-loop edges.
    pub fn allow_self_loops(mut self) -> Self {
        self.allow_self_loops = true;
        self
    }

    /// The schema being built against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        if self.schema.node_attr_count() == 0 {
            0
        } else {
            self.node_values.len() / self.schema.node_attr_count()
        }
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.srcs.len()
    }

    /// Add a node with the given attribute row; returns its id.
    pub fn add_node(&mut self, values: &[AttrValue]) -> Result<NodeId> {
        self.schema.check_node_values(values)?;
        let id = crate::value::next_node_id(self.node_count())?;
        self.node_values.extend_from_slice(values);
        Ok(id)
    }

    /// Add a directed edge `src -> dst` with the given edge-attribute row;
    /// returns its id.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, values: &[AttrValue]) -> Result<EdgeId> {
        // Compare in usize: narrowing the count instead would wrap to 0
        // once the graph reaches 2^32 nodes and reject every edge.
        let n = self.node_count();
        for end in [src, dst] {
            if end as usize >= n {
                return Err(GraphError::DanglingEndpoint {
                    node: end,
                    nodes: n,
                });
            }
        }
        if src == dst && !self.allow_self_loops {
            return Err(GraphError::SelfLoop { node: src });
        }
        self.schema.check_edge_values(values)?;
        let id = crate::value::next_edge_id(self.edge_count())?;
        self.srcs.push(src);
        self.dsts.push(dst);
        self.edge_values.extend_from_slice(values);
        Ok(id)
    }

    /// Add an undirected tie as two directed edges in opposite directions
    /// sharing the same edge-attribute row (§III). Returns both edge ids.
    pub fn add_undirected(
        &mut self,
        a: NodeId,
        b: NodeId,
        values: &[AttrValue],
    ) -> Result<(EdgeId, EdgeId)> {
        let e1 = self.add_edge(a, b, values)?;
        let e2 = self.add_edge(b, a, values)?;
        Ok((e1, e2))
    }

    /// Finish building.
    pub fn build(self) -> Result<SocialGraph> {
        Ok(SocialGraph::from_parts(
            self.schema,
            self.node_values,
            self.srcs,
            self.dsts,
            self.edge_values,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchemaBuilder;

    fn schema() -> Schema {
        SchemaBuilder::new()
            .node_attr("A", 3, true)
            .edge_attr("W", 2)
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_bad_node_row() {
        let mut b = GraphBuilder::new(schema());
        assert!(b.add_node(&[4]).is_err(), "out of domain");
        assert!(b.add_node(&[1, 2]).is_err(), "wrong arity");
        assert!(b.add_node(&[3]).is_ok());
    }

    #[test]
    fn rejects_dangling_edge() {
        let mut b = GraphBuilder::new(schema());
        let n = b.add_node(&[1]).unwrap();
        assert!(matches!(
            b.add_edge(n, 5, &[1]),
            Err(GraphError::DanglingEndpoint { node: 5, .. })
        ));
    }

    #[test]
    fn self_loop_policy() {
        let mut b = GraphBuilder::new(schema());
        let n = b.add_node(&[1]).unwrap();
        assert!(matches!(
            b.add_edge(n, n, &[1]),
            Err(GraphError::SelfLoop { .. })
        ));

        let mut b = GraphBuilder::new(schema()).allow_self_loops();
        let n = b.add_node(&[1]).unwrap();
        assert!(b.add_edge(n, n, &[1]).is_ok());
    }

    #[test]
    fn undirected_adds_two_edges() {
        let mut b = GraphBuilder::new(schema());
        let x = b.add_node(&[1]).unwrap();
        let y = b.add_node(&[2]).unwrap();
        let (e1, e2) = b.add_undirected(x, y, &[2]).unwrap();
        let g = b.build().unwrap();
        assert_eq!((g.src(e1), g.dst(e1)), (x, y));
        assert_eq!((g.src(e2), g.dst(e2)), (y, x));
        assert_eq!(g.edge_attr(e1, crate::EdgeAttrId(0)), 2);
        assert_eq!(g.edge_attr(e2, crate::EdgeAttrId(0)), 2);
    }

    #[test]
    fn with_capacity_matches_plain() {
        let mut b = GraphBuilder::with_capacity(schema(), 10, 10);
        let x = b.add_node(&[1]).unwrap();
        let y = b.add_node(&[2]).unwrap();
        b.add_edge(x, y, &[1]).unwrap();
        assert_eq!(b.node_count(), 2);
        assert_eq!(b.edge_count(), 1);
        assert!(b.build().is_ok());
    }
}
