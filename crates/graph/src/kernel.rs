//! Vectorized counting primitives — the batch layer under the
//! counting-sort partitioner.
//!
//! GRMiner's inner loops are histogram counting, key gathers and stable
//! scatters over `u32` position slices and `u16` key columns (§V of the
//! paper). This module provides those three primitives as explicit
//! batch kernels:
//!
//! * [`gather_keys`] — `keys[i] = col[data[i]]` plus the running key
//!   maximum (the range check hoisted out of the counting loop);
//! * [`histogram_u32`] — positional key counting through four
//!   independent per-lane `u32` histograms, merged at the end;
//! * [`scatter_with_count`] — the fused-pass scatter: stable scatter by
//!   cached keys while gathering, clamp-checking, counting and caching
//!   each item's *next*-dimension key in scattered order.
//!
//! ### The SWAR backend (default, stable Rust)
//!
//! Each kernel processes [`LANES`] keys per iteration in SWAR style:
//! the batch is loaded up front so the (independent) gather loads issue
//! together, and the serially-dependent parts — histogram increments,
//! running maxima — are spread over multiple independent accumulators
//! so a run of equal keys does not chain store-to-load stalls through
//! one counter. Per-lane partial results (four `u32` histograms, eight
//! `u16` maxima) are merged after the loop; the merge is
//! order-independent, so outputs are **bit-identical** to the scalar
//! loops they replace.
//!
//! ### The `simd` backend (feature-gated)
//!
//! With the `simd` cargo feature **on a nightly toolchain**, the lane
//! arithmetic (key maxima, clamps, range flags) runs through
//! `std::simd` vectors behind the same function signatures. On stable
//! toolchains the feature deliberately no-ops to the SWAR backend —
//! `build.rs` probes the toolchain channel — so `--features simd` is
//! always safe to pass. Histogram increments and stable scatters are
//! inherently serial per bucket and stay scalar in both backends; the
//! win there is the batched gather front-end.
//!
//! ### Batches
//!
//! Every kernel reports how many full [`LANES`]-wide batches it
//! processed; [`crate::sort::PartitionArena`] accumulates the count and
//! the miner surfaces it as `MinerStats::kernel_batches` — a *work*
//! counter (it varies with task splitting, never with semantics).

use crate::value::AttrValue;

/// Keys processed per kernel batch (the SWAR unroll width and the
/// `std::simd` vector width of the gated backend).
pub const LANES: usize = 8;

/// Number of independent histogram accumulators [`histogram_u32`]
/// spreads its increments over; its `stripes` scratch must hold
/// `STRIPES × counts.len()` zeroed counters.
pub const STRIPES: usize = 4;

/// Below this many keys per bucket the striped histogram falls back to
/// the plain loop: merging the stripes costs `O(STRIPES × buckets)`,
/// which only pays off once the counting loop dominates it.
const STRIPE_MIN_KEYS_PER_BUCKET: usize = STRIPES;

/// Whether the two-pass strategy — [`gather_keys`] then
/// [`histogram_u32`] through the stripes — beats a single fused
/// gather-and-count pass for `n` keys over `buckets` buckets. The
/// stripes pay a second read of the key cache plus an
/// `O(STRIPES × buckets)` merge, which only amortizes on genuinely
/// large slices; the mining recursion's passes are overwhelmingly tiny
/// (tens of items), and those stay on the one-pass loop. The absolute
/// floor was measured on the Pokec-shaped workloads: below ~512 items
/// the second sweep over the key cache costs more than the dependency
/// breaking wins.
#[inline]
pub fn stripes_pay_off(n: usize, buckets: usize) -> bool {
    n >= STRIPE_MIN_KEYS_PER_BUCKET * buckets && n >= 512
}

/// Whether a batched (gather-up-front) loop beats the plain interleaved
/// loop for `n` items at all: below a few batches the per-batch lane
/// staging is pure overhead. Applied by the arena to the fused-scatter
/// and mask kernels, whose tiny instances dominate a heavily-pruned
/// mining recursion.
#[inline]
pub fn batching_pays_off(n: usize) -> bool {
    n >= 8 * LANES
}

/// Gather `col[id]` for every id of `data` into `keys` (same length,
/// overwritten) and return `(max_key, batches)` — the maximum gathered
/// key (`0` for empty input) and the number of full [`LANES`]-wide
/// batches processed.
///
/// The caller compares `max_key` against its bucket count *once*
/// instead of range-checking inside the counting loop; on violation the
/// first offending key in scan order is still observable in `keys`.
///
/// # Panics
/// Panics (slice bounds) if some `data[i] as usize >= col.len()` —
/// columns must cover every position, as everywhere in the partition
/// layer.
#[inline]
pub fn gather_keys(data: &[u32], col: &[AttrValue], keys: &mut [AttrValue]) -> (AttrValue, u64) {
    debug_assert_eq!(data.len(), keys.len());
    let mut chunks = data.chunks_exact(LANES);
    let mut out = keys.chunks_exact_mut(LANES);
    let mut maxes = [0 as AttrValue; LANES];
    let mut batches = 0u64;
    for (ch, ks) in (&mut chunks).zip(&mut out) {
        let lanes = gather_lane_batch(ch, col);
        lane_max(&mut maxes, &lanes);
        ks.copy_from_slice(&lanes);
        batches += 1;
    }
    let mut max = lane_fold_max(&maxes);
    let tail = data.len() - chunks.remainder().len();
    for (&id, k) in chunks.remainder().iter().zip(&mut keys[tail..]) {
        let v = col[id as usize];
        max = max.max(v);
        *k = v;
    }
    (max, batches)
}

/// Count `keys` into `counts` (`counts[k] += 1`; all keys must be
/// `< counts.len()` — validate via [`gather_keys`]' maximum first).
/// Returns the number of full batches counted through the stripes.
///
/// `stripes` is caller-owned scratch of `STRIPES × counts.len()`
/// counters that must be **all-zero on entry** and is restored to
/// all-zero on exit (the same discipline the partition arena keeps for
/// `counts` itself, so steady-state passes never re-zero the largest
/// histogram ever seen). Increments go to `STRIPES` independent
/// histograms round-robin and are merged into `counts` at the end;
/// counting is order-independent, so the result is bit-identical to the
/// plain loop.
#[inline]
pub fn histogram_u32(keys: &[AttrValue], counts: &mut [u32], stripes: &mut [u32]) -> u64 {
    let b = counts.len();
    debug_assert!(stripes.len() >= STRIPES * b, "stripe scratch undersized");
    if keys.len() < STRIPE_MIN_KEYS_PER_BUCKET * b {
        for &k in keys {
            counts[k as usize] += 1;
        }
        return 0;
    }
    let (s0, rest) = stripes.split_at_mut(b);
    let (s1, rest) = rest.split_at_mut(b);
    let (s2, rest) = rest.split_at_mut(b);
    let s3 = &mut rest[..b];
    let chunks = keys.chunks_exact(LANES);
    let rem = chunks.remainder();
    let mut batches = 0u64;
    for ch in chunks {
        s0[ch[0] as usize] += 1;
        s1[ch[1] as usize] += 1;
        s2[ch[2] as usize] += 1;
        s3[ch[3] as usize] += 1;
        s0[ch[4] as usize] += 1;
        s1[ch[5] as usize] += 1;
        s2[ch[6] as usize] += 1;
        s3[ch[7] as usize] += 1;
        batches += 1;
    }
    for &k in rem {
        counts[k as usize] += 1;
    }
    for v in 0..b {
        counts[v] += s0[v] + s1[v] + s2[v] + s3[v];
        s0[v] = 0;
        s1[v] = 0;
        s2[v] = 0;
        s3[v] = 0;
    }
    batches
}

/// OR bit `bit` into `masks[i]` for every position `i` whose gathered
/// column value equals `value` — one dimension of the β group-by match
/// mask (`grm_core::beta`), batched so the gathers issue together and
/// the compare + shift runs per lane. Returns full batches processed.
#[inline]
pub fn mask_eq_accumulate(
    data: &[u32],
    col: &[AttrValue],
    value: AttrValue,
    bit: u32,
    masks: &mut [AttrValue],
) -> u64 {
    debug_assert_eq!(data.len(), masks.len());
    let mut chunks = data.chunks_exact(LANES);
    let mut out = masks.chunks_exact_mut(LANES);
    let mut batches = 0u64;
    for (ch, ms) in (&mut chunks).zip(&mut out) {
        let lanes = gather_lane_batch(ch, col);
        lane_mask_eq(ms, &lanes, value, bit);
        batches += 1;
    }
    let tail = data.len() - chunks.remainder().len();
    for (&id, m) in chunks.remainder().iter().zip(&mut masks[tail..]) {
        *m |= AttrValue::from(col[id as usize] == value) << bit;
    }
    batches
}

/// The fused-pass scatter (see
/// [`crate::sort::PartitionArena::partition_col_fused`]): stable-scatter
/// `data` by its cached `keys` through `cursors` into `scatter`, while
/// gathering each item's key on `next_col`, counting it (clamped to
/// `next_buckets - 1`) into the per-child histogram block of `fused`
/// and caching it in scattered order in `fused_keys`. Returns
/// `(any_next_key_out_of_range, batches)`; on `true` the caller rolls
/// back exactly as with the scalar loop — the clamp keeps every write
/// in bounds, so nothing outside the pass's own scratch is touched.
///
/// The scatter chain through `cursors` is serially dependent and stays
/// scalar; the batching front-loads the *two* gather streams (ids and
/// next keys) per [`LANES`] items.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn scatter_with_count(
    data: &[u32],
    keys: &[AttrValue],
    cursors: &mut [u32],
    scatter: &mut [u32],
    next_col: &[AttrValue],
    next_buckets: usize,
    fused: &mut [u32],
    fused_keys: &mut [AttrValue],
) -> (bool, u64) {
    debug_assert_eq!(data.len(), keys.len());
    // cast: bucket counts are attribute-domain sized, ≤ u16::MAX + 1
    let clamp = (next_buckets.saturating_sub(1)) as AttrValue;
    let mut bad = false;
    let mut batches = 0u64;
    let mut i = 0usize;
    let chunks = data.chunks_exact(LANES);
    let rem_start = data.len() - chunks.remainder().len();
    for ch in chunks {
        let nks = gather_lane_batch(ch, next_col);
        bad |= lane_any_gt(&nks, clamp);
        let nks = lane_min(&nks, clamp);
        for j in 0..LANES {
            let k = keys[i + j] as usize;
            let dst = cursors[k] as usize;
            cursors[k] += 1;
            scatter[dst] = ch[j];
            fused[k * next_buckets + nks[j] as usize] += 1;
            fused_keys[dst] = nks[j];
        }
        i += LANES;
        batches += 1;
    }
    for (i, &id) in data.iter().enumerate().skip(rem_start) {
        let nk = next_col[id as usize];
        bad |= nk > clamp;
        let nk = nk.min(clamp);
        let k = keys[i] as usize;
        let dst = cursors[k] as usize;
        cursors[k] += 1;
        scatter[dst] = id;
        fused[k * next_buckets + nk as usize] += 1;
        fused_keys[dst] = nk;
    }
    (bad, batches)
}

/// Full [`LANES`]-wide batches in `n` items — the batch count a scalar
/// replacement of a kernel loop would have processed.
#[inline]
pub fn batches(n: usize) -> u64 {
    (n / LANES) as u64
}

// --- lane helpers -------------------------------------------------------
//
// The per-batch lane arithmetic, switched between the SWAR and the
// `std::simd` implementation. The gather itself is LANES independent
// scalar loads in both backends (`std::simd`'s `gather_or` needs a
// `usize` index vector and offers no win over the unrolled loads here;
// the point of batching is issuing them without intervening stores).

/// Load the keys of one batch of ids.
#[inline(always)]
fn gather_lane_batch(ch: &[u32], col: &[AttrValue]) -> [AttrValue; LANES] {
    [
        col[ch[0] as usize],
        col[ch[1] as usize],
        col[ch[2] as usize],
        col[ch[3] as usize],
        col[ch[4] as usize],
        col[ch[5] as usize],
        col[ch[6] as usize],
        col[ch[7] as usize],
    ]
}

#[cfg(not(all(feature = "simd", grm_nightly_simd)))]
mod lanes {
    use super::{AttrValue, LANES};

    /// `maxes[j] = max(maxes[j], lanes[j])` — eight independent maxima.
    #[inline(always)]
    pub fn lane_max(maxes: &mut [AttrValue; LANES], lanes: &[AttrValue; LANES]) {
        for j in 0..LANES {
            maxes[j] = maxes[j].max(lanes[j]);
        }
    }

    /// Horizontal maximum of the per-lane maxima.
    #[inline(always)]
    pub fn lane_fold_max(maxes: &[AttrValue; LANES]) -> AttrValue {
        maxes.iter().copied().fold(0, AttrValue::max)
    }

    /// Whether any lane exceeds `clamp`.
    #[inline(always)]
    pub fn lane_any_gt(lanes: &[AttrValue; LANES], clamp: AttrValue) -> bool {
        let mut any = false;
        for &v in lanes {
            any |= v > clamp;
        }
        any
    }

    /// Per-lane `min(v, clamp)`.
    #[inline(always)]
    pub fn lane_min(lanes: &[AttrValue; LANES], clamp: AttrValue) -> [AttrValue; LANES] {
        let mut out = *lanes;
        for v in &mut out {
            *v = (*v).min(clamp);
        }
        out
    }

    /// `masks[j] |= (lanes[j] == value) << bit`.
    #[inline(always)]
    pub fn lane_mask_eq(
        masks: &mut [AttrValue],
        lanes: &[AttrValue; LANES],
        value: AttrValue,
        bit: u32,
    ) {
        for j in 0..LANES {
            masks[j] |= AttrValue::from(lanes[j] == value) << bit;
        }
    }
}

#[cfg(all(feature = "simd", grm_nightly_simd))]
mod lanes {
    //! `std::simd` lane arithmetic — compiled only with the `simd`
    //! feature on a nightly toolchain (`build.rs` probes the channel);
    //! everywhere else the SWAR module above serves the same API.
    use super::{AttrValue, LANES};
    use std::simd::cmp::{SimdOrd, SimdPartialEq, SimdPartialOrd};
    use std::simd::{Select, Simd};

    type V = Simd<AttrValue, LANES>;

    #[inline(always)]
    pub fn lane_max(maxes: &mut [AttrValue; LANES], lanes: &[AttrValue; LANES]) {
        *maxes = V::from_array(*maxes)
            .simd_max(V::from_array(*lanes))
            .to_array();
    }

    #[inline(always)]
    pub fn lane_fold_max(maxes: &[AttrValue; LANES]) -> AttrValue {
        use std::simd::num::SimdUint;
        V::from_array(*maxes).reduce_max()
    }

    #[inline(always)]
    pub fn lane_any_gt(lanes: &[AttrValue; LANES], clamp: AttrValue) -> bool {
        V::from_array(*lanes).simd_gt(V::splat(clamp)).any()
    }

    #[inline(always)]
    pub fn lane_min(lanes: &[AttrValue; LANES], clamp: AttrValue) -> [AttrValue; LANES] {
        V::from_array(*lanes).simd_min(V::splat(clamp)).to_array()
    }

    #[inline(always)]
    pub fn lane_mask_eq(
        masks: &mut [AttrValue],
        lanes: &[AttrValue; LANES],
        value: AttrValue,
        bit: u32,
    ) {
        let eq = V::from_array(*lanes).simd_eq(V::splat(value));
        let bits = eq.select(V::splat(1 << bit), V::splat(0));
        let cur = V::from_slice(masks);
        (cur | bits).copy_to_slice(masks);
    }
}

use lanes::{lane_any_gt, lane_fold_max, lane_mask_eq, lane_max, lane_min};

#[cfg(test)]
mod tests {
    use super::*;

    fn col(n: usize) -> Vec<AttrValue> {
        (0..n).map(|i| ((i * 7 + 3) % 19) as AttrValue).collect()
    }

    #[test]
    fn gather_matches_scalar_and_reports_max() {
        for n in [0usize, 1, 7, 8, 9, 64, 100] {
            let col = col(256);
            let data: Vec<u32> = (0..n as u32).map(|i| (i * 13) % 256).collect();
            let mut keys = vec![0 as AttrValue; n];
            let (max, batches) = gather_keys(&data, &col, &mut keys);
            let expect: Vec<AttrValue> = data.iter().map(|&id| col[id as usize]).collect();
            assert_eq!(keys, expect, "n = {n}");
            assert_eq!(max, expect.iter().copied().max().unwrap_or(0), "n = {n}");
            assert_eq!(batches, (n / LANES) as u64);
        }
    }

    #[test]
    fn histogram_matches_scalar_with_and_without_stripes() {
        for n in [0usize, 3, 8, 31, 200, 1000] {
            for b in [1usize, 2, 19, 64] {
                let keys: Vec<AttrValue> =
                    (0..n).map(|i| ((i * 11 + 5) % b) as AttrValue).collect();
                let mut counts = vec![0u32; b];
                let mut stripes = vec![0u32; STRIPES * b];
                histogram_u32(&keys, &mut counts, &mut stripes);
                let mut expect = vec![0u32; b];
                for &k in &keys {
                    expect[k as usize] += 1;
                }
                assert_eq!(counts, expect, "n = {n}, b = {b}");
                assert!(
                    stripes.iter().all(|&s| s == 0),
                    "stripes must be re-zeroed (n = {n}, b = {b})"
                );
            }
        }
    }

    #[test]
    fn mask_accumulate_builds_conjunction_masks() {
        let n = 37;
        let c1: Vec<AttrValue> = (0..n).map(|i| (i % 3) as AttrValue).collect();
        let c2: Vec<AttrValue> = (0..n).map(|i| (i % 5) as AttrValue).collect();
        let data: Vec<u32> = (0..n as u32).rev().collect();
        let mut masks = vec![0 as AttrValue; n];
        mask_eq_accumulate(&data, &c1, 2, 0, &mut masks);
        mask_eq_accumulate(&data, &c2, 4, 1, &mut masks);
        for (i, &id) in data.iter().enumerate() {
            let expect = AttrValue::from(c1[id as usize] == 2)
                | (AttrValue::from(c2[id as usize] == 4) << 1);
            assert_eq!(masks[i], expect, "position {i}");
        }
    }

    #[test]
    fn scatter_with_count_matches_scalar_reference() {
        let n = 203;
        let buckets = 5usize;
        let next_buckets = 4usize;
        let keys: Vec<AttrValue> = (0..n).map(|i| (i % buckets) as AttrValue).collect();
        let next_col: Vec<AttrValue> = (0..n)
            .map(|i| ((i * 3) % next_buckets) as AttrValue)
            .collect();
        let data: Vec<u32> = (0..n as u32).map(|i| (i * 31) % n as u32).collect();
        // Prefix offsets for the keys.
        let mut counts = vec![0u32; buckets];
        for &k in &keys {
            counts[k as usize] += 1;
        }
        let mut cursors = vec![0u32; buckets];
        let mut acc = 0;
        for (c, k) in cursors.iter_mut().zip(&counts) {
            *c = acc;
            acc += k;
        }
        // Scalar reference.
        let mut ref_cursors = cursors.clone();
        let mut ref_scatter = vec![0u32; n];
        let mut ref_fused = vec![0u32; buckets * next_buckets];
        let mut ref_fused_keys = vec![0 as AttrValue; n];
        for (i, &id) in data.iter().enumerate() {
            let k = keys[i] as usize;
            let dst = ref_cursors[k] as usize;
            ref_cursors[k] += 1;
            ref_scatter[dst] = id;
            let nk = next_col[id as usize];
            ref_fused[k * next_buckets + nk as usize] += 1;
            ref_fused_keys[dst] = nk;
        }
        // Kernel.
        let mut scatter = vec![0u32; n];
        let mut fused = vec![0u32; buckets * next_buckets];
        let mut fused_keys = vec![0 as AttrValue; n];
        let (bad, batches) = scatter_with_count(
            &data,
            &keys,
            &mut cursors,
            &mut scatter,
            &next_col,
            next_buckets,
            &mut fused,
            &mut fused_keys,
        );
        assert!(!bad);
        assert_eq!(batches, (n / LANES) as u64);
        assert_eq!(scatter, ref_scatter);
        assert_eq!(fused, ref_fused);
        assert_eq!(fused_keys, ref_fused_keys);
        assert_eq!(cursors, ref_cursors);
    }

    #[test]
    fn scatter_with_count_flags_out_of_range_next_keys() {
        let data: Vec<u32> = (0..20).collect();
        let keys = vec![0 as AttrValue; 20];
        let mut next_col = vec![0 as AttrValue; 20];
        next_col[13] = 9; // beyond next_buckets = 2
        let mut cursors = vec![0u32];
        let mut scatter = vec![0u32; 20];
        let mut fused = vec![0u32; 2];
        let mut fused_keys = vec![0 as AttrValue; 20];
        let (bad, _) = scatter_with_count(
            &data,
            &keys,
            &mut cursors,
            &mut scatter,
            &next_col,
            2,
            &mut fused,
            &mut fused_keys,
        );
        assert!(bad, "the sticky flag must catch a clamped key");
        // All writes stayed in bounds (the clamp): total counted = 20.
        assert_eq!(fused.iter().sum::<u32>(), 20);
    }

    #[test]
    fn batches_counts_full_chunks() {
        assert_eq!(batches(0), 0);
        assert_eq!(batches(7), 0);
        assert_eq!(batches(8), 1);
        assert_eq!(batches(17), 2);
    }
}
