//! Plain-text persistence for attributed graphs.
//!
//! A single self-describing, tab-separated format (schema + nodes + edges)
//! so experiment datasets can be generated once and re-used across harness
//! runs. The format is line-oriented:
//!
//! ```text
//! GRMGRAPH 1
//! NODEATTR <name> <domain> <h|n> [<name0> <name1> ...]
//! EDGEATTR <name> <domain> - [<name0> ...]
//! NODES <count>
//! <v1> <v2> ...                    (one row per node)
//! EDGES <count>
//! <src> <dst> <v1> ...             (one row per edge)
//! ```
//!
//! All fields are tab-separated (value names may contain spaces). For
//! programmatic interchange, [`SocialGraph`] and [`Schema`] also derive
//! `serde::{Serialize, Deserialize}`.
//!
//! ### The binary shard-spill chunk format
//!
//! Sharded out-of-core mining ([`crate::shard`]) spills edges to disk in
//! a columnar little-endian chunk stream, one file per shard or slice.
//! Every file opens with a 12-byte header — the [`SPILL_MAGIC`] bytes
//! plus the u32 [`SPILL_VERSION`] — and each chunk is:
//!
//! ```text
//! u32 len | len × u32 srcs | len × u32 dsts | per edge attr: len × u16 | u64 checksum
//! ```
//!
//! Columns (not rows) so a streaming reader touches each attribute
//! contiguously, matching the columnar key caches the [`crate::CompactModel`]
//! builds from them. The trailing checksum is [`spill_checksum`] over
//! the chunk's column bytes; mining re-reads every spilled byte as a
//! correctness input (the out-of-core engine trusts nothing else), so
//! the decoder verifies it and surfaces torn writes, truncation, and
//! bit rot as typed [`ShardIoError`]s instead of decoding garbage.
//! [`write_edge_chunk`] / [`read_edge_chunk`] are the only
//! encoder/decoder; the shard store never parses bytes itself.

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result, ShardIoError};
use crate::graph::SocialGraph;
use crate::schema::{AttrDef, Schema};
use crate::value::AttrValue;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &str = "GRMGRAPH";
const VERSION: &str = "1";

/// Serialize `graph` to `w` in the GRMGRAPH text format.
pub fn write_graph<W: Write>(graph: &SocialGraph, w: W) -> Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "{MAGIC}\t{VERSION}")?;
    let schema = graph.schema();
    for a in schema.node_attr_ids() {
        write_attr(&mut w, "NODEATTR", schema.node_attr(a))?;
    }
    for a in schema.edge_attr_ids() {
        write_attr(&mut w, "EDGEATTR", schema.edge_attr(a))?;
    }
    writeln!(w, "NODES\t{}", graph.node_count())?;
    for n in graph.node_ids() {
        let row: Vec<String> = graph.node_row(n).iter().map(|v| v.to_string()).collect();
        writeln!(w, "{}", row.join("\t"))?;
    }
    writeln!(w, "EDGES\t{}", graph.edge_count())?;
    for e in graph.edge_ids() {
        let mut row = vec![graph.src(e).to_string(), graph.dst(e).to_string()];
        row.extend(graph.edge_row(e).iter().map(|v| v.to_string()));
        writeln!(w, "{}", row.join("\t"))?;
    }
    w.flush()?;
    Ok(())
}

fn write_attr<W: Write>(w: &mut W, tag: &str, def: &AttrDef) -> Result<()> {
    let flag = if def.is_homophily() { "h" } else { "n" };
    let mut line = format!("{tag}\t{}\t{}\t{flag}", def.name(), def.domain_size());
    // Emit the dictionary only when at least one value has a real name.
    let named: Vec<String> = (0..=def.domain_size()).map(|v| def.value_name(v)).collect();
    let has_dict = (1..=def.domain_size()).any(|v| def.value_name(v) != v.to_string());
    if has_dict {
        for name in named {
            line.push('\t');
            line.push_str(&name);
        }
    }
    writeln!(w, "{line}")?;
    Ok(())
}

/// Parse a graph from `r` in the GRMGRAPH text format.
pub fn read_graph<R: Read>(r: R) -> Result<SocialGraph> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().enumerate();

    let mut next_line = |expect: &str| -> Result<(usize, String)> {
        match lines.next() {
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => Err(GraphError::Parse {
                line: i + 1,
                message: e.to_string(),
            }),
            None => Err(GraphError::Parse {
                line: 0,
                message: format!("unexpected end of input, expected {expect}"),
            }),
        }
    };

    // Header.
    let (ln, header) = next_line("header")?;
    let mut parts = header.split('\t');
    if parts.next() != Some(MAGIC) || parts.next() != Some(VERSION) {
        return Err(GraphError::Parse {
            line: ln,
            message: format!("bad header, expected `{MAGIC}\\t{VERSION}`"),
        });
    }

    // Attribute declarations until the NODES marker.
    let mut node_attrs = Vec::new();
    let mut edge_attrs = Vec::new();
    let node_count: usize;
    loop {
        let (ln, line) = next_line("NODEATTR/EDGEATTR/NODES")?;
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "NODEATTR" => node_attrs.push(parse_attr(ln, &fields)?),
            "EDGEATTR" => edge_attrs.push(parse_attr(ln, &fields)?),
            "NODES" => {
                node_count = parse_num(ln, fields.get(1).copied())?;
                break;
            }
            other => {
                return Err(GraphError::Parse {
                    line: ln,
                    message: format!("unexpected tag `{other}`"),
                })
            }
        }
    }

    let schema = Schema::new(node_attrs, edge_attrs)?;
    let na = schema.node_attr_count();
    let ea = schema.edge_attr_count();
    let mut builder = GraphBuilder::with_capacity(schema, node_count, 0).allow_self_loops();

    // Node rows.
    let mut row = Vec::with_capacity(na);
    for _ in 0..node_count {
        let (ln, line) = next_line("node row")?;
        row.clear();
        for f in line.split('\t') {
            row.push(parse_value(ln, f)?);
        }
        builder.add_node(&row).map_err(|e| GraphError::Parse {
            line: ln,
            message: e.to_string(),
        })?;
    }

    // Edge header + rows.
    let (ln, line) = next_line("EDGES")?;
    let fields: Vec<&str> = line.split('\t').collect();
    if fields[0] != "EDGES" {
        return Err(GraphError::Parse {
            line: ln,
            message: format!("expected EDGES, got `{}`", fields[0]),
        });
    }
    let edge_count: usize = parse_num(ln, fields.get(1).copied())?;
    let mut evals = Vec::with_capacity(ea);
    for _ in 0..edge_count {
        let (ln, line) = next_line("edge row")?;
        let mut it = line.split('\t');
        let src = parse_num(ln, it.next())? as u32;
        let dst = parse_num(ln, it.next())? as u32;
        evals.clear();
        for f in it {
            evals.push(parse_value(ln, f)?);
        }
        builder
            .add_edge(src, dst, &evals)
            .map_err(|e| GraphError::Parse {
                line: ln,
                message: e.to_string(),
            })?;
    }

    builder.build()
}

fn parse_attr(ln: usize, fields: &[&str]) -> Result<AttrDef> {
    if fields.len() < 4 {
        return Err(GraphError::Parse {
            line: ln,
            message: "attribute line needs name, domain, flag".into(),
        });
    }
    let name = fields[1];
    let domain: AttrValue = fields[2].parse().map_err(|_| GraphError::Parse {
        line: ln,
        message: format!("bad domain `{}`", fields[2]),
    })?;
    let homophily = fields[3] == "h";
    if fields.len() > 4 {
        let names = &fields[4..];
        if names.len() != domain as usize + 1 {
            return Err(GraphError::Parse {
                line: ln,
                message: format!(
                    "dictionary for `{name}` has {} entries, expected {}",
                    names.len(),
                    domain + 1
                ),
            });
        }
        Ok(AttrDef::with_values(
            name,
            homophily,
            names[1..].iter().map(|s| s.to_string()),
        ))
    } else {
        Ok(AttrDef::new(name, domain, homophily))
    }
}

fn parse_num(ln: usize, f: Option<&str>) -> Result<usize> {
    f.and_then(|s| s.parse().ok()).ok_or(GraphError::Parse {
        line: ln,
        message: "expected a number".into(),
    })
}

fn parse_value(ln: usize, f: &str) -> Result<AttrValue> {
    f.parse().map_err(|_| GraphError::Parse {
        line: ln,
        message: format!("bad attribute value `{f}`"),
    })
}

/// One decoded columnar chunk of shard-spilled edges (module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeChunk {
    /// Edge sources.
    pub srcs: Vec<crate::value::NodeId>,
    /// Edge destinations, same length as `srcs`.
    pub dsts: Vec<crate::value::NodeId>,
    /// One column per edge attribute, each the chunk's length.
    pub attrs: Vec<Vec<AttrValue>>,
}

impl EdgeChunk {
    /// Edges in the chunk.
    pub fn len(&self) -> usize {
        self.srcs.len()
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.srcs.is_empty()
    }
}

/// First bytes of every spill file.
pub const SPILL_MAGIC: &[u8; 8] = b"GRMSPILL";

/// Spill format version this build reads and writes. Version 1 was the
/// header-less, checksum-less chunk stream of the first out-of-core
/// engine; 2 added the file header and per-chunk checksums.
pub const SPILL_VERSION: u32 = 2;

/// Hand-rolled 64-bit checksum for spill chunks (xxhash-style lane
/// mixing with a final avalanche; no dependency). Not cryptographic —
/// it detects torn writes, truncation, and bit rot, which is what the
/// out-of-core engine needs from bytes it wrote itself.
pub fn spill_checksum(bytes: &[u8]) -> u64 {
    const P1: u64 = 0x9E37_79B1_85EB_CA87;
    const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
    const P3: u64 = 0x1656_67B1_9E37_79F9;
    let mut h = P3 ^ (bytes.len() as u64).wrapping_mul(P1);
    let mut lanes = bytes.chunks_exact(8);
    for c in lanes.by_ref() {
        let v = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        h = (h ^ v.wrapping_mul(P2)).rotate_left(31).wrapping_mul(P1);
    }
    for &b in lanes.remainder() {
        h = (h ^ u64::from(b).wrapping_mul(P1))
            .rotate_left(11)
            .wrapping_mul(P2);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^= h >> 32;
    h
}

/// Write the 12-byte spill file header (magic + version).
pub fn write_spill_header<W: Write>(w: &mut W) -> Result<()> {
    w.write_all(SPILL_MAGIC)?;
    w.write_all(&SPILL_VERSION.to_le_bytes())?;
    Ok(())
}

/// Read and validate the spill file header written by
/// [`write_spill_header`].
pub fn read_spill_header<R: Read>(r: &mut R) -> Result<()> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|_| ShardIoError::ShortRead {
            context: "spill header magic",
        })?;
    if &magic != SPILL_MAGIC {
        return Err(ShardIoError::BadMagic.into());
    }
    let mut ver = [0u8; 4];
    r.read_exact(&mut ver)
        .map_err(|_| ShardIoError::ShortRead {
            context: "spill header version",
        })?;
    let found = u32::from_le_bytes(ver);
    if found != SPILL_VERSION {
        return Err(ShardIoError::VersionMismatch {
            found,
            expected: SPILL_VERSION,
        }
        .into());
    }
    Ok(())
}

/// Encode one columnar edge chunk — length prefix, columns, trailing
/// [`spill_checksum`] over the column bytes — into a single buffer, so
/// a writer can retry the whole chunk on a transient failure without
/// re-walking its sources. `attrs` holds one column per edge attribute;
/// every column must match `srcs`/`dsts` in length.
pub fn encode_edge_chunk(
    srcs: &[crate::value::NodeId],
    dsts: &[crate::value::NodeId],
    attrs: &[Vec<AttrValue>],
) -> Vec<u8> {
    debug_assert_eq!(srcs.len(), dsts.len());
    let n = srcs.len();
    let body_len = n * 8 + attrs.len() * n * 2;
    let mut out = Vec::with_capacity(4 + body_len + 8);
    out.extend_from_slice(&(n as u32).to_le_bytes());
    for col in [srcs, dsts] {
        for &v in col {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    for col in attrs {
        debug_assert_eq!(col.len(), n);
        for &v in col {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    let sum = spill_checksum(&out[4..]);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Append one columnar edge chunk to `w` (module docs give the layout).
pub fn write_edge_chunk<W: Write>(
    w: &mut W,
    srcs: &[crate::value::NodeId],
    dsts: &[crate::value::NodeId],
    attrs: &[Vec<AttrValue>],
) -> Result<()> {
    w.write_all(&encode_edge_chunk(srcs, dsts, attrs))?;
    Ok(())
}

/// Read the next edge chunk from `r`, decoding `edge_attrs` attribute
/// columns per edge and verifying the trailing checksum. Returns
/// `Ok(None)` on a clean end of stream; truncation is a typed
/// [`ShardIoError::ShortRead`] and a checksum failure a
/// [`ShardIoError::ChecksumMismatch`].
pub fn read_edge_chunk<R: Read>(r: &mut R, edge_attrs: usize) -> Result<Option<EdgeChunk>> {
    let mut lenb = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        let k = r.read(&mut lenb[got..])?;
        if k == 0 {
            break;
        }
        got += k;
    }
    if got == 0 {
        return Ok(None);
    }
    if got < 4 {
        return Err(ShardIoError::ShortRead {
            context: "chunk length prefix",
        }
        .into());
    }
    let n = u32::from_le_bytes(lenb) as usize;
    let body_len = n * 8 + edge_attrs * n * 2;
    // Read incrementally so a corrupted length prefix cannot demand a
    // multi-gigabyte allocation — it runs out of file bytes first and
    // surfaces as the short read it is.
    let mut body = Vec::new();
    let mut piece = [0u8; 64 * 1024];
    let mut remaining = body_len;
    while remaining > 0 {
        let want = remaining.min(piece.len());
        let k = r.read(&mut piece[..want])?;
        if k == 0 {
            return Err(ShardIoError::ShortRead {
                context: "chunk columns",
            }
            .into());
        }
        body.extend_from_slice(&piece[..k]);
        remaining -= k;
    }
    let mut sumb = [0u8; 8];
    r.read_exact(&mut sumb)
        .map_err(|_| ShardIoError::ShortRead {
            context: "chunk checksum",
        })?;
    let stored = u64::from_le_bytes(sumb);
    let computed = spill_checksum(&body);
    if stored != computed {
        return Err(ShardIoError::ChecksumMismatch { stored, computed }.into());
    }
    let col_u32 = |bytes: &[u8]| -> Vec<crate::value::NodeId> {
        bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    };
    let srcs = col_u32(&body[..n * 4]);
    let dsts = col_u32(&body[n * 4..n * 8]);
    let mut attrs = Vec::with_capacity(edge_attrs);
    for a in 0..edge_attrs {
        let start = n * 8 + a * n * 2;
        let col = body[start..start + n * 2]
            .chunks_exact(2)
            .map(|c| AttrValue::from_le_bytes([c[0], c[1]]))
            .collect();
        attrs.push(col);
    }
    Ok(Some(EdgeChunk { srcs, dsts, attrs }))
}

/// Save a graph to `path`.
pub fn save_graph(graph: &SocialGraph, path: impl AsRef<Path>) -> Result<()> {
    write_graph(graph, std::fs::File::create(path)?)
}

/// Load a graph from `path`.
pub fn load_graph(path: impl AsRef<Path>) -> Result<SocialGraph> {
    read_graph(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeAttrId, NodeAttrId, SchemaBuilder};

    fn sample() -> SocialGraph {
        let schema = SchemaBuilder::new()
            .node_attr_named("SEX", false, ["F", "M"])
            .node_attr("Region", 188, true)
            .edge_attr_named("TYPE", ["dates", "friend of"])
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let a = b.add_node(&[1, 27]).unwrap();
        let c = b.add_node(&[2, 0]).unwrap();
        let d = b.add_node(&[2, 188]).unwrap();
        b.add_edge(a, c, &[1]).unwrap();
        b.add_edge(c, d, &[2]).unwrap();
        b.add_edge(d, a, &[0]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let g = sample();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let back = read_graph(&buf[..]).unwrap();

        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.schema(), g.schema());
        for n in g.node_ids() {
            assert_eq!(back.node_row(n), g.node_row(n));
        }
        for e in g.edge_ids() {
            assert_eq!(back.src(e), g.src(e));
            assert_eq!(back.dst(e), g.dst(e));
            assert_eq!(back.edge_row(e), g.edge_row(e));
        }
        // Dictionaries survive (value names with spaces included).
        assert_eq!(
            back.schema().edge_attr(EdgeAttrId(0)).value_name(2),
            "friend of"
        );
        assert!(back.schema().node_attr(NodeAttrId(1)).is_homophily());
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_graph(&b"not a graph"[..]).is_err());
        assert!(read_graph(&b"GRMGRAPH\t9\n"[..]).is_err());
        let truncated = b"GRMGRAPH\t1\nNODEATTR\tA\t2\tn\nNODES\t3\n1\n";
        assert!(read_graph(&truncated[..]).is_err());
    }

    #[test]
    fn file_round_trip() {
        let g = sample();
        let dir = std::env::temp_dir().join("grm_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.grm");
        save_graph(&g, &path).unwrap();
        let back = load_graph(&path).unwrap();
        assert_eq!(back.edge_count(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_chunk_round_trip() {
        let mut buf = Vec::new();
        write_edge_chunk(&mut buf, &[1, 2, 3], &[4, 5, 6], &[vec![7, 8, 9]]).unwrap();
        write_edge_chunk(&mut buf, &[10], &[11], &[vec![1]]).unwrap();
        // Empty chunks are legal (a flush with nothing buffered).
        write_edge_chunk(&mut buf, &[], &[], &[vec![]]).unwrap();
        let mut r = &buf[..];
        let c1 = read_edge_chunk(&mut r, 1).unwrap().unwrap();
        assert_eq!(c1.srcs, vec![1, 2, 3]);
        assert_eq!(c1.dsts, vec![4, 5, 6]);
        assert_eq!(c1.attrs, vec![vec![7, 8, 9]]);
        assert_eq!(c1.len(), 3);
        let c2 = read_edge_chunk(&mut r, 1).unwrap().unwrap();
        assert_eq!((c2.srcs[0], c2.dsts[0], c2.attrs[0][0]), (10, 11, 1));
        let c3 = read_edge_chunk(&mut r, 1).unwrap().unwrap();
        assert!(c3.is_empty());
        assert!(read_edge_chunk(&mut r, 1).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn edge_chunk_no_attrs() {
        let mut buf = Vec::new();
        write_edge_chunk(&mut buf, &[0, 1], &[1, 0], &[]).unwrap();
        let c = read_edge_chunk(&mut &buf[..], 0).unwrap().unwrap();
        assert_eq!(c.srcs, vec![0, 1]);
        assert!(c.attrs.is_empty());
    }

    #[test]
    fn edge_chunk_truncation_is_a_typed_short_read() {
        let mut buf = Vec::new();
        write_edge_chunk(&mut buf, &[1, 2, 3], &[4, 5, 6], &[vec![7, 8, 9]]).unwrap();
        // Cut mid-checksum, mid-column, and mid-length-prefix: the
        // length prefix promises bytes that never arrive.
        for cut_at in [buf.len() - 3, 10, 2] {
            let cut = &buf[..cut_at];
            let err = read_edge_chunk(&mut &cut[..], 1).unwrap_err();
            assert!(
                matches!(err, GraphError::ShardIo(ShardIoError::ShortRead { .. })),
                "cut at {cut_at}: {err:?}"
            );
        }
    }

    #[test]
    fn edge_chunk_corruption_is_a_checksum_mismatch() {
        let mut buf = Vec::new();
        write_edge_chunk(&mut buf, &[1, 2, 3], &[4, 5, 6], &[vec![7, 8, 9]]).unwrap();
        // Flip one payload bit (in a column, past the length prefix).
        buf[6] ^= 0x10;
        let err = read_edge_chunk(&mut &buf[..], 1).unwrap_err();
        assert!(
            matches!(
                err,
                GraphError::ShardIo(ShardIoError::ChecksumMismatch { .. })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn oversized_length_prefix_is_a_short_read_not_an_allocation() {
        let mut buf = Vec::new();
        write_edge_chunk(&mut buf, &[1], &[2], &[]).unwrap();
        // Corrupt the length prefix to claim ~4 billion edges.
        buf[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_edge_chunk(&mut &buf[..], 0).unwrap_err();
        assert!(
            matches!(err, GraphError::ShardIo(ShardIoError::ShortRead { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn spill_header_round_trip_and_rejections() {
        let mut buf = Vec::new();
        write_spill_header(&mut buf).unwrap();
        assert_eq!(buf.len(), 12);
        read_spill_header(&mut &buf[..]).unwrap();

        // Wrong magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_spill_header(&mut &bad[..]).unwrap_err(),
            GraphError::ShardIo(ShardIoError::BadMagic)
        ));
        // Future version.
        let mut vnext = buf.clone();
        vnext[8..12].copy_from_slice(&(SPILL_VERSION + 1).to_le_bytes());
        assert!(matches!(
            read_spill_header(&mut &vnext[..]).unwrap_err(),
            GraphError::ShardIo(ShardIoError::VersionMismatch { expected, .. })
                if expected == SPILL_VERSION
        ));
        // Truncated header.
        assert!(matches!(
            read_spill_header(&mut &buf[..5]).unwrap_err(),
            GraphError::ShardIo(ShardIoError::ShortRead { .. })
        ));
    }

    #[test]
    fn spill_checksum_is_stable_and_sensitive() {
        // Pinned values: the on-disk format depends on this function
        // never changing.
        assert_eq!(spill_checksum(b""), spill_checksum(b""));
        assert_ne!(spill_checksum(b"a"), spill_checksum(b"b"));
        assert_ne!(spill_checksum(b"abcdefgh"), spill_checksum(b"abcdefgi"));
        // Length is mixed in: a zero-padded prefix is not a collision.
        assert_ne!(spill_checksum(&[0u8; 8]), spill_checksum(&[0u8; 16]));
    }

    #[test]
    fn value_out_of_domain_rejected_at_load() {
        let text = "GRMGRAPH\t1\nNODEATTR\tA\t2\tn\nNODES\t1\n7\nEDGES\t0\n";
        let err = read_graph(text.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }
}
