//! Network statistics and data-driven homophily detection.
//!
//! The mining problem (§III-B) takes the homophily flags as *input*: "For a
//! given social network, we assume that the setting of homophily attributes
//! is specified. Some existing works, like \[27\] (Traud, Mucha, Porter:
//! Social Structure of Facebook Networks), studied the methods to identify
//! homophily attributes." This module implements that missing front-end:
//! per-attribute **assortativity** measurement — the propensity of edges to
//! connect same-valued endpoints relative to chance — plus the marginal and
//! degree summaries an analyst needs before configuring a mining run.

use crate::graph::SocialGraph;
use crate::value::{NodeAttrId, NULL};
use serde::{Deserialize, Serialize};

/// Homophily measurement for one node attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HomophilyScore {
    /// The attribute measured.
    pub attr: NodeAttrId,
    /// Fraction of edges whose endpoints share a non-null value on the
    /// attribute (edges with a null endpoint value are excluded).
    pub observed_same: f64,
    /// Fraction expected if endpoints were paired independently, i.e.
    /// `Σ_v  p_src(v) · p_dst(v)` over non-null values, where the
    /// marginals are measured over edge endpoints.
    pub expected_same: f64,
    /// Edges with both endpoint values non-null (the measurement basis).
    pub measured_edges: u64,
}

impl HomophilyScore {
    /// The assortativity coefficient
    /// `(observed − expected) / (1 − expected)` — 0 for random mixing,
    /// 1 for perfect homophily, negative for heterophily. (Newman's
    /// discrete assortativity, the statistic \[27\] reports per attribute.)
    pub fn assortativity(&self) -> f64 {
        if self.expected_same >= 1.0 {
            0.0
        } else {
            (self.observed_same - self.expected_same) / (1.0 - self.expected_same)
        }
    }

    /// Simple lift of same-value connection over chance.
    pub fn lift(&self) -> f64 {
        if self.expected_same == 0.0 {
            0.0
        } else {
            self.observed_same / self.expected_same
        }
    }
}

/// Measure [`HomophilyScore`] for every node attribute in one edge pass.
pub fn homophily_scores(graph: &SocialGraph) -> Vec<HomophilyScore> {
    let schema = graph.schema();
    let na = schema.node_attr_count();
    let mut same = vec![0u64; na];
    let mut measured = vec![0u64; na];
    // Endpoint marginals per attribute value.
    let mut src_counts: Vec<Vec<u64>> = schema
        .node_attr_ids()
        .map(|a| vec![0u64; schema.node_attr(a).bucket_count()])
        .collect();
    let mut dst_counts = src_counts.clone();

    for e in graph.edge_ids() {
        for a in schema.node_attr_ids() {
            let i = a.index();
            let sv = graph.src_attr(e, a);
            let dv = graph.dst_attr(e, a);
            if sv == NULL || dv == NULL {
                continue;
            }
            measured[i] += 1;
            if sv == dv {
                same[i] += 1;
            }
            src_counts[i][sv as usize] += 1;
            dst_counts[i][dv as usize] += 1;
        }
    }

    schema
        .node_attr_ids()
        .map(|a| {
            let i = a.index();
            let m = measured[i] as f64;
            let expected = if measured[i] == 0 {
                0.0
            } else {
                src_counts[i]
                    .iter()
                    .zip(&dst_counts[i])
                    .skip(1) // skip null
                    .map(|(&s, &d)| (s as f64 / m) * (d as f64 / m))
                    .sum()
            };
            HomophilyScore {
                attr: a,
                observed_same: if measured[i] == 0 {
                    0.0
                } else {
                    same[i] as f64 / m
                },
                expected_same: expected,
                measured_edges: measured[i],
            }
        })
        .collect()
}

/// Suggest homophily flags: attributes whose assortativity exceeds
/// `threshold` (0.1 is a reasonable default; \[27\] reports values in the
/// 0.02–0.5 range across Facebook attributes).
pub fn suggest_homophily_attrs(graph: &SocialGraph, threshold: f64) -> Vec<NodeAttrId> {
    homophily_scores(graph)
        .into_iter()
        .filter(|s| s.measured_edges > 0 && s.assortativity() > threshold)
        .map(|s| s.attr)
        .collect()
}

/// Marginal distribution of one node attribute over nodes:
/// `counts[v]` = number of nodes with value `v` (index 0 = null).
pub fn node_marginal(graph: &SocialGraph, attr: NodeAttrId) -> Vec<u64> {
    let mut counts = vec![0u64; graph.schema().node_attr(attr).bucket_count()];
    for v in graph.node_ids() {
        counts[graph.node_attr(v, attr) as usize] += 1;
    }
    counts
}

/// Marginal distribution of one node attribute over *edge destinations* —
/// the `supp(r)` base rates that §VII's lift metric corrects for.
pub fn dst_marginal(graph: &SocialGraph, attr: NodeAttrId) -> Vec<u64> {
    let mut counts = vec![0u64; graph.schema().node_attr(attr).bucket_count()];
    for e in graph.edge_ids() {
        counts[graph.dst_attr(e, attr) as usize] += 1;
    }
    counts
}

/// Summary of a degree sequence. All-zero for an empty sequence (a
/// zero-node graph is a legal audit input, not a panic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Smallest degree (0 when the sequence is empty).
    pub min: u32,
    /// Upper median degree.
    pub median: u32,
    /// Mean degree.
    pub mean: f64,
    /// Largest degree.
    pub max: u32,
}

/// Degree summary of the given degree sequence. An empty sequence —
/// e.g. the out-degrees of a zero-node graph — yields the zeroed
/// [`DegreeStats`] rather than panicking on the missing extrema.
pub fn degree_summary(mut degrees: Vec<u32>) -> DegreeStats {
    if degrees.is_empty() {
        return DegreeStats::default();
    }
    degrees.sort_unstable();
    DegreeStats {
        min: degrees[0],
        median: degrees[degrees.len() / 2],
        mean: degrees.iter().map(|&d| d as f64).sum::<f64>() / degrees.len() as f64,
        max: degrees[degrees.len() - 1],
    }
}

/// Render a one-screen audit of the network: sizes, degrees, per-attribute
/// marginals (top values) and homophily scores.
pub fn audit_report(graph: &SocialGraph) -> String {
    let schema = graph.schema();
    let mut out = String::new();
    out.push_str(&format!(
        "nodes: {}   edges: {}\n",
        graph.node_count(),
        graph.edge_count()
    ));
    let deg = degree_summary(graph.out_degrees());
    out.push_str(&format!(
        "out-degree: min {}, median {}, mean {:.2}, max {}\n",
        deg.min, deg.median, deg.mean, deg.max
    ));
    out.push_str("attribute            assortativity  same-edge%  expected%  verdict\n");
    for score in homophily_scores(graph) {
        let def = schema.node_attr(score.attr);
        let verdict = if score.assortativity() > 0.1 {
            "homophily"
        } else {
            "non-homophily"
        };
        out.push_str(&format!(
            "{:<20} {:>12.3}  {:>9.1}%  {:>8.1}%  {}{}\n",
            def.name(),
            score.assortativity(),
            score.observed_same * 100.0,
            score.expected_same * 100.0,
            verdict,
            if def.is_homophily() != (score.assortativity() > 0.1) {
                "  (differs from schema flag)"
            } else {
                ""
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, SchemaBuilder};

    /// A: perfectly homophilous; B: anti-correlated; C: random-ish.
    fn graph() -> SocialGraph {
        let schema = SchemaBuilder::new()
            .node_attr("A", 2, true)
            .node_attr("B", 2, false)
            .node_attr("C", 2, false)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        // Nodes: (A, B, C)
        let rows = [[1, 1, 1], [1, 2, 2], [2, 1, 1], [2, 2, 2]];
        for r in rows {
            b.add_node(&r).unwrap();
        }
        // Edges: same A, opposite B.
        b.add_edge(0, 1, &[]).unwrap();
        b.add_edge(1, 0, &[]).unwrap();
        b.add_edge(2, 3, &[]).unwrap();
        b.add_edge(3, 2, &[]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn perfect_homophily_scores_one() {
        let g = graph();
        let scores = homophily_scores(&g);
        let a = &scores[0];
        assert_eq!(a.observed_same, 1.0);
        assert!(a.expected_same < 1.0);
        assert!((a.assortativity() - 1.0).abs() < 1e-12);
        assert_eq!(a.measured_edges, 4);
    }

    #[test]
    fn heterophily_scores_negative() {
        let g = graph();
        let b = &homophily_scores(&g)[1];
        assert_eq!(b.observed_same, 0.0);
        assert!(b.assortativity() < 0.0, "anti-correlated B");
    }

    #[test]
    fn suggestion_picks_only_homophilous() {
        let g = graph();
        let suggested = suggest_homophily_attrs(&g, 0.1);
        assert_eq!(suggested, vec![NodeAttrId(0)]);
    }

    #[test]
    fn null_endpoints_excluded() {
        let schema = SchemaBuilder::new()
            .node_attr("A", 2, true)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let x = b.add_node(&[1]).unwrap();
        let y = b.add_node(&[0]).unwrap(); // null
        let z = b.add_node(&[1]).unwrap();
        b.add_edge(x, y, &[]).unwrap();
        b.add_edge(x, z, &[]).unwrap();
        let g = b.build().unwrap();
        let s = &homophily_scores(&g)[0];
        assert_eq!(s.measured_edges, 1, "null-endpoint edge excluded");
        assert_eq!(s.observed_same, 1.0);
    }

    #[test]
    fn marginals_count_correctly() {
        let g = graph();
        assert_eq!(node_marginal(&g, NodeAttrId(0)), vec![0, 2, 2]);
        assert_eq!(dst_marginal(&g, NodeAttrId(1)), vec![0, 2, 2]);
    }

    #[test]
    fn degree_summary_basics() {
        let d = degree_summary(vec![3, 1, 2, 10]);
        assert_eq!((d.min, d.median, d.max), (1, 3, 10));
        assert!((d.mean - 4.0).abs() < 1e-12);
    }

    #[test]
    fn degree_summary_empty_is_zeroed_not_a_panic() {
        // Regression: the empty sequence (zero-node graph) must yield
        // the zeroed summary, never reach for the missing extrema.
        assert_eq!(degree_summary(vec![]), DegreeStats::default());
        let z = degree_summary(Vec::new());
        assert_eq!((z.min, z.median, z.max), (0, 0, 0));
        assert_eq!(z.mean, 0.0);
    }

    #[test]
    fn audit_report_of_zero_node_graph() {
        let schema = SchemaBuilder::new()
            .node_attr("A", 2, true)
            .build()
            .unwrap();
        let g = GraphBuilder::new(schema).build().unwrap();
        let report = audit_report(&g);
        assert!(report.contains("nodes: 0   edges: 0"));
        assert!(report.contains("out-degree: min 0, median 0, mean 0.00, max 0"));
    }

    #[test]
    fn audit_mentions_disagreement_with_schema() {
        // B is flagged non-homophily and measures heterophilous: agree.
        // A is flagged homophily and measures homophilous: agree.
        let g = graph();
        let report = audit_report(&g);
        assert!(report.contains("homophily"));
        assert!(!report.contains("differs from schema flag"));
    }

    #[test]
    fn empty_graph_is_quiet() {
        let schema = SchemaBuilder::new()
            .node_attr("A", 2, true)
            .build()
            .unwrap();
        let g = GraphBuilder::new(schema).build().unwrap();
        let s = &homophily_scores(&g)[0];
        assert_eq!(s.measured_edges, 0);
        assert_eq!(s.assortativity(), 0.0);
        assert!(suggest_homophily_attrs(&g, 0.1).is_empty());
    }
}
