//! Cooperative cancellation for long-running mines.
//!
//! A [`CancelToken`] is a shared once-set flag: any holder may
//! [`cancel`](CancelToken::cancel) it, and cooperative loops probe
//! [`is_cancelled`](CancelToken::is_cancelled) at recursion-node and
//! shard-load granularity, drain their partial counters, and unwind
//! with a typed error instead of leaking workers. The protocol — flag
//! checked at every loop top, drain-exactly-once on every exit path,
//! at most one stale task start per worker after the flag is set — is
//! proved in `grm_analyze::model::cancel`.
//!
//! The default token is *inert*: it holds no allocation and every probe
//! is a branch on `None`, so un-cancellable mines pay nothing.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

struct Inner {
    /// The once-set cancel flag (never cleared).
    cancelled: AtomicBool,
    /// Probes remaining before the token trips itself; negative when
    /// self-tripping is disabled. A deterministic test aid: see
    /// [`CancelToken::tripping_after`].
    trip_after: AtomicI64,
    /// The parent this token is linked to (see
    /// [`CancelToken::child`]): a probe that finds the own flag clear
    /// walks up the chain, so tripping any ancestor cancels the whole
    /// subtree while a child's own flag never propagates upward.
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn new(trip_after: i64, parent: Option<Arc<Inner>>) -> Arc<Inner> {
        Arc::new(Inner {
            cancelled: AtomicBool::new(false),
            trip_after: AtomicI64::new(trip_after),
            parent,
        })
    }
}

/// A shared, cloneable cancellation flag. Clones observe the same flag;
/// the [`Default`] token is inert (never cancels, costs one branch).
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A real token: starts clear, trips when any clone calls
    /// [`cancel`](Self::cancel).
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Inner::new(-1, None)),
        }
    }

    /// A real token that additionally trips itself on the `checks`-th
    /// [`is_cancelled`](Self::is_cancelled) probe (counted across all
    /// clones). Deterministic by construction — the trip point is a
    /// probe count, not a clock — so tests can cancel "at recursion
    /// depth N" reproducibly.
    pub fn tripping_after(checks: u64) -> Self {
        CancelToken {
            inner: Some(Inner::new(checks.min(i64::MAX as u64) as i64, None)),
        }
    }

    /// A *linked* child token: tripping the parent (or any ancestor)
    /// cancels the child, but cancelling the child never touches the
    /// parent. This is the daemon's request fan-out shape — daemon
    /// shutdown token → per-connection token → per-request token → the
    /// engine's deadline/panic trips — where a panicking worker must
    /// cancel its own request's siblings without killing the
    /// connection or the daemon.
    ///
    /// A child of the inert token is a fresh independent real token
    /// (there is no parent flag to link to). Parent chains are walked
    /// on probe with plain `Acquire` loads; an ancestor's
    /// [`tripping_after`](Self::tripping_after) counter is *not*
    /// consumed by child probes — the scripted trip stays deterministic
    /// in the clone set it was armed on.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Some(Inner::new(-1, self.inner.clone())),
        }
    }

    /// Is this the inert default token (no allocation, never cancels)?
    pub fn is_inert(&self) -> bool {
        self.inner.is_none()
    }

    /// This token if it is real, otherwise a fresh real token. Engines
    /// call this so a deadline or a panicking worker always has a flag
    /// to trip for its siblings, even when the caller passed the inert
    /// default.
    pub fn materialize(&self) -> CancelToken {
        if self.is_inert() {
            CancelToken::new()
        } else {
            self.clone()
        }
    }

    /// Trip the flag. Idempotent; a no-op on the inert token.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            // ordering: Release pairs with the Acquire load in
            // `is_cancelled`: everything the cancelling thread did
            // before tripping the flag (e.g. storing a panic message
            // for `MinerError::WorkerPanicked`) happens-before any
            // observer's drain-and-exit. The once-set flag semantics
            // are what `grm_analyze::model::cancel` assumes of the
            // canceller step.
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// Probe the flag. Cheap enough for recursion-node granularity:
    /// inert tokens take one branch, real tokens one `Acquire` load
    /// (the self-trip counter costs an RMW only on tokens armed by
    /// [`tripping_after`](Self::tripping_after)).
    pub fn is_cancelled(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        // ordering: Acquire pairs with the Release store in `cancel`
        // (see there); observing `true` is the model's "cancelled →
        // drain once, exit" loop-top step.
        if inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        // Walk the ancestor chain of a linked token (see `child`): a
        // tripped ancestor cancels the whole subtree.
        let mut up = inner.parent.as_ref();
        while let Some(ancestor) = up {
            // ordering: Acquire pairs with the Release store in the
            // ancestor's `cancel`, exactly as the own-flag load above —
            // whatever the cancelling thread published before tripping
            // the ancestor happens-before this probe's drain-and-exit.
            if ancestor.cancelled.load(Ordering::Acquire) {
                // Cache the observation in the own flag so later probes
                // stop at one load. Idempotent once-set semantics make
                // this safe: a child of a cancelled ancestor is
                // cancelled forever.
                // ordering: Release as in `cancel` (the flag's only
                // writer ordering); pairs with the Acquire load above.
                inner.cancelled.store(true, Ordering::Release);
                return true;
            }
            up = ancestor.parent.as_ref();
        }
        // ordering: Acquire load to skip the RMW entirely on tokens
        // without a scripted trip; the counter is a test aid and
        // publishes nothing.
        if inner.trip_after.load(Ordering::Acquire) < 0 {
            return false;
        }
        // ordering: AcqRel makes the probe counter a single total
        // order across threads, so exactly one probe (the `checks`-th)
        // observes the 1 → 0 transition and trips the flag — the
        // deterministic-trip guarantee documented on `tripping_after`.
        if inner.trip_after.fetch_sub(1, Ordering::AcqRel) <= 1 {
            self.cancel();
            return true;
        }
        false
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "CancelToken(inert)"),
            Some(inner) => write!(
                f,
                "CancelToken(cancelled: {})",
                // ordering: Acquire as in `is_cancelled`; Debug output
                // must not report a flag staler than the caller's own
                // probes.
                inner.cancelled.load(Ordering::Acquire)
            ),
        }
    }
}

/// Two tokens are equal when they observe the same flag: both inert, or
/// both handles to the same shared state. (Needed so `MinerConfig`
/// keeps its derived `PartialEq`.)
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_token_never_cancels() {
        let t = CancelToken::default();
        assert!(t.is_inert());
        t.cancel();
        assert!(!t.is_cancelled());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
        assert!(t.is_cancelled());
    }

    #[test]
    fn tripping_after_trips_on_the_nth_probe() {
        let t = CancelToken::tripping_after(3);
        assert!(!t.is_cancelled());
        assert!(!t.is_cancelled());
        assert!(t.is_cancelled());
        assert!(t.is_cancelled());

        let now = CancelToken::tripping_after(0);
        assert!(now.is_cancelled());
    }

    #[test]
    fn materialize_preserves_real_tokens_and_replaces_inert_ones() {
        let real = CancelToken::new();
        assert_eq!(real.materialize(), real);
        let inert = CancelToken::default();
        let m = inert.materialize();
        assert!(!m.is_inert());
        assert_ne!(m, inert);
    }

    #[test]
    fn parent_cancel_propagates_to_children() {
        let parent = CancelToken::new();
        let child = parent.child();
        let grandchild = child.child();
        assert!(!child.is_cancelled());
        assert!(!grandchild.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
        assert!(grandchild.is_cancelled());
        // The observation is sticky (cached in the child's own flag).
        assert!(child.is_cancelled());
    }

    #[test]
    fn child_cancel_does_not_touch_the_parent_or_siblings() {
        let parent = CancelToken::new();
        let a = parent.child();
        let b = parent.child();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!parent.is_cancelled());
        assert!(!b.is_cancelled());
    }

    #[test]
    fn mid_chain_cancel_splits_the_tree() {
        let root = CancelToken::new();
        let conn = root.child();
        let req = conn.child();
        conn.cancel();
        assert!(req.is_cancelled());
        assert!(!root.is_cancelled());
    }

    #[test]
    fn child_of_inert_is_a_fresh_real_token() {
        let inert = CancelToken::default();
        let child = inert.child();
        assert!(!child.is_inert());
        assert!(!child.is_cancelled());
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!inert.is_cancelled());
    }

    #[test]
    fn child_probes_do_not_consume_a_parents_scripted_trip() {
        let parent = CancelToken::tripping_after(2);
        let child = parent.child();
        // Child probes walk the parent's flag, not its counter.
        assert!(!child.is_cancelled());
        assert!(!child.is_cancelled());
        assert!(!child.is_cancelled());
        // The parent's own probes still trip on schedule…
        assert!(!parent.is_cancelled());
        assert!(parent.is_cancelled());
        // …and the trip now propagates down.
        assert!(child.is_cancelled());
    }

    #[test]
    fn children_are_distinct_tokens() {
        let parent = CancelToken::new();
        let child = parent.child();
        assert_ne!(parent, child);
        assert_ne!(parent.child(), parent.child());
        assert_eq!(child, child.clone());
    }

    #[test]
    fn equality_is_identity_of_the_shared_flag() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
        assert_eq!(CancelToken::default(), CancelToken::default());
    }
}
