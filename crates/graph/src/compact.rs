//! The compact data model of §IV-A: **LArray**, **EArray**, **RArray**.
//!
//! * `LArray` — one record per node that can occur on the LHS of a GR
//!   (out-degree > 0), with its attribute values plus `Out` (out-degree) and
//!   `Ind` (starting position of its outgoing edges in `EArray`).
//! * `EArray` — one record per edge, grouped by source record, carrying the
//!   edge-attribute values plus `Ptr`, the index of the destination's record
//!   in `RArray`.
//! * `RArray` — one record per node that can occur on the RHS (in-degree
//!   > 0) with its attribute values.
//!
//! Node attributes are stored once per node, so the model occupies
//! `|V|·(#AttrV + 2) + |E|·(#AttrE + 1) + |V|·#AttrV` cells instead of the
//! single table's `|E|·(2·#AttrV + #AttrE)` — eliminating the
//! `|E| × 2 × #AttrV` bottleneck term (§IV-A). [`CompactModel::cells`] and
//! [`crate::SingleTable::cells`] make the comparison measurable.
//!
//! Mining operates on **EArray positions**: a pattern's edge set is a slice
//! of positions, partitioned with counting sort on LHS / edge / RHS
//! dimensions via the key functions below.
//!
//! ### Columnar key caches
//!
//! The key functions are the hottest loads of the mining recursion — every
//! counting-sort pass calls one of them once per position — and resolving
//! them through the structural columns costs two dependent indirections
//! (`src_row`/`ptr` into the graph's row-major attribute table). The model
//! therefore also materializes **columnar caches**: one flat
//! `Vec<AttrValue>` per (side, attribute) pair, indexed directly by EArray
//! position, so `l_key`/`w_key`/`r_key` are a single indexed load. This is
//! a deliberate time/space trade *on top of* the §IV-A model: the caches
//! occupy `|E|·(2·#AttrV + #AttrE)` u16 cells (the single-table shape), but
//! the §IV-A win — building them in O(|E|) from the once-per-node storage
//! instead of joining per edge — is unchanged, and [`CompactModel::cells`]
//! keeps reporting the paper's formula for the structural model.

use crate::error::{GraphError, Result};
use crate::graph::SocialGraph;
use crate::value::{AttrValue, EdgeAttrId, EdgeId, NodeAttrId, NodeId};

/// The LArray/EArray/RArray view over a [`SocialGraph`].
///
/// Borrow-based: attribute cells live in the graph; the model adds the
/// structural columns (`Out`, `Ind`, `Ptr`, row maps) plus the columnar
/// per-position key caches (module docs). Cell accounting in
/// [`CompactModel::cells`] reports the full §IV-A formula, i.e. what a
/// standalone materialization of the structural model would occupy.
#[derive(Debug, Clone)]
pub struct CompactModel<'g> {
    graph: &'g SocialGraph,
    /// Node ids with out-degree > 0, in node-id order (LArray rows).
    lrows: Vec<NodeId>,
    /// `Out` column: out-degree per LArray row.
    out: Vec<u32>,
    /// `Ind` column: first EArray position per LArray row.
    ind: Vec<u32>,
    /// Per EArray position: the original edge id (edge-attribute lookup).
    eid: Vec<EdgeId>,
    /// `Ptr` column: per EArray position, the destination's RArray row.
    ptr: Vec<u32>,
    /// Node ids with in-degree > 0, in node-id order (RArray rows).
    rrows: Vec<NodeId>,
    /// Per node attribute: source-side values by EArray position.
    l_cols: Vec<Vec<AttrValue>>,
    /// Per edge attribute: values by EArray position.
    w_cols: Vec<Vec<AttrValue>>,
    /// Per node attribute: destination-side values by EArray position.
    r_cols: Vec<Vec<AttrValue>>,
}

impl<'g> CompactModel<'g> {
    /// Maximum number of edges the model can index: EArray positions are
    /// `u32`, so a graph with more than `u32::MAX` edges cannot be
    /// addressed (positions beyond the limit would silently wrap).
    pub const MAX_EDGES: usize = u32::MAX as usize;

    /// Build the model, panicking on graphs beyond [`Self::MAX_EDGES`]
    /// (see [`Self::try_build`] for the fallible form): O(|V| + |E|), one
    /// stable counting pass over edges plus one pass per cached column.
    pub fn build(graph: &'g SocialGraph) -> Self {
        Self::try_build(graph).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build the model, rejecting graphs with more than
    /// [`Self::MAX_EDGES`] edges with [`GraphError::TooManyEdges`] instead
    /// of silently truncating position indices.
    pub fn try_build(graph: &'g SocialGraph) -> Result<Self> {
        check_edge_capacity(graph.edge_count(), Self::MAX_EDGES)?;
        let n = graph.node_count();
        let m = graph.edge_count();

        let out_deg = graph.out_degrees();
        let in_deg = graph.in_degrees();

        // LArray rows and the inverse map node -> lrow.
        let mut lrows = Vec::new();
        let mut lrow_of = vec![u32::MAX; n];
        for v in 0..n {
            if out_deg[v] > 0 {
                lrow_of[v] = lrows.len() as u32; // cast: ≤ n, and node ids fit u32 by construction
                lrows.push(v as NodeId); // cast: v < n = node_count, ids fit u32
            }
        }
        // RArray rows and the inverse map node -> rrow.
        let mut rrows = Vec::new();
        let mut rrow_of = vec![u32::MAX; n];
        for v in 0..n {
            if in_deg[v] > 0 {
                rrow_of[v] = rrows.len() as u32; // cast: ≤ n, and node ids fit u32 by construction
                rrows.push(v as NodeId); // cast: v < n = node_count, ids fit u32
            }
        }

        // Out / Ind columns.
        let mut out = Vec::with_capacity(lrows.len());
        let mut ind = Vec::with_capacity(lrows.len());
        let mut acc = 0u32;
        for &v in &lrows {
            out.push(out_deg[v as usize]);
            ind.push(acc);
            acc += out_deg[v as usize];
        }

        // Scatter edges into EArray grouped by source row (stable).
        // `src_row` is only needed to seed the columnar caches below; the
        // cached columns replace it as the runtime lookup path.
        let mut cursor = ind.clone();
        let mut src_row = vec![0u32; m];
        let mut eid = vec![0 as EdgeId; m];
        let mut ptr = vec![0u32; m];
        // cast: m = edge_count() ≤ MAX_EDGES, checked above
        for e in 0..m as u32 {
            let s = lrow_of[graph.src(e) as usize];
            let pos = cursor[s as usize] as usize;
            cursor[s as usize] += 1;
            src_row[pos] = s;
            eid[pos] = e;
            ptr[pos] = rrow_of[graph.dst(e) as usize];
        }

        // Columnar key caches: resolve the src_row/Ptr indirections once so
        // every later key lookup is a single indexed load (module docs).
        let na = graph.schema().node_attr_count();
        let ea = graph.schema().edge_attr_count();
        let mut l_cols = vec![vec![0 as AttrValue; m]; na];
        let mut w_cols = vec![vec![0 as AttrValue; m]; ea];
        let mut r_cols = vec![vec![0 as AttrValue; m]; na];
        for p in 0..m {
            let src = graph.node_row(lrows[src_row[p] as usize]);
            let dst = graph.node_row(rrows[ptr[p] as usize]);
            for a in 0..na {
                l_cols[a][p] = src[a];
                r_cols[a][p] = dst[a];
            }
            let edge = graph.edge_row(eid[p]);
            for a in 0..ea {
                w_cols[a][p] = edge[a];
            }
        }

        Ok(CompactModel {
            graph,
            lrows,
            out,
            ind,
            eid,
            ptr,
            rrows,
            l_cols,
            w_cols,
            r_cols,
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g SocialGraph {
        self.graph
    }

    /// Number of LArray records (nodes with out-degree > 0).
    pub fn lrow_count(&self) -> usize {
        self.lrows.len()
    }

    /// Number of RArray records (nodes with in-degree > 0).
    pub fn rrow_count(&self) -> usize {
        self.rrows.len()
    }

    /// Number of EArray records (= `|E|`).
    pub fn edge_count(&self) -> usize {
        self.eid.len()
    }

    /// Node id of LArray row `r`.
    pub fn lrow_node(&self, r: u32) -> NodeId {
        self.lrows[r as usize]
    }

    /// Node id of RArray row `r`.
    pub fn rrow_node(&self, r: u32) -> NodeId {
        self.rrows[r as usize]
    }

    /// `Out` of LArray row `r`.
    pub fn out(&self, r: u32) -> u32 {
        self.out[r as usize]
    }

    /// `Ind` of LArray row `r`.
    pub fn ind(&self, r: u32) -> u32 {
        self.ind[r as usize]
    }

    /// Original edge id of EArray position `p`.
    #[inline]
    pub fn edge_id(&self, p: u32) -> EdgeId {
        self.eid[p as usize]
    }

    /// `Ptr` (RArray row of the destination) of EArray position `p`.
    #[inline]
    pub fn ptr(&self, p: u32) -> u32 {
        self.ptr[p as usize]
    }

    /// LHS key function: node attribute `a` of the source of position `p`
    /// (one load from the columnar cache).
    #[inline]
    pub fn l_key(&self, p: u32, a: NodeAttrId) -> AttrValue {
        self.l_cols[a.index()][p as usize]
    }

    /// Edge key function: edge attribute `a` of position `p` (one load
    /// from the columnar cache).
    #[inline]
    pub fn w_key(&self, p: u32, a: EdgeAttrId) -> AttrValue {
        self.w_cols[a.index()][p as usize]
    }

    /// RHS key function: node attribute `a` of the destination of `p` (one
    /// load from the columnar cache; the `Ptr` indirection into RArray is
    /// resolved at build time).
    #[inline]
    pub fn r_key(&self, p: u32, a: NodeAttrId) -> AttrValue {
        self.r_cols[a.index()][p as usize]
    }

    /// The full source-side column of node attribute `a`, indexed by
    /// EArray position (whole-column scans: marginal tables, group-bys).
    #[inline]
    pub fn l_col(&self, a: NodeAttrId) -> &[AttrValue] {
        &self.l_cols[a.index()]
    }

    /// The full edge-attribute column of `a`, indexed by EArray position.
    #[inline]
    pub fn w_col(&self, a: EdgeAttrId) -> &[AttrValue] {
        &self.w_cols[a.index()]
    }

    /// The full destination-side column of node attribute `a`, indexed by
    /// EArray position.
    #[inline]
    pub fn r_col(&self, a: NodeAttrId) -> &[AttrValue] {
        &self.r_cols[a.index()]
    }

    /// All EArray positions, the root edge set of the mining recursion.
    pub fn all_positions(&self) -> Vec<u32> {
        // cast: edge_count ≤ MAX_EDGES = u32::MAX, checked in try_build
        (0..self.edge_count() as u32).collect()
    }

    /// Cell count of the compact model per the §IV-A formula, using the
    /// actual LArray/RArray row counts (the paper notes zero-out-degree /
    /// zero-in-degree nodes are dropped):
    /// `|L|·(#AttrV+2) + |E|·(#AttrE+1) + |R|·#AttrV`.
    pub fn cells(&self) -> usize {
        let na = self.graph.schema().node_attr_count();
        let ea = self.graph.schema().edge_attr_count();
        self.lrows.len() * (na + 2) + self.eid.len() * (ea + 1) + self.rrows.len() * na
    }

    /// Cell count of the columnar key caches (module docs): one value per
    /// (side, attribute, position), i.e. `|E|·(2·#AttrV + #AttrE)` — the
    /// single-table shape, spent deliberately for single-load keys on top
    /// of the [`Self::cells`] structural model.
    pub fn cache_cells(&self) -> usize {
        let na = self.graph.schema().node_attr_count();
        let ea = self.graph.schema().edge_attr_count();
        self.eid.len() * (2 * na + ea)
    }

    /// Cell count using the paper's headline formula with the full `|V|`
    /// on both sides: `|V|·(#AttrV+2) + |E|·(#AttrE+1) + |V|·#AttrV`.
    pub fn cells_paper_formula(&self) -> usize {
        let na = self.graph.schema().node_attr_count();
        let ea = self.graph.schema().edge_attr_count();
        let v = self.graph.node_count();
        v * (na + 2) + self.eid.len() * (ea + 1) + v * na
    }
}

/// Reject edge counts beyond `max` — positions are `u32`, and an
/// oversized edge set would silently truncate them. The cap is a
/// parameter because sharded mining applies the check **per shard**
/// (each shard builds its own [`CompactModel`], so the u32 limit binds
/// the shard, not the whole graph; see [`crate::shard::ShardStore`]).
pub fn check_edge_capacity(edges: usize, max: usize) -> Result<()> {
    if edges > max {
        return Err(GraphError::TooManyEdges { edges, max });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, SchemaBuilder};

    /// src->dst: 0->1, 0->2, 1->2, 3->0 (node 2 has no out-edges, node 3 no
    /// in-edges).
    fn sample() -> SocialGraph {
        let schema = SchemaBuilder::new()
            .node_attr("A", 3, true)
            .node_attr("B", 2, false)
            .edge_attr("W", 2)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        for row in [[1, 1], [2, 2], [3, 1], [1, 2]] {
            b.add_node(&row).unwrap();
        }
        b.add_edge(0, 1, &[1]).unwrap();
        b.add_edge(0, 2, &[2]).unwrap();
        b.add_edge(1, 2, &[1]).unwrap();
        b.add_edge(3, 0, &[2]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn rows_exclude_zero_degree_nodes() {
        let g = sample();
        let cm = CompactModel::build(&g);
        assert_eq!(cm.lrow_count(), 3, "nodes 0,1,3 have out-edges");
        assert_eq!(cm.rrow_count(), 3, "nodes 0,1,2 have in-edges");
        assert_eq!(cm.lrow_node(0), 0);
        assert_eq!(cm.lrow_node(1), 1);
        assert_eq!(cm.lrow_node(2), 3);
        assert_eq!(cm.rrow_node(2), 2);
    }

    #[test]
    fn out_ind_columns() {
        let g = sample();
        let cm = CompactModel::build(&g);
        assert_eq!(cm.out(0), 2);
        assert_eq!(cm.out(1), 1);
        assert_eq!(cm.out(2), 1);
        assert_eq!(cm.ind(0), 0);
        assert_eq!(cm.ind(1), 2);
        assert_eq!(cm.ind(2), 3);
    }

    #[test]
    fn earray_grouped_by_source_with_correct_ptrs() {
        let g = sample();
        let cm = CompactModel::build(&g);
        // Positions 0..2 are node 0's edges in insertion order.
        assert_eq!(cm.edge_id(0), 0);
        assert_eq!(cm.edge_id(1), 1);
        assert_eq!(cm.edge_id(2), 2);
        assert_eq!(cm.edge_id(3), 3);
        // Ptr points at RArray rows: dsts 1,2,2,0 -> rrows 1,2,2,0.
        assert_eq!(cm.rrow_node(cm.ptr(0)), 1);
        assert_eq!(cm.rrow_node(cm.ptr(1)), 2);
        assert_eq!(cm.rrow_node(cm.ptr(2)), 2);
        assert_eq!(cm.rrow_node(cm.ptr(3)), 0);
    }

    #[test]
    fn key_functions() {
        let g = sample();
        let cm = CompactModel::build(&g);
        let a = NodeAttrId(0);
        let b = NodeAttrId(1);
        let w = EdgeAttrId(0);
        // Position 3 is edge 3->0.
        assert_eq!(cm.l_key(3, a), 1, "node 3 has A=1");
        assert_eq!(cm.l_key(3, b), 2);
        assert_eq!(cm.r_key(3, a), 1, "node 0 has A=1");
        assert_eq!(cm.w_key(3, w), 2);
        // Position 1 is edge 0->2.
        assert_eq!(cm.r_key(1, a), 3);
    }

    #[test]
    fn cell_accounting_beats_single_table() {
        let g = sample();
        let cm = CompactModel::build(&g);
        // |L|=3, |R|=3, |E|=4, na=2, ea=1.
        assert_eq!(cm.cells(), 3 * 4 + 4 * 2 + 3 * 2);
        assert_eq!(cm.cells_paper_formula(), 4 * 4 + 4 * 2 + 4 * 2);
        assert_eq!(cm.cache_cells(), 4 * (2 * 2 + 1));
        let st = crate::SingleTable::build(&g);
        assert_eq!(st.cells(), 4 * (2 * 2 + 1));
    }

    #[test]
    fn all_positions_covers_edges() {
        let g = sample();
        let cm = CompactModel::build(&g);
        assert_eq!(cm.all_positions(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn columnar_caches_agree_with_structural_lookups() {
        let g = sample();
        let cm = CompactModel::build(&g);
        for p in 0..cm.edge_count() as u32 {
            let e = cm.edge_id(p);
            for a in g.schema().node_attr_ids() {
                assert_eq!(cm.l_key(p, a), g.src_attr(e, a), "l_key p={p} {a}");
                assert_eq!(cm.r_key(p, a), g.dst_attr(e, a), "r_key p={p} {a}");
                assert_eq!(cm.l_col(a)[p as usize], cm.l_key(p, a));
                assert_eq!(cm.r_col(a)[p as usize], cm.r_key(p, a));
            }
            for a in g.schema().edge_attr_ids() {
                assert_eq!(cm.w_key(p, a), g.edge_attr(e, a), "w_key p={p} {a}");
                assert_eq!(cm.w_col(a)[p as usize], cm.w_key(p, a));
            }
        }
    }

    #[test]
    fn edge_capacity_guard() {
        assert!(check_edge_capacity(0, CompactModel::MAX_EDGES).is_ok());
        assert!(check_edge_capacity(CompactModel::MAX_EDGES, CompactModel::MAX_EDGES).is_ok());
        let err =
            check_edge_capacity(CompactModel::MAX_EDGES + 1, CompactModel::MAX_EDGES).unwrap_err();
        assert!(matches!(err, GraphError::TooManyEdges { .. }));
        assert!(err.to_string().contains("u32"));
        // The remedy for an over-cap edge set is sharding, and the
        // message says so.
        assert!(err.to_string().contains("--shards"));
        // The check is per-shard: a lowered cap rejects a small edge
        // set the same way the u32 cap rejects a huge one.
        let err = check_edge_capacity(5, 4).unwrap_err();
        assert!(matches!(err, GraphError::TooManyEdges { edges: 5, max: 4 }));
        // The fallible entry point accepts every constructible graph.
        let g = sample();
        assert!(CompactModel::try_build(&g).is_ok());
    }
}
