//! Deterministic fault injection, compiled in under the `fault-inject`
//! cargo feature and zero-cost otherwise.
//!
//! A *failpoint* is a named site in a failure-prone path (shard spill
//! writes, shard loads, pool eviction, worker bodies). Tests [`arm`] a
//! site with a hit index and a [`FaultKind`]; the site's [`hit`] probe
//! returns the fault exactly once, on exactly that hit — driven by the
//! test's seeded schedule, never by a clock — so every injected short
//! read, corrupted section, budget shrink, and worker panic is
//! reproducible. Without the feature every probe compiles to `None`
//! and the registry does not exist.
//!
//! The registry is process-global: tests that arm failpoints must
//! serialize themselves (the injection suite shares one mutex) and
//! [`disarm_all`] when done.

/// What an armed failpoint injects at its site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The site fails with a synthetic I/O error.
    IoError,
    /// The site observes a truncated read (surfaces as
    /// [`crate::ShardIoError::ShortRead`]).
    ShortRead,
    /// The site panics (exercises worker containment).
    Panic,
    /// The site shrinks the pool's memory budget to the given byte
    /// count (exercises mid-mine budget pressure).
    ShrinkBudget(u64),
}

/// Known failpoint sites, for discoverability (the API takes plain
/// strings so call sites stay dependency-free).
pub const SITES: &[&str] = &[
    "spill.write",
    "shard.load",
    "pool.evict",
    "worker.body",
    "request.handle",
];

#[cfg(feature = "fault-inject")]
mod imp {
    use super::FaultKind;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    struct Plan {
        /// Fire on the hit with this 0-based index…
        after: u64,
        /// …and on the `times - 1` hits after it…
        times: u64,
        /// …injecting this fault.
        kind: FaultKind,
        hits: u64,
    }

    static PLANS: OnceLock<Mutex<HashMap<&'static str, Plan>>> = OnceLock::new();
    static FIRED: AtomicU64 = AtomicU64::new(0);

    fn plans() -> MutexGuard<'static, HashMap<&'static str, Plan>> {
        PLANS
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            // An injected panic can unwind through a thread that held
            // nothing here, but a poisoned registry must not cascade —
            // the map itself is always left consistent.
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Arm `site` to inject `kind` on its `after`-th hit (0 = next)
    /// and the `times - 1` hits after it (`times` > 1 exercises
    /// bounded-retry exhaustion).
    pub fn arm(site: &'static str, after: u64, times: u64, kind: FaultKind) {
        plans().insert(
            site,
            Plan {
                after,
                times,
                kind,
                hits: 0,
            },
        );
    }

    /// Clear every armed site (hit counters included).
    pub fn disarm_all() {
        plans().clear();
    }

    /// Total faults injected since process start.
    pub fn fired_total() -> u64 {
        // ordering: Acquire pairs with the AcqRel bump in `hit`; a
        // mine reading its faults_injected delta after joining its
        // workers must observe every fault those workers fired.
        FIRED.load(Ordering::Acquire)
    }

    /// Probe `site`: `Some(kind)` exactly when an armed plan fires.
    pub fn hit(site: &str) -> Option<FaultKind> {
        let mut plans = plans();
        let plan = plans.get_mut(site)?;
        let n = plan.hits;
        plan.hits += 1;
        if n >= plan.after && n < plan.after.saturating_add(plan.times) {
            // ordering: AcqRel so concurrent sites bump a single total
            // count and `fired_total` readers (see there) see it.
            FIRED.fetch_add(1, Ordering::AcqRel);
            Some(plan.kind)
        } else {
            None
        }
    }
}

#[cfg(not(feature = "fault-inject"))]
mod imp {
    use super::FaultKind;

    /// No-op without the `fault-inject` feature.
    #[inline(always)]
    pub fn arm(_site: &'static str, _after: u64, _times: u64, _kind: FaultKind) {}

    /// No-op without the `fault-inject` feature.
    #[inline(always)]
    pub fn disarm_all() {}

    /// Always zero without the `fault-inject` feature.
    #[inline(always)]
    pub fn fired_total() -> u64 {
        0
    }

    /// Always `None` without the `fault-inject` feature — the probe
    /// and its branch fold away entirely.
    #[inline(always)]
    pub fn hit(_site: &str) -> Option<FaultKind> {
        None
    }
}

pub use imp::{arm, disarm_all, fired_total, hit};

#[cfg(all(test, feature = "fault-inject"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// The registry is process-global; serialize the tests that use it.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn fires_exactly_on_the_scheduled_hits() {
        let _g = guard();
        disarm_all();
        let before = fired_total();
        arm("spill.write", 2, 1, FaultKind::IoError);
        assert_eq!(hit("spill.write"), None);
        assert_eq!(hit("spill.write"), None);
        assert_eq!(hit("spill.write"), Some(FaultKind::IoError));
        assert_eq!(hit("spill.write"), None);
        assert_eq!(fired_total() - before, 1);

        // times > 1: consecutive hits all fire (retry exhaustion).
        arm("spill.write", 0, 2, FaultKind::IoError);
        assert_eq!(hit("spill.write"), Some(FaultKind::IoError));
        assert_eq!(hit("spill.write"), Some(FaultKind::IoError));
        assert_eq!(hit("spill.write"), None);
        disarm_all();
    }

    #[test]
    fn unarmed_sites_do_not_fire() {
        let _g = guard();
        disarm_all();
        assert_eq!(hit("shard.load"), None);
    }
}
