//! # grm-graph — attributed social-network substrate
//!
//! The data substrate for mining group relationships beyond homophily
//! (Liang, Wang, Zhu; ICDE 2016): heterogeneous, multidimensional social
//! networks whose nodes and edges carry discrete attribute values (§III of
//! the paper), plus the storage machinery the GRMiner algorithm relies on:
//!
//! * [`Schema`] / [`AttrDef`] — attribute declarations with domain sizes,
//!   value dictionaries and per-node-attribute **homophily flags**;
//! * [`SocialGraph`] / [`GraphBuilder`] — validated attributed digraphs;
//! * [`CompactModel`] — the LArray/EArray/RArray compact data model of
//!   §IV-A (node attributes stored once, `Ptr`-linked edge records);
//! * [`SingleTable`] — the joined `|E| × (2·#AttrV + #AttrE)` table used by
//!   baseline BL1, kept around to measure the §IV-A size comparison;
//! * [`sort`] — the stable counting-sort partitioner of §V;
//! * [`stats`] — network audits and data-driven homophily detection (the
//!   \[27\]-style front-end that produces the homophily flags §III-B assumes);
//! * [`io`] — plain-text persistence; [`csv`] — import of node-table +
//!   edge-list dataset pairs (the shape of the SNAP Pokec dump);
//! * [`shard`] — sharded, memory-budgeted out-of-core edge storage that
//!   breaks the compact model's u32 edge cap: columnar per-shard spill
//!   files (checksummed, written via temp-and-rename) plus an LRU
//!   shard-residency pool;
//! * [`cancel`] — the cooperative [`CancelToken`] the mining engines
//!   observe at recursion-node and shard-load granularity;
//! * [`failpoint`] — deterministic fault injection behind the
//!   `fault-inject` feature (zero-cost otherwise).
//!
//! Mining itself lives in the `grm-core` crate; synthetic workloads in
//! `grm-datagen`.
//!
//! ### The `simd` feature
//!
//! The [`kernel`] batch primitives default to a portable SWAR backend on
//! stable Rust. Building with `--features simd` on a **nightly**
//! toolchain switches their lane arithmetic to `std::simd`; on stable
//! the feature no-ops back to SWAR (outputs are bit-identical either
//! way — see the [`kernel`] module docs).

#![warn(missing_docs)]
#![cfg_attr(all(feature = "simd", grm_nightly_simd), feature(portable_simd))]

mod builder;
pub mod cancel;
mod compact;
pub mod csv;
mod error;
pub mod failpoint;
mod graph;
pub mod io;
pub mod kernel;
mod schema;
pub mod shard;
mod single_table;
pub mod sort;
pub mod stats;
mod value;

pub use builder::GraphBuilder;
pub use cancel::CancelToken;
pub use compact::{check_edge_capacity, CompactModel};
pub use error::{GraphError, Result, ShardIoError};
pub use graph::SocialGraph;
pub use schema::{AttrDef, Schema, SchemaBuilder};
pub use single_table::SingleTable;
pub use value::{AttrValue, EdgeAttrId, EdgeId, NodeAttrId, NodeId, NULL};
