//! Attribute schemas with homophily annotations.
//!
//! The problem setting of the paper (§III-B) assumes that the analyst
//! specifies, per node attribute, whether it is a *homophily attribute*
//! (individuals sharing a value are more likely to connect — e.g. `EDU` on a
//! dating site) or a *non-homophily attribute* (e.g. `SEX`). This
//! specification drives the β computation (Eqn. 4), the trivial-GR test and
//! the dynamic tail ordering (Eqn. 8), so it lives in the schema next to the
//! domain declarations.

use crate::error::{GraphError, Result};
use crate::value::{AttrValue, EdgeAttrId, NodeAttrId, NULL};
use serde::{Deserialize, Serialize};

/// Declaration of one attribute: its name, domain size and (for node
/// attributes) whether it follows the homophily principle.
///
/// The domain is `{0, 1, …, domain_size}` where 0 is null; `domain_size`
/// is the largest non-null value (`|A|` in the paper's notation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrDef {
    name: String,
    domain_size: AttrValue,
    homophily: bool,
    /// Optional human-readable names for values `0..=domain_size`
    /// (index 0 names the null value).
    value_names: Option<Vec<String>>,
}

impl AttrDef {
    /// Declare an attribute with numeric values only.
    pub fn new(name: impl Into<String>, domain_size: AttrValue, homophily: bool) -> Self {
        AttrDef {
            name: name.into(),
            domain_size,
            homophily,
            value_names: None,
        }
    }

    /// Declare an attribute whose non-null values are named. The domain size
    /// is the number of names; null keeps the conventional name `"?"`.
    pub fn with_values<S: Into<String>>(
        name: impl Into<String>,
        homophily: bool,
        values: impl IntoIterator<Item = S>,
    ) -> Self {
        let mut names = vec!["?".to_string()];
        names.extend(values.into_iter().map(Into::into));
        AttrDef {
            name: name.into(),
            domain_size: (names.len() - 1) as AttrValue,
            homophily,
            value_names: Some(names),
        }
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `|A|`: the largest non-null value.
    pub fn domain_size(&self) -> AttrValue {
        self.domain_size
    }

    /// Number of distinct storable values including null (`|A| + 1`),
    /// i.e. the bucket count a counting sort over this attribute needs.
    pub fn bucket_count(&self) -> usize {
        self.domain_size as usize + 1
    }

    /// Whether the attribute follows the homophily principle.
    pub fn is_homophily(&self) -> bool {
        self.homophily
    }

    /// Human-readable name of `value`, falling back to the numeric form.
    pub fn value_name(&self, value: AttrValue) -> String {
        match &self.value_names {
            Some(names) if (value as usize) < names.len() => names[value as usize].clone(),
            _ if value == NULL => "?".to_string(),
            _ => value.to_string(),
        }
    }

    /// Resolve a value by its human-readable name.
    pub fn value_by_name(&self, name: &str) -> Option<AttrValue> {
        self.value_names
            .as_ref()?
            .iter()
            .position(|n| n == name)
            .map(|i| i as AttrValue)
    }

    fn validate(&self) -> Result<()> {
        if self.domain_size == 0 {
            return Err(GraphError::EmptyDomain {
                attr: self.name.clone(),
            });
        }
        if let Some(names) = &self.value_names {
            if names.len() != self.domain_size as usize + 1 {
                return Err(GraphError::DictionarySize {
                    attr: self.name.clone(),
                    expected: self.domain_size as usize + 1,
                    got: names.len(),
                });
            }
        }
        Ok(())
    }
}

/// The attribute schema of a social network: node attributes (with homophily
/// flags) and edge attributes.
///
/// Edge attributes carry no homophily flag — homophily is defined between
/// the two *endpoints* of a tie (§III-B), so only node attributes can be
/// homophilous.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    node_attrs: Vec<AttrDef>,
    edge_attrs: Vec<AttrDef>,
}

impl Schema {
    /// Build a schema from attribute declarations, validating domains and
    /// name uniqueness (within each namespace).
    pub fn new(node_attrs: Vec<AttrDef>, edge_attrs: Vec<AttrDef>) -> Result<Self> {
        if node_attrs.is_empty() {
            return Err(GraphError::EmptySchema);
        }
        for set in [&node_attrs, &edge_attrs] {
            for (i, a) in set.iter().enumerate() {
                a.validate()?;
                if set[..i].iter().any(|b| b.name == a.name) {
                    return Err(GraphError::DuplicateAttribute {
                        attr: a.name.clone(),
                    });
                }
            }
        }
        Ok(Schema {
            node_attrs,
            edge_attrs,
        })
    }

    /// Number of node attributes (`#AttrV` in §IV-A).
    pub fn node_attr_count(&self) -> usize {
        self.node_attrs.len()
    }

    /// Number of edge attributes (`#AttrE` in §IV-A).
    pub fn edge_attr_count(&self) -> usize {
        self.edge_attrs.len()
    }

    /// Declaration of node attribute `a`.
    pub fn node_attr(&self, a: NodeAttrId) -> &AttrDef {
        &self.node_attrs[a.index()]
    }

    /// Declaration of edge attribute `a`.
    pub fn edge_attr(&self, a: EdgeAttrId) -> &AttrDef {
        &self.edge_attrs[a.index()]
    }

    /// All node attribute ids in declaration order.
    pub fn node_attr_ids(&self) -> impl Iterator<Item = NodeAttrId> + '_ {
        (0..self.node_attrs.len()).map(|i| NodeAttrId(i as u8))
    }

    /// All edge attribute ids in declaration order.
    pub fn edge_attr_ids(&self) -> impl Iterator<Item = EdgeAttrId> + '_ {
        (0..self.edge_attrs.len()).map(|i| EdgeAttrId(i as u8))
    }

    /// Node attributes flagged as homophily attributes (`H` in Eqn. 7).
    pub fn homophily_attr_ids(&self) -> impl Iterator<Item = NodeAttrId> + '_ {
        self.node_attr_ids()
            .filter(|a| self.node_attr(*a).is_homophily())
    }

    /// Node attributes *not* flagged as homophily attributes (`NH`).
    pub fn non_homophily_attr_ids(&self) -> impl Iterator<Item = NodeAttrId> + '_ {
        self.node_attr_ids()
            .filter(|a| !self.node_attr(*a).is_homophily())
    }

    /// Look up a node attribute by name.
    pub fn node_attr_by_name(&self, name: &str) -> Result<NodeAttrId> {
        self.node_attrs
            .iter()
            .position(|a| a.name == name)
            .map(|i| NodeAttrId(i as u8))
            .ok_or_else(|| GraphError::UnknownName { name: name.into() })
    }

    /// Look up an edge attribute by name.
    pub fn edge_attr_by_name(&self, name: &str) -> Result<EdgeAttrId> {
        self.edge_attrs
            .iter()
            .position(|a| a.name == name)
            .map(|i| EdgeAttrId(i as u8))
            .ok_or_else(|| GraphError::UnknownName { name: name.into() })
    }

    /// Check one row of node attribute values against the schema.
    pub fn check_node_values(&self, values: &[AttrValue]) -> Result<()> {
        Self::check_values(&self.node_attrs, values)
    }

    /// Check one row of edge attribute values against the schema.
    pub fn check_edge_values(&self, values: &[AttrValue]) -> Result<()> {
        Self::check_values(&self.edge_attrs, values)
    }

    fn check_values(defs: &[AttrDef], values: &[AttrValue]) -> Result<()> {
        if defs.len() != values.len() {
            return Err(GraphError::ArityMismatch {
                expected: defs.len(),
                got: values.len(),
            });
        }
        for (def, &v) in defs.iter().zip(values) {
            if v > def.domain_size {
                return Err(GraphError::ValueOutOfDomain {
                    attr: def.name.clone(),
                    value: v,
                    domain: def.domain_size,
                });
            }
        }
        Ok(())
    }
}

/// Fluent construction of a [`Schema`].
///
/// ```
/// use grm_graph::SchemaBuilder;
/// let schema = SchemaBuilder::new()
///     .node_attr_named("SEX", false, ["F", "M"])
///     .node_attr_named("EDU", true, ["HighSchool", "College", "Grad"])
///     .edge_attr("TYPE", 2)
///     .build()
///     .unwrap();
/// assert_eq!(schema.node_attr_count(), 2);
/// assert_eq!(schema.edge_attr_count(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct SchemaBuilder {
    node_attrs: Vec<AttrDef>,
    edge_attrs: Vec<AttrDef>,
}

impl SchemaBuilder {
    /// Start an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a numeric node attribute.
    pub fn node_attr(
        mut self,
        name: impl Into<String>,
        domain_size: AttrValue,
        homophily: bool,
    ) -> Self {
        self.node_attrs
            .push(AttrDef::new(name, domain_size, homophily));
        self
    }

    /// Add a node attribute with named values.
    pub fn node_attr_named<S: Into<String>>(
        mut self,
        name: impl Into<String>,
        homophily: bool,
        values: impl IntoIterator<Item = S>,
    ) -> Self {
        self.node_attrs
            .push(AttrDef::with_values(name, homophily, values));
        self
    }

    /// Add a numeric edge attribute.
    pub fn edge_attr(mut self, name: impl Into<String>, domain_size: AttrValue) -> Self {
        self.edge_attrs.push(AttrDef::new(name, domain_size, false));
        self
    }

    /// Add an edge attribute with named values.
    pub fn edge_attr_named<S: Into<String>>(
        mut self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = S>,
    ) -> Self {
        self.edge_attrs
            .push(AttrDef::with_values(name, false, values));
        self
    }

    /// Validate and produce the schema.
    pub fn build(self) -> Result<Schema> {
        Schema::new(self.node_attrs, self.edge_attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dating_schema() -> Schema {
        SchemaBuilder::new()
            .node_attr_named("SEX", false, ["F", "M"])
            .node_attr_named("RACE", true, ["Asian", "Latino", "White"])
            .node_attr_named("EDU", true, ["HighSchool", "College", "Grad"])
            .edge_attr_named("TYPE", ["dates"])
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_counts() {
        let s = dating_schema();
        assert_eq!(s.node_attr_count(), 3);
        assert_eq!(s.edge_attr_count(), 1);
        assert_eq!(s.node_attr(NodeAttrId(1)).domain_size(), 3);
        assert_eq!(s.node_attr(NodeAttrId(1)).bucket_count(), 4);
    }

    #[test]
    fn homophily_partition() {
        let s = dating_schema();
        let h: Vec<_> = s.homophily_attr_ids().collect();
        let nh: Vec<_> = s.non_homophily_attr_ids().collect();
        assert_eq!(h, vec![NodeAttrId(1), NodeAttrId(2)]);
        assert_eq!(nh, vec![NodeAttrId(0)]);
    }

    #[test]
    fn name_lookups() {
        let s = dating_schema();
        assert_eq!(s.node_attr_by_name("EDU").unwrap(), NodeAttrId(2));
        assert_eq!(s.edge_attr_by_name("TYPE").unwrap(), EdgeAttrId(0));
        assert!(s.node_attr_by_name("NOPE").is_err());
    }

    #[test]
    fn value_names_round_trip() {
        let s = dating_schema();
        let edu = s.node_attr(NodeAttrId(2));
        assert_eq!(edu.value_name(3), "Grad");
        assert_eq!(edu.value_by_name("Grad"), Some(3));
        assert_eq!(edu.value_name(0), "?");
        assert_eq!(edu.value_by_name("?"), Some(0));
        assert_eq!(edu.value_by_name("PhD"), None);
    }

    #[test]
    fn numeric_value_name_fallback() {
        let a = AttrDef::new("Region", 188, true);
        assert_eq!(a.value_name(27), "27");
        assert_eq!(a.value_name(0), "?");
        assert_eq!(a.value_by_name("27"), None, "no dictionary, no lookup");
    }

    #[test]
    fn rejects_empty_schema() {
        assert!(matches!(
            Schema::new(vec![], vec![]),
            Err(GraphError::EmptySchema)
        ));
    }

    #[test]
    fn rejects_zero_domain() {
        let r = SchemaBuilder::new().node_attr("X", 0, false).build();
        assert!(matches!(r, Err(GraphError::EmptyDomain { .. })));
    }

    #[test]
    fn rejects_duplicate_names_within_namespace() {
        let r = SchemaBuilder::new()
            .node_attr("X", 2, false)
            .node_attr("X", 3, true)
            .build();
        assert!(matches!(r, Err(GraphError::DuplicateAttribute { .. })));
    }

    #[test]
    fn same_name_across_namespaces_is_fine() {
        // A node attribute and an edge attribute may share a name.
        let r = SchemaBuilder::new()
            .node_attr("X", 2, false)
            .edge_attr("X", 2)
            .build();
        assert!(r.is_ok());
    }

    #[test]
    fn value_checks() {
        let s = dating_schema();
        assert!(s.check_node_values(&[1, 2, 3]).is_ok());
        assert!(s.check_node_values(&[0, 0, 0]).is_ok(), "nulls allowed");
        assert!(matches!(
            s.check_node_values(&[1, 2]),
            Err(GraphError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check_node_values(&[1, 9, 3]),
            Err(GraphError::ValueOutOfDomain { .. })
        ));
        assert!(s.check_edge_values(&[1]).is_ok());
        assert!(s.check_edge_values(&[2]).is_err());
    }

    #[test]
    fn dictionary_size_enforced() {
        let bad = AttrDef {
            name: "X".into(),
            domain_size: 3,
            homophily: false,
            value_names: Some(vec!["?".into(), "a".into()]),
        };
        assert!(matches!(
            Schema::new(vec![bad], vec![]),
            Err(GraphError::DictionarySize { .. })
        ));
    }

    #[test]
    fn serde_round_trip() {
        let s = dating_schema();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
