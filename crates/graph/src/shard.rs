//! Sharded, memory-budgeted out-of-core edge storage.
//!
//! [`CompactModel`](crate::CompactModel) indexes EArray positions with
//! `u32`, capping any single resident model at
//! [`CompactModel::MAX_EDGES`](crate::CompactModel::MAX_EDGES) edges.
//! This module breaks that cap by partitioning the edge set into
//! independently loadable **shards**, each small enough to build its
//! own compact model:
//!
//! * [`ShardSpec`] — the partitioning function: edges are routed by the
//!   *dominant* LHS dimension's value on their source node (the widest
//!   node-attribute domain, exactly the dimension the parallel engine's
//!   `RootTask::LeftValues` split keys on), tiled into contiguous value
//!   ranges with NULL joining shard 0.
//! * [`ShardStoreWriter`] / [`ShardStore`] — a streaming writer that
//!   spills edges to one columnar chunk file per shard (format in
//!   [`crate::io`]) without ever materializing the whole edge set, and
//!   the finished store that loads any shard back as a standalone
//!   [`SocialGraph`]. Capacity is checked **per shard** at finish time.
//! * [`SliceSet`] — per-value re-partitions of the whole store keyed by
//!   an arbitrary source/destination/edge attribute: the unit of work
//!   for root tasks whose top dimension is not the shard key.
//! * [`ShardPool`] — the LRU residency manager: `acquire` pins a shard
//!   (loading it if absent, evicting unpinned least-recently-used
//!   residents to stay inside a fixed byte budget), `release` unpins.
//!   The pin/evict/budget protocol is model-checked in
//!   `grm_analyze::model::shard`: no shard is evicted while pinned,
//!   residency never exceeds the budget, and the blocked wait (every
//!   resident pinned) is not a deadlock.
//!
//! Residency accounting uses [`resident_cost`], a byte estimate of a
//! shard's working set (its graph plus the compact model mining builds
//! over it), so `shard_resident_bytes_peak ≤ budget` holds by
//! construction whenever the pool hands out a lease.

use crate::builder::GraphBuilder;
use crate::cancel::CancelToken;
use crate::compact::check_edge_capacity;
use crate::error::{GraphError, Result, ShardIoError};
use crate::failpoint;
use crate::graph::SocialGraph;
use crate::schema::Schema;
use crate::value::{AttrValue, EdgeAttrId, NodeAttrId, NodeId, NULL};
use parking_lot::Mutex;
use std::fs;
use std::io::Write as _;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Edges buffered per shard before a chunk is spilled to disk.
const CHUNK_EDGES: usize = 4096;

/// How the edge set is partitioned: by a source-node attribute, tiled
/// into contiguous inclusive value ranges (one per shard). NULL values
/// route to shard 0, mirroring how the miner's `LeftValues` root tasks
/// skip NULL before counting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    attr: NodeAttrId,
    ranges: Vec<(AttrValue, AttrValue)>,
}

impl ShardSpec {
    /// Partition on the dominant node attribute: widest domain, first
    /// declared on ties — the same choice `parallel.rs` makes when it
    /// splits `LeftValues` root tasks.
    pub fn new(schema: &Schema, shards: usize) -> Self {
        let mut attr = NodeAttrId(0);
        let mut best = (0usize, 0usize);
        for (i, a) in schema.node_attr_ids().enumerate() {
            let key = (schema.node_attr(a).bucket_count(), usize::MAX - i);
            if key > best {
                best = key;
                attr = a;
            }
        }
        Self::with_attr(schema, attr, shards)
    }

    /// Partition on an explicit attribute.
    pub fn with_attr(schema: &Schema, attr: NodeAttrId, shards: usize) -> Self {
        let shards = shards.max(1);
        let values = schema
            .node_attr(attr)
            .bucket_count()
            .saturating_sub(1)
            .max(1);
        let mut ranges = Vec::with_capacity(shards);
        for s in 0..shards {
            let lo = 1 + s * values / shards;
            let hi = (s + 1) * values / shards;
            // cast: lo, hi ≤ values = bucket_count − 1 < u16 domain
            ranges.push((lo as AttrValue, hi as AttrValue));
        }
        ShardSpec { attr, ranges }
    }

    /// The attribute edges are routed on.
    pub fn attr(&self) -> NodeAttrId {
        self.attr
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.ranges.len()
    }

    /// Inclusive value range of shard `s` (`lo > hi` means the shard is
    /// empty — more shards were requested than the domain has values).
    pub fn range(&self, s: usize) -> (AttrValue, AttrValue) {
        self.ranges[s]
    }

    /// Which shard holds edges whose source carries `value`.
    pub fn shard_of(&self, value: AttrValue) -> usize {
        if value == NULL {
            return 0;
        }
        for (s, &(lo, hi)) in self.ranges.iter().enumerate() {
            if lo <= value && value <= hi {
                return s;
            }
        }
        // Schema-valid values always land in a range; out-of-domain
        // values (rejected upstream by validation) fold into the last
        // shard rather than panicking in the hot path.
        self.ranges.len() - 1
    }
}

/// Buffered many-bucket chunk spiller shared by the shard writer and
/// the slice builder: routes edges into per-bucket columnar files.
struct ChunkRouter {
    dir: PathBuf,
    prefix: &'static str,
    writers: Vec<BufWriter<fs::File>>,
    srcs: Vec<Vec<NodeId>>,
    dsts: Vec<Vec<NodeId>>,
    attrs: Vec<Vec<Vec<AttrValue>>>,
    counts: Vec<u64>,
    spill_retries: u64,
}

impl ChunkRouter {
    fn create(dir: &Path, prefix: &'static str, buckets: usize, ea: usize) -> Result<Self> {
        fs::create_dir_all(dir)?;
        Self::sweep_stale_temps(dir, prefix);
        let mut writers = Vec::with_capacity(buckets);
        let mut srcs = Vec::with_capacity(buckets);
        let mut dsts = Vec::with_capacity(buckets);
        let mut attrs = Vec::with_capacity(buckets);
        let mut counts = Vec::with_capacity(buckets);
        for b in 0..buckets {
            let f = fs::File::create(Self::tmp_file_at(dir, prefix, b))?;
            let mut w = BufWriter::new(f);
            crate::io::write_spill_header(&mut w)?;
            writers.push(w);
            srcs.push(Vec::with_capacity(CHUNK_EDGES));
            dsts.push(Vec::with_capacity(CHUNK_EDGES));
            let mut cols = Vec::with_capacity(ea);
            for _ in 0..ea {
                cols.push(Vec::with_capacity(CHUNK_EDGES));
            }
            attrs.push(cols);
            counts.push(0);
        }
        Ok(ChunkRouter {
            dir: dir.to_path_buf(),
            prefix,
            writers,
            srcs,
            dsts,
            attrs,
            counts,
            spill_retries: 0,
        })
    }

    fn file_at(dir: &Path, prefix: &str, bucket: usize) -> PathBuf {
        dir.join(format!("{prefix}-{bucket}.edges"))
    }

    /// In-progress spills live at a `.tmp` sibling until
    /// [`Self::finish`] renames them into place, so a crash mid-write
    /// never leaves a file a reader would mistake for a complete spill.
    fn tmp_file_at(dir: &Path, prefix: &str, bucket: usize) -> PathBuf {
        dir.join(format!("{prefix}-{bucket}.edges.tmp"))
    }

    /// Remove temp files a crashed earlier run left under `dir` for
    /// this prefix (best-effort; they are garbage by construction).
    fn sweep_stale_temps(dir: &Path, prefix: &str) {
        let Ok(entries) = fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(prefix) && name.ends_with(".edges.tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
    }

    fn push(&mut self, b: usize, src: NodeId, dst: NodeId, vals: &[AttrValue]) -> Result<()> {
        self.srcs[b].push(src);
        self.dsts[b].push(dst);
        for (a, &v) in vals.iter().enumerate() {
            self.attrs[b][a].push(v);
        }
        self.counts[b] += 1;
        if self.srcs[b].len() >= CHUNK_EDGES {
            self.flush_bucket(b)?;
        }
        Ok(())
    }

    fn flush_bucket(&mut self, b: usize) -> Result<()> {
        if self.srcs[b].is_empty() {
            return Ok(());
        }
        let chunk = crate::io::encode_edge_chunk(&self.srcs[b], &self.dsts[b], &self.attrs[b]);
        if let Err(first) = Self::write_chunk(&mut self.writers[b], &chunk) {
            // One bounded retry for transient spill failures. A retry
            // after a real partial write can append a garbled chunk,
            // but the on-read checksum rejects it — a doubly-failed
            // spill may surface as a typed integrity error, never as
            // silently wrong data.
            self.spill_retries += 1;
            Self::write_chunk(&mut self.writers[b], &chunk).map_err(|_| first)?;
        }
        self.srcs[b].clear();
        self.dsts[b].clear();
        for col in &mut self.attrs[b] {
            col.clear();
        }
        Ok(())
    }

    fn write_chunk(w: &mut BufWriter<fs::File>, chunk: &[u8]) -> Result<()> {
        if let Some(failpoint::FaultKind::IoError) = failpoint::hit("spill.write") {
            return Err(GraphError::Io {
                message: "injected fault at spill.write".into(),
            });
        }
        w.write_all(chunk)?;
        Ok(())
    }

    /// Flush everything, rename each temp file into its final place,
    /// and return `(dir, per-bucket edge counts, spill retries)`.
    fn finish(mut self) -> Result<(PathBuf, Vec<u64>, u64)> {
        for b in 0..self.writers.len() {
            self.flush_bucket(b)?;
        }
        for w in &mut self.writers {
            w.flush()?;
        }
        // Close every temp file before renaming it into place: a
        // reader that can open `{prefix}-{b}.edges` therefore always
        // sees a complete, flushed spill.
        drop(std::mem::take(&mut self.writers));
        for b in 0..self.counts.len() {
            fs::rename(
                Self::tmp_file_at(&self.dir, self.prefix, b),
                Self::file_at(&self.dir, self.prefix, b),
            )?;
        }
        Ok((self.dir, self.counts, self.spill_retries))
    }
}

/// Per-edge callback: `(src, dst, edge-attribute row)`.
pub type EdgeVisitor<'a> = dyn FnMut(NodeId, NodeId, &[AttrValue]) -> Result<()> + 'a;

/// Stream one spilled chunk file, invoking `f` per edge with a reused
/// row buffer for the edge-attribute values.
fn for_each_edge_in(path: &Path, ea: usize, f: &mut EdgeVisitor) -> Result<()> {
    let file = fs::File::open(path)?;
    let mut r = BufReader::new(file);
    crate::io::read_spill_header(&mut r)?;
    let mut row = Vec::with_capacity(ea);
    while let Some(chunk) = crate::io::read_edge_chunk(&mut r, ea)? {
        for i in 0..chunk.len() {
            row.clear();
            for a in 0..ea {
                row.push(chunk.attrs[a][i]);
            }
            f(chunk.srcs[i], chunk.dsts[i], &row)?;
        }
    }
    Ok(())
}

/// Streaming writer for a [`ShardStore`]: nodes accumulate in memory
/// (rows are small), edges spill straight to per-shard chunk files, so
/// an edge set far beyond one `CompactModel`'s capacity is written in
/// O(nodes + chunk) memory.
pub struct ShardStoreWriter {
    schema: Arc<Schema>,
    spec: ShardSpec,
    router: ChunkRouter,
    node_values: Vec<AttrValue>,
    max_edges_per_shard: usize,
    total_edges: u64,
}

impl ShardStoreWriter {
    /// Start a store under `dir` with the dominant-attribute spec.
    /// `max_edges_per_shard` is the per-shard capacity checked at
    /// [`Self::finish`] (pass [`crate::CompactModel::MAX_EDGES`] for
    /// the real u32 cap; tests lower it to force sharding on small
    /// inputs).
    pub fn create(
        schema: Schema,
        dir: impl AsRef<Path>,
        shards: usize,
        max_edges_per_shard: usize,
    ) -> Result<Self> {
        let spec = ShardSpec::new(&schema, shards);
        Self::with_spec(schema, dir, spec, max_edges_per_shard)
    }

    /// Start a store with an explicit [`ShardSpec`].
    pub fn with_spec(
        schema: Schema,
        dir: impl AsRef<Path>,
        spec: ShardSpec,
        max_edges_per_shard: usize,
    ) -> Result<Self> {
        let router = ChunkRouter::create(
            dir.as_ref(),
            "shard",
            spec.shard_count(),
            schema.edge_attr_count(),
        )?;
        Ok(ShardStoreWriter {
            schema: Arc::new(schema),
            spec,
            router,
            node_values: Vec::with_capacity(0),
            max_edges_per_shard,
            total_edges: 0,
        })
    }

    /// The schema being written against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Nodes added so far.
    pub fn node_count(&self) -> usize {
        self.node_values.len() / self.schema.node_attr_count().max(1)
    }

    /// Edges added so far.
    pub fn edge_count(&self) -> u64 {
        self.total_edges
    }

    /// Add a node row (all nodes must precede the edges that use them).
    pub fn add_node(&mut self, values: &[AttrValue]) -> Result<NodeId> {
        self.schema.check_node_values(values)?;
        let id = crate::value::next_node_id(self.node_count())?;
        self.node_values.extend_from_slice(values);
        Ok(id)
    }

    /// Route one directed edge to its shard and spill it. Self-loops
    /// are accepted (the writer is a storage layer, not a policy one).
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, values: &[AttrValue]) -> Result<()> {
        // Compare in usize: narrowing the count instead would wrap to 0
        // once the writer reaches 2^32 nodes and reject every edge.
        let n = self.node_count();
        for end in [src, dst] {
            if end as usize >= n {
                return Err(GraphError::DanglingEndpoint {
                    node: end,
                    nodes: n,
                });
            }
        }
        self.schema.check_edge_values(values)?;
        let na = self.schema.node_attr_count();
        let key = self.node_values[src as usize * na + self.spec.attr.index()];
        let shard = self.spec.shard_of(key);
        self.total_edges += 1;
        self.router.push(shard, src, dst, values)
    }

    /// Flush, verify every shard fits its per-shard capacity, and
    /// return the finished store (which owns the on-disk files).
    pub fn finish(self) -> Result<ShardStore> {
        let ShardStoreWriter {
            schema,
            spec,
            router,
            node_values,
            max_edges_per_shard,
            total_edges,
        } = self;
        let (dir, edge_counts, spill_retries) = router.finish()?;
        for &c in &edge_counts {
            check_edge_capacity(c as usize, max_edges_per_shard)?;
        }
        Ok(ShardStore {
            dir,
            schema,
            spec,
            node_values,
            edge_counts,
            total_edges,
            max_edges_per_shard,
            spill_retries,
        })
    }
}

/// A finished sharded edge store: node rows in memory, one columnar
/// chunk file per shard on disk. Dropping the store removes its files.
#[derive(Debug)]
pub struct ShardStore {
    dir: PathBuf,
    schema: Arc<Schema>,
    spec: ShardSpec,
    node_values: Vec<AttrValue>,
    edge_counts: Vec<u64>,
    total_edges: u64,
    max_edges_per_shard: usize,
    spill_retries: u64,
}

impl ShardStore {
    /// Shard an in-memory graph: the convenience path for inputs that
    /// already fit in one piece (equivalence tests, the CLI's default).
    pub fn build_from_graph(
        graph: &SocialGraph,
        dir: impl AsRef<Path>,
        shards: usize,
        max_edges_per_shard: usize,
    ) -> Result<Self> {
        let mut w =
            ShardStoreWriter::create(graph.schema().clone(), dir, shards, max_edges_per_shard)?;
        for n in graph.node_ids() {
            w.add_node(graph.node_row(n))?;
        }
        for e in graph.edge_ids() {
            w.add_edge(graph.src(e), graph.dst(e), graph.edge_row(e))?;
        }
        w.finish()
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// The partitioning spec.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.spec.shard_count()
    }

    /// Edges in shard `s`.
    pub fn edge_count(&self, s: usize) -> u64 {
        self.edge_counts[s]
    }

    /// Edges across all shards.
    pub fn total_edges(&self) -> u64 {
        self.total_edges
    }

    /// Nodes (shared by every shard).
    pub fn node_count(&self) -> usize {
        self.node_values.len() / self.schema.node_attr_count().max(1)
    }

    /// Attribute row of node `n`.
    pub fn node_row(&self, n: NodeId) -> &[AttrValue] {
        let w = self.schema.node_attr_count();
        &self.node_values[n as usize * w..(n as usize + 1) * w]
    }

    /// The per-shard capacity this store was built under.
    pub fn max_edges_per_shard(&self) -> usize {
        self.max_edges_per_shard
    }

    /// Transient spill-write failures retried (and recovered from)
    /// while the store was written; bounded to one retry per chunk.
    pub fn spill_retries(&self) -> u64 {
        self.spill_retries
    }

    /// Directory holding the spill files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn edge_file(&self, s: usize) -> PathBuf {
        ChunkRouter::file_at(&self.dir, "shard", s)
    }

    /// Stream shard `s`'s edges without materializing them.
    pub fn for_each_edge<F>(&self, s: usize, mut f: F) -> Result<()>
    where
        F: FnMut(NodeId, NodeId, &[AttrValue]) -> Result<()>,
    {
        for_each_edge_in(&self.edge_file(s), self.schema.edge_attr_count(), &mut f)
    }

    /// Shared load prelude: the `shard.load` failpoint probe and the
    /// per-shard capacity check, identical for the validating and
    /// trusted paths.
    fn load_prelude(&self, s: usize) -> Result<()> {
        match failpoint::hit("shard.load") {
            Some(failpoint::FaultKind::IoError) => {
                return Err(GraphError::Io {
                    message: "injected fault at shard.load".into(),
                });
            }
            Some(failpoint::FaultKind::ShortRead) => {
                return Err(ShardIoError::ShortRead {
                    context: "injected fault at shard.load",
                }
                .into());
            }
            _ => {}
        }
        check_edge_capacity(self.edge_counts[s] as usize, self.max_edges_per_shard)
    }

    /// Load shard `s` as a standalone graph: every node row plus the
    /// shard's edges, re-validated by the builder.
    pub fn load_shard(&self, s: usize) -> Result<SocialGraph> {
        self.load_prelude(s)?;
        let mut b = GraphBuilder::with_capacity(
            (*self.schema).clone(),
            self.node_count(),
            self.edge_counts[s] as usize,
        )
        .allow_self_loops();
        for n in 0..self.node_count() {
            // cast: n < node_count, and ids were assigned via next_node_id
            b.add_node(self.node_row(n as NodeId))?;
        }
        self.for_each_edge(s, |src, dst, vals| {
            b.add_edge(src, dst, vals)?;
            Ok(())
        })?;
        b.build()
    }

    /// Load shard `s` *trusting* the spill: skip the per-row
    /// `GraphBuilder` re-validation and assemble the graph columns
    /// straight from the chunk stream.
    ///
    /// Safe for spills this process (or an honest peer) wrote: every
    /// row was validated by `add_node`/`add_edge` before it was
    /// spilled, the chunk reader verifies the per-chunk checksums and
    /// the magic+version header on the way back in, and the capacity
    /// check still runs — so corruption, truncation, and format drift
    /// are rejected exactly as on the validating path; only the
    /// semantic row checks (attribute arity/domain, endpoint range)
    /// are skipped. [`load_shard`](Self::load_shard) remains the path
    /// for spills of unknown provenance; the unit tests below pin the
    /// two paths bit-identical and corruption still caught.
    pub fn load_shard_trusted(&self, s: usize) -> Result<SocialGraph> {
        self.load_prelude(s)?;
        let edges = self.edge_counts[s] as usize;
        let ea = self.schema.edge_attr_count();
        let mut srcs: Vec<NodeId> = Vec::with_capacity(edges);
        let mut dsts: Vec<NodeId> = Vec::with_capacity(edges);
        let mut edge_values: Vec<AttrValue> = Vec::with_capacity(edges * ea);
        self.for_each_edge(s, |src, dst, vals| {
            srcs.push(src);
            dsts.push(dst);
            edge_values.extend_from_slice(vals);
            Ok(())
        })?;
        Ok(SocialGraph::from_parts(
            Arc::clone(&self.schema),
            self.node_values.clone(),
            srcs,
            dsts,
            edge_values,
        ))
    }
}

impl Drop for ShardStore {
    fn drop(&mut self) {
        for s in 0..self.shard_count() {
            let _ = fs::remove_file(self.edge_file(s));
        }
    }
}

/// Which attribute a [`SliceSet`] re-partitions the store on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceKey {
    /// A node attribute read on the edge's source (LHS dimension).
    Src(NodeAttrId),
    /// A node attribute read on the edge's destination (RHS dimension).
    Dst(NodeAttrId),
    /// An edge attribute (W dimension).
    Edge(EdgeAttrId),
}

impl SliceKey {
    /// Non-null values of the keyed attribute.
    pub fn domain(&self, schema: &Schema) -> usize {
        match *self {
            SliceKey::Src(a) | SliceKey::Dst(a) => {
                schema.node_attr(a).bucket_count().saturating_sub(1)
            }
            SliceKey::Edge(a) => schema.edge_attr(a).bucket_count().saturating_sub(1),
        }
    }
}

/// Per-value re-partition of a whole [`ShardStore`]: one chunk file per
/// non-null value of the key attribute, built in a single streaming
/// pass over every shard file. NULL-keyed edges are dropped — the
/// miner never descends into NULL partitions, so a root task over a
/// value slice sees exactly the edges its first partition pass would
/// keep. Dropping the set removes its files.
pub struct SliceSet<'s> {
    store: &'s ShardStore,
    key: SliceKey,
    dir: PathBuf,
    edge_counts: Vec<u64>,
    spill_retries: u64,
}

impl<'s> SliceSet<'s> {
    /// Build the per-value spill files under `dir`.
    pub fn build(store: &'s ShardStore, key: SliceKey, dir: impl AsRef<Path>) -> Result<Self> {
        let schema = store.schema();
        let values = key.domain(schema);
        let mut router =
            ChunkRouter::create(dir.as_ref(), "slice", values, schema.edge_attr_count())?;
        let na = schema.node_attr_count();
        for s in 0..store.shard_count() {
            store.for_each_edge(s, |src, dst, vals| {
                let v = match key {
                    SliceKey::Src(a) => store.node_values[src as usize * na + a.index()],
                    SliceKey::Dst(a) => store.node_values[dst as usize * na + a.index()],
                    SliceKey::Edge(a) => vals[a.index()],
                };
                if v == NULL {
                    return Ok(());
                }
                router.push(v as usize - 1, src, dst, vals)
            })?;
        }
        let (dir, edge_counts, spill_retries) = router.finish()?;
        Ok(SliceSet {
            store,
            key,
            dir,
            edge_counts,
            spill_retries,
        })
    }

    /// The key attribute.
    pub fn key(&self) -> SliceKey {
        self.key
    }

    /// Transient spill-write failures retried (and recovered from)
    /// while this slice set was built; bounded to one retry per chunk.
    pub fn spill_retries(&self) -> u64 {
        self.spill_retries
    }

    /// Number of non-null values (slices).
    pub fn value_count(&self) -> usize {
        self.edge_counts.len()
    }

    /// Edges carrying `value` on the key attribute.
    pub fn edge_count(&self, value: AttrValue) -> u64 {
        if value == NULL {
            return 0;
        }
        self.edge_counts[value as usize - 1]
    }

    fn slice_file(&self, value: AttrValue) -> PathBuf {
        ChunkRouter::file_at(&self.dir, "slice", value as usize - 1)
    }

    /// Load the slice for `value` as a standalone graph (every node
    /// row, only the matching edges). `NULL` yields an edgeless graph.
    pub fn load(&self, value: AttrValue) -> Result<SocialGraph> {
        let store = self.store;
        let mut b = GraphBuilder::with_capacity(
            (*store.schema).clone(),
            store.node_count(),
            self.edge_count(value) as usize,
        )
        .allow_self_loops();
        for n in 0..store.node_count() {
            // cast: n < node_count, and ids were assigned via next_node_id
            b.add_node(store.node_row(n as NodeId))?;
        }
        if value != NULL {
            for_each_edge_in(
                &self.slice_file(value),
                store.schema.edge_attr_count(),
                &mut |src, dst, vals| {
                    b.add_edge(src, dst, vals)?;
                    Ok(())
                },
            )?;
        }
        b.build()
    }
}

impl Drop for SliceSet<'_> {
    fn drop(&mut self) {
        for b in 0..self.edge_counts.len() {
            let _ = fs::remove_file(ChunkRouter::file_at(&self.dir, "slice", b));
        }
    }
}

/// Estimated resident bytes of one loaded shard/slice: its
/// [`SocialGraph`] (node rows, endpoints, edge rows) plus the
/// `CompactModel` mining builds over it (structural columns, position
/// vector, columnar key caches). An estimate, not an allocator audit —
/// the pool budgets and meters this same unit, so
/// `shard_resident_bytes_peak ≤ budget` is exact *in this unit* by
/// construction.
pub fn resident_cost(schema: &Schema, nodes: usize, edges: usize) -> u64 {
    let na = schema.node_attr_count() as u64;
    let ea = schema.edge_attr_count() as u64;
    let n = nodes as u64;
    let m = edges as u64;
    // Graph: u16 node rows, u32 endpoints, u16 edge rows.
    let graph = n * 2 * na + m * (8 + 2 * ea);
    // Compact model: lrows/out/ind (≤ 3 u32 per node), eid + ptr
    // (u32 each) + the root position vector, u16 key caches.
    let model = n * 12 + m * 12 + m * 2 * (2 * na + ea);
    graph + model
}

/// Lock-free residency accounting mirror: the pool mutates it only
/// under its mutex, the atomics exist so stats readers (progress
/// displays, the miner's counter snapshot) never take the pool lock.
#[derive(Debug, Default)]
pub struct ResidencyMeter {
    current: AtomicU64,
    peak: AtomicU64,
}

impl ResidencyMeter {
    fn add(&self, bytes: u64) {
        // ordering: AcqRel — every add/sub happens under the pool mutex
        // (grm_analyze::model::shard models acquire/release as single
        // mutex-guarded steps and proves the accounting never exceeds
        // the budget, invariant 2); the RMW's Release half publishes
        // the new total to lock-free `current()` readers and the
        // Acquire half orders it after the resident-graph write it
        // accounts for. A Relaxed RMW is banned repo-wide.
        let now = self.current.fetch_add(bytes, Ordering::AcqRel) + bytes;
        // ordering: AcqRel — fetch_max serializes racing peak updates
        // into one total order, so no maximum is ever lost; the peak is
        // a monotone fold over the model-checked accounting above.
        self.peak.fetch_max(now, Ordering::AcqRel);
    }

    fn sub(&self, bytes: u64) {
        // ordering: AcqRel — pairs with `add`; mutex-serialized writers
        // (grm_analyze::model::shard, invariant 3: pins equal holders,
        // so every sub matches a prior add), Release-published for
        // lock-free readers.
        self.current.fetch_sub(bytes, Ordering::AcqRel);
    }

    /// Bytes currently accounted resident.
    pub fn current(&self) -> u64 {
        // ordering: Acquire — pairs with the AcqRel RMWs above, so a
        // reader sees totals at least as fresh as the last publish.
        self.current.load(Ordering::Acquire)
    }

    /// High-water mark of [`Self::current`].
    pub fn peak(&self) -> u64 {
        // ordering: Acquire — pairs with the AcqRel fetch_max publish.
        self.peak.load(Ordering::Acquire)
    }
}

/// Snapshot of a pool's activity, feeding the miner's
/// `shard_loads` / `shard_evictions` / `shard_resident_bytes_peak`
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Shard loads from disk (cache misses).
    pub loads: u64,
    /// Budget-pressure evictions (phase-boundary clears not included).
    pub evictions: u64,
    /// High-water mark of accounted resident bytes.
    pub resident_bytes_peak: u64,
}

struct Resident {
    graph: Arc<SocialGraph>,
    bytes: u64,
    pins: u32,
    last_used: u64,
}

struct PoolState {
    resident: Vec<Option<Resident>>,
    tick: u64,
    reserved: u64,
    loads: u64,
    evictions: u64,
}

/// The LRU shard-residency manager (module docs; protocol proved in
/// `grm_analyze::model::shard`).
pub struct ShardPool<'s> {
    store: &'s ShardStore,
    /// Accounted-byte budget. Atomic only because the `pool.evict`
    /// failpoint can shrink it mid-mine under `fault-inject`; in a
    /// production build it is written once, at construction.
    budget: AtomicU64,
    /// Observed in the blocked waits of [`Self::acquire`] and
    /// [`Self::reserve`], so a cancelled mine never spins forever
    /// waiting for pins that will not be released.
    cancel: CancelToken,
    state: Mutex<PoolState>,
    meter: ResidencyMeter,
}

impl std::fmt::Debug for ShardPool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("budget", &self.budget())
            .field("resident_bytes", &self.meter.current())
            .finish()
    }
}

/// A pinned resident shard: the graph stays loaded until the lease
/// drops.
pub struct ShardLease<'p, 's> {
    pool: &'p ShardPool<'s>,
    shard: usize,
    graph: Arc<SocialGraph>,
}

impl std::fmt::Debug for ShardLease<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardLease")
            .field("shard", &self.shard)
            .finish()
    }
}

impl ShardLease<'_, '_> {
    /// The resident shard graph.
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// Which shard is pinned.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

impl Drop for ShardLease<'_, '_> {
    fn drop(&mut self) {
        self.pool.release(self.shard);
    }
}

/// Budget headroom reserved for a transient resident (a value slice):
/// the bytes stay accounted until the reservation drops, flowing
/// through the same meter and budget as pinned shards.
pub struct Reservation<'p, 's> {
    pool: &'p ShardPool<'s>,
    bytes: u64,
}

impl std::fmt::Debug for Reservation<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reservation")
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl Reservation<'_, '_> {
    /// Reserved bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Reservation<'_, '_> {
    fn drop(&mut self) {
        self.pool.unreserve(self.bytes);
    }
}

impl<'s> ShardPool<'s> {
    /// A pool over `store` with `budget` accounted bytes (`None` =
    /// unbounded). Fails eagerly — before any mining starts — when the
    /// budget cannot hold the store's largest shard, since no eviction
    /// schedule could ever make such a shard resident; the error
    /// reports the minimum viable budget.
    pub fn new(store: &'s ShardStore, budget: Option<u64>) -> Result<Self> {
        let budget = budget.unwrap_or(u64::MAX);
        let mut needed = 0u64;
        for s in 0..store.shard_count() {
            needed = needed.max(resident_cost(
                store.schema(),
                store.node_count(),
                store.edge_count(s) as usize,
            ));
        }
        if budget < needed {
            return Err(GraphError::MemoryBudgetTooSmall { needed, budget });
        }
        let mut resident = Vec::with_capacity(store.shard_count());
        for _ in 0..store.shard_count() {
            resident.push(None);
        }
        Ok(ShardPool {
            store,
            budget: AtomicU64::new(budget),
            cancel: CancelToken::default(),
            state: Mutex::new(PoolState {
                resident,
                tick: 0,
                reserved: 0,
                loads: 0,
                evictions: 0,
            }),
            meter: ResidencyMeter::default(),
        })
    }

    /// Observe `token` in the pool's blocked waits: once it trips,
    /// [`Self::acquire`] and [`Self::reserve`] return
    /// [`GraphError::Cancelled`] instead of waiting for room.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// The effective byte budget.
    pub fn budget(&self) -> u64 {
        // ordering: Acquire pairs with the Release store in
        // `make_room`'s ShrinkBudget failpoint; without `fault-inject`
        // the budget is immutable after construction and any ordering
        // would do.
        self.budget.load(Ordering::Acquire)
    }

    /// The lock-free accounting mirror.
    pub fn meter(&self) -> &ResidencyMeter {
        &self.meter
    }

    /// Estimated resident bytes of shard `s`.
    pub fn shard_cost(&self, s: usize) -> u64 {
        resident_cost(
            self.store.schema(),
            self.store.node_count(),
            self.store.edge_count(s) as usize,
        )
    }

    fn accounted(state: &PoolState) -> u64 {
        let mut sum = state.reserved;
        for r in state.resident.iter().flatten() {
            sum += r.bytes;
        }
        sum
    }

    /// Evict unpinned LRU residents until `need` more bytes fit.
    /// `Ok(true)`: fits now. `Ok(false)`: blocked on pins — drop the
    /// lock and retry. `Err`: no schedule can ever fit `need`.
    fn make_room(&self, state: &mut PoolState, need: u64) -> Result<bool> {
        if let Some(failpoint::FaultKind::ShrinkBudget(b)) = failpoint::hit("pool.evict") {
            // ordering: Release pairs with the Acquire in `budget()`;
            // the injected shrink must be visible to every later
            // budget read. Fault-injection only — the budget never
            // changes otherwise.
            self.budget.store(self.budget().min(b), Ordering::Release);
        }
        while Self::accounted(state) + need > self.budget() {
            let mut victim: Option<(usize, u64)> = None;
            for (i, slot) in state.resident.iter().enumerate() {
                if let Some(r) = slot {
                    if r.pins == 0 && victim.is_none_or(|(_, lu)| r.last_used < lu) {
                        victim = Some((i, r.last_used));
                    }
                }
            }
            match victim {
                Some((v, _)) => {
                    if let Some(r) = state.resident[v].take() {
                        self.meter.sub(r.bytes);
                        state.evictions += 1;
                    }
                }
                None => {
                    // Everything resident is pinned (or reserved). If
                    // nothing is, no future release frees room: the
                    // budget is simply too small for `need`.
                    let held = state.reserved > 0 || state.resident.iter().any(|x| x.is_some());
                    if !held {
                        return Err(GraphError::MemoryBudgetTooSmall {
                            needed: need,
                            budget: self.budget(),
                        });
                    }
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Pin shard `s`, loading it (and evicting unpinned LRU residents)
    /// if absent. Blocks — releasing the lock between attempts — while
    /// every evictable byte is pinned; the model's blocked-wait
    /// self-loop proves this wait is not a deadlock.
    pub fn acquire(&self, s: usize) -> Result<ShardLease<'_, 's>> {
        loop {
            if self.cancel.is_cancelled() {
                return Err(GraphError::Cancelled);
            }
            {
                let mut st = self.state.lock();
                st.tick += 1;
                let tick = st.tick;
                if let Some(r) = st.resident[s].as_mut() {
                    r.pins += 1;
                    r.last_used = tick;
                    let graph = Arc::clone(&r.graph);
                    return Ok(ShardLease {
                        pool: self,
                        shard: s,
                        graph,
                    });
                }
                let need = self.shard_cost(s);
                if self.make_room(&mut st, need)? {
                    // Load inside the lock: the model's acquire is one
                    // atomic step (grm_analyze::model::shard), and
                    // holding the mutex through the load keeps the
                    // budget check and the insertion indivisible — a
                    // concurrent acquirer can neither double-load nor
                    // observe the budget mid-update. The trusted path
                    // is sound here: the pool only ever re-reads spills
                    // its own store wrote (checksummed, writer-validated
                    // rows), so the builder re-validation is pure
                    // overhead on this hot path.
                    let graph = Arc::new(self.store.load_shard_trusted(s)?);
                    self.meter.add(need);
                    st.loads += 1;
                    st.resident[s] = Some(Resident {
                        graph: Arc::clone(&graph),
                        bytes: need,
                        pins: 1,
                        last_used: tick,
                    });
                    return Ok(ShardLease {
                        pool: self,
                        shard: s,
                        graph,
                    });
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    fn release(&self, s: usize) {
        let mut st = self.state.lock();
        if let Some(r) = st.resident[s].as_mut() {
            r.pins = r.pins.saturating_sub(1);
        }
    }

    /// Reserve `bytes` of budget headroom for a transient resident,
    /// evicting unpinned shards to make room (same blocked-wait
    /// semantics as [`Self::acquire`]).
    pub fn reserve(&self, bytes: u64) -> Result<Reservation<'_, 's>> {
        loop {
            if self.cancel.is_cancelled() {
                return Err(GraphError::Cancelled);
            }
            {
                let mut st = self.state.lock();
                if self.make_room(&mut st, bytes)? {
                    st.reserved += bytes;
                    self.meter.add(bytes);
                    return Ok(Reservation { pool: self, bytes });
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    fn unreserve(&self, bytes: u64) {
        let mut st = self.state.lock();
        st.reserved = st.reserved.saturating_sub(bytes);
        self.meter.sub(bytes);
    }

    /// Drop every unpinned resident (a phase boundary, not budget
    /// pressure — not counted as an eviction).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        for slot in st.resident.iter_mut() {
            let evict = match slot {
                Some(r) => r.pins == 0,
                None => false,
            };
            if evict {
                if let Some(r) = slot.take() {
                    self.meter.sub(r.bytes);
                }
            }
        }
    }

    /// Activity snapshot.
    pub fn stats(&self) -> PoolStats {
        let st = self.state.lock();
        PoolStats {
            loads: st.loads,
            evictions: st.evictions,
            resident_bytes_peak: self.meter.peak(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompactModel, SchemaBuilder};

    fn tdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("grm_shard_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    /// 6 nodes over A (domain 4, dominant) and B (domain 2); 8 edges
    /// with one edge attribute.
    fn sample() -> SocialGraph {
        let schema = SchemaBuilder::new()
            .node_attr("A", 4, true)
            .node_attr("B", 2, false)
            .edge_attr("W", 2)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        for row in [[1, 1], [2, 2], [3, 1], [4, 2], [0, 1], [2, 0]] {
            b.add_node(&row).unwrap();
        }
        for (s, d, w) in [
            (0u32, 1u32, 1u16),
            (1, 2, 2),
            (2, 3, 1),
            (3, 4, 2),
            (4, 5, 1),
            (5, 0, 2),
            (1, 0, 1),
            (2, 0, 2),
        ] {
            b.add_edge(s, d, &[w]).unwrap();
        }
        b.build().unwrap()
    }

    fn edge_set(g: &SocialGraph) -> Vec<(u32, u32, Vec<u16>)> {
        let mut v: Vec<_> = g
            .edge_ids()
            .map(|e| (g.src(e), g.dst(e), g.edge_row(e).to_vec()))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn spec_tiles_the_domain_and_routes_null_to_shard_zero() {
        let g = sample();
        let spec = ShardSpec::new(g.schema(), 3);
        assert_eq!(spec.attr(), NodeAttrId(0), "A has the widest domain");
        assert_eq!(spec.shard_count(), 3);
        // Every non-null value lands in exactly one shard; ranges tile.
        for v in 1..=4u16 {
            let s = spec.shard_of(v);
            let (lo, hi) = spec.range(s);
            assert!(lo <= v && v <= hi, "value {v} outside its shard range");
        }
        assert_eq!(spec.shard_of(NULL), 0);
        // More shards than values: trailing shards are empty, no panic.
        let wide = ShardSpec::new(g.schema(), 7);
        for v in 1..=4u16 {
            let (lo, hi) = wide.range(wide.shard_of(v));
            assert!(lo <= v && v <= hi);
        }
    }

    #[test]
    fn store_round_trips_the_edge_multiset() {
        let g = sample();
        for shards in [1usize, 2, 3, 7] {
            let dir = tdir(&format!("rt{shards}"));
            let store =
                ShardStore::build_from_graph(&g, &dir, shards, CompactModel::MAX_EDGES).unwrap();
            assert_eq!(store.total_edges(), g.edge_count() as u64);
            assert_eq!(store.node_count(), g.node_count());
            let counts: u64 = (0..store.shard_count()).map(|s| store.edge_count(s)).sum();
            assert_eq!(counts, g.edge_count() as u64);
            // The union of shard graphs is the original edge multiset.
            let mut union = Vec::new();
            for s in 0..store.shard_count() {
                let sg = store.load_shard(s).unwrap();
                assert_eq!(sg.schema(), g.schema());
                assert_eq!(sg.node_count(), g.node_count());
                union.extend(edge_set(&sg));
                // Every edge in shard s carries a source value in s's range.
                let (lo, hi) = store.spec().range(s);
                for e in sg.edge_ids() {
                    let v = sg.src_attr(e, store.spec().attr());
                    assert!(v == NULL && s == 0 || (lo <= v && v <= hi));
                }
            }
            union.sort();
            assert_eq!(union, edge_set(&g));
            drop(store);
            assert!(
                fs::read_dir(&dir).unwrap().next().is_none(),
                "drop removes spill files"
            );
        }
    }

    #[test]
    fn per_shard_capacity_is_enforced_with_the_shards_remedy() {
        let g = sample();
        let dir = tdir("cap");
        // Cap below the biggest shard: finish() must fail and the
        // message must point at --shards.
        let err = ShardStore::build_from_graph(&g, &dir, 1, 4).unwrap_err();
        assert!(matches!(err, GraphError::TooManyEdges { .. }));
        assert!(err.to_string().contains("--shards"), "{err}");
        // Enough shards and the same cap passes: the check is per shard.
        let dir = tdir("cap_ok");
        let store = ShardStore::build_from_graph(&g, &dir, 4, 4).unwrap();
        for s in 0..store.shard_count() {
            assert!(store.edge_count(s) <= 4);
        }
    }

    #[test]
    fn slices_partition_by_each_key_kind() {
        let g = sample();
        let dir = tdir("slices");
        let store = ShardStore::build_from_graph(&g, &dir, 2, CompactModel::MAX_EDGES).unwrap();
        let keys = [
            SliceKey::Src(NodeAttrId(1)),
            SliceKey::Dst(NodeAttrId(0)),
            SliceKey::Edge(EdgeAttrId(0)),
        ];
        for key in keys {
            let sdir = tdir("slices_inner");
            let set = SliceSet::build(&store, key, &sdir).unwrap();
            let mut total = 0u64;
            for v in 1..=set.value_count() as u16 {
                let sg = set.load(v).unwrap();
                assert_eq!(sg.edge_count() as u64, set.edge_count(v));
                total += set.edge_count(v);
                for e in sg.edge_ids() {
                    let got = match key {
                        SliceKey::Src(a) => sg.src_attr(e, a),
                        SliceKey::Dst(a) => sg.dst_attr(e, a),
                        SliceKey::Edge(a) => sg.edge_attr(e, a),
                    };
                    assert_eq!(got, v, "slice {v} holds a foreign edge");
                }
            }
            // NULL-keyed edges are dropped, everything else lands once.
            let nulls = g
                .edge_ids()
                .filter(|&e| {
                    (match key {
                        SliceKey::Src(a) => g.src_attr(e, a),
                        SliceKey::Dst(a) => g.dst_attr(e, a),
                        SliceKey::Edge(a) => g.edge_attr(e, a),
                    }) == NULL
                })
                .count() as u64;
            assert_eq!(total + nulls, g.edge_count() as u64);
        }
    }

    #[test]
    fn pool_caches_pins_and_evicts_lru_within_budget() {
        let g = sample();
        let dir = tdir("pool");
        let store = ShardStore::build_from_graph(&g, &dir, 2, CompactModel::MAX_EDGES).unwrap();
        let one = resident_cost(store.schema(), store.node_count(), 8);
        // Budget fits one shard at a time.
        let pool = ShardPool::new(&store, Some(one)).unwrap();
        {
            let a = pool.acquire(0).unwrap();
            assert!(a.graph().edge_count() > 0 || store.edge_count(0) == 0);
            // Re-acquire while pinned: cache hit, no second load.
            let b = pool.acquire(0).unwrap();
            assert_eq!(b.shard(), 0);
        }
        assert_eq!(pool.stats().loads, 1, "second acquire was a hit");
        // Acquiring the other shard evicts the now-unpinned shard 0.
        {
            let _b = pool.acquire(1).unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.loads, 2);
        assert!(stats.evictions >= 1, "budget forced an eviction");
        assert!(
            stats.resident_bytes_peak <= pool.budget(),
            "peak {} exceeds budget {}",
            stats.resident_bytes_peak,
            pool.budget()
        );
        assert_eq!(
            pool.meter().current(),
            pool.shard_cost(1),
            "shard 1 resident"
        );
        pool.clear();
        assert_eq!(pool.meter().current(), 0);
    }

    #[test]
    fn pool_rejects_an_impossible_budget_eagerly() {
        let g = sample();
        let dir = tdir("pool_tiny");
        let store = ShardStore::build_from_graph(&g, &dir, 2, CompactModel::MAX_EDGES).unwrap();
        // Construction fails before any acquire: the budget cannot
        // hold the largest shard and no eviction schedule ever will.
        let err = ShardPool::new(&store, Some(1)).unwrap_err();
        let max_shard = (0..store.shard_count())
            .map(|s| {
                resident_cost(
                    store.schema(),
                    store.node_count(),
                    store.edge_count(s) as usize,
                )
            })
            .max()
            .unwrap();
        assert!(
            matches!(err, GraphError::MemoryBudgetTooSmall { needed, budget: 1 } if needed == max_shard),
            "{err:?}"
        );
        let msg = err.to_string();
        assert!(
            msg.contains("--memory-budget") && msg.contains("minimum viable"),
            "{msg}"
        );
        // A budget that holds every shard but not an oversized
        // transient reservation still fails deep, at the reservation.
        let pool = ShardPool::new(&store, Some(max_shard)).unwrap();
        let err = pool.reserve(max_shard + 1).unwrap_err();
        assert!(matches!(err, GraphError::MemoryBudgetTooSmall { .. }));
    }

    #[test]
    fn blocked_pool_waits_observe_cancellation() {
        let g = sample();
        let dir = tdir("pool_cancel");
        let store = ShardStore::build_from_graph(&g, &dir, 2, CompactModel::MAX_EDGES).unwrap();
        let one = (0..store.shard_count())
            .map(|s| {
                resident_cost(
                    store.schema(),
                    store.node_count(),
                    store.edge_count(s) as usize,
                )
            })
            .max()
            .unwrap();
        let token = CancelToken::new();
        let pool = ShardPool::new(&store, Some(one))
            .unwrap()
            .with_cancel(token.clone());
        let _pinned = pool.acquire(0).unwrap();
        token.cancel();
        // Shard 1 cannot fit while shard 0 stays pinned; instead of
        // spinning forever the blocked wait returns the typed error.
        assert!(matches!(
            pool.acquire(1).unwrap_err(),
            GraphError::Cancelled
        ));
        assert!(matches!(
            pool.reserve(one).unwrap_err(),
            GraphError::Cancelled
        ));
    }

    #[test]
    fn finish_renames_temps_and_sweeps_stale_ones() {
        let g = sample();
        let dir = tdir("tmp_rename");
        // A stale temp from a crashed earlier run is swept on create.
        fs::write(dir.join("shard-0.edges.tmp"), b"junk").unwrap();
        let store = ShardStore::build_from_graph(&g, &dir, 2, CompactModel::MAX_EDGES).unwrap();
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert!(
            names.iter().all(|n| !n.ends_with(".tmp")),
            "no temps survive finish: {names:?}"
        );
        assert_eq!(names.len(), 2, "one spill file per shard: {names:?}");
        assert_eq!(store.spill_retries(), 0);
    }

    #[test]
    fn corrupted_spill_files_surface_typed_errors_on_load() {
        let g = sample();
        let dir = tdir("corrupt");
        let store = ShardStore::build_from_graph(&g, &dir, 1, CompactModel::MAX_EDGES).unwrap();
        let path = dir.join("shard-0.edges");
        let pristine = fs::read(&path).unwrap();
        // Flip one payload byte (header is 12 bytes, chunk length
        // prefix 4 — byte 20 is inside the columns): checksum
        // mismatch.
        let mut bytes = pristine.clone();
        bytes[20] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = store.load_shard(0).unwrap_err();
        assert!(
            matches!(
                err,
                GraphError::ShardIo(ShardIoError::ChecksumMismatch { .. })
            ),
            "{err}"
        );
        // Truncate mid-structure: short read.
        let mut bytes = pristine.clone();
        bytes.truncate(bytes.len() - 3);
        fs::write(&path, &bytes).unwrap();
        let err = store.load_shard(0).unwrap_err();
        assert!(
            matches!(err, GraphError::ShardIo(ShardIoError::ShortRead { .. })),
            "{err}"
        );
        // Destroy the header: bad magic.
        fs::write(&path, b"NOTSPILLxxxx").unwrap();
        let err = store.load_shard(0).unwrap_err();
        assert!(
            matches!(err, GraphError::ShardIo(ShardIoError::BadMagic)),
            "{err}"
        );
        // Restore and the load works again — the store itself is fine.
        fs::write(&path, &pristine).unwrap();
        assert_eq!(edge_set(&store.load_shard(0).unwrap()), edge_set(&g));
    }

    #[test]
    fn trusted_load_is_bit_identical_to_the_validating_load() {
        let g = sample();
        for shards in [1, 2, 3] {
            let dir = tdir(&format!("trusted{shards}"));
            let store =
                ShardStore::build_from_graph(&g, &dir, shards, CompactModel::MAX_EDGES).unwrap();
            for s in 0..shards {
                let validated = store.load_shard(s).unwrap();
                let trusted = store.load_shard_trusted(s).unwrap();
                // Bit-identical columns, not just the same edge set:
                // the serialized form covers schema, node rows,
                // endpoint arrays (in spill order), and edge rows.
                assert_eq!(
                    serde_json::to_string(&validated).unwrap(),
                    serde_json::to_string(&trusted).unwrap(),
                    "shard {s} of {shards}"
                );
            }
        }
    }

    #[test]
    fn trusted_load_still_rejects_corruption_and_capacity() {
        let g = sample();
        let dir = tdir("trusted_corrupt");
        let store = ShardStore::build_from_graph(&g, &dir, 1, CompactModel::MAX_EDGES).unwrap();
        let path = dir.join("shard-0.edges");
        let pristine = fs::read(&path).unwrap();
        // The trusted path skips row re-validation, not integrity: a
        // flipped payload byte is still a checksum mismatch…
        let mut bytes = pristine.clone();
        bytes[20] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = store.load_shard_trusted(0).unwrap_err();
        assert!(
            matches!(
                err,
                GraphError::ShardIo(ShardIoError::ChecksumMismatch { .. })
            ),
            "{err}"
        );
        // …and truncation is still a short read.
        let mut bytes = pristine.clone();
        bytes.truncate(bytes.len() - 3);
        fs::write(&path, &bytes).unwrap();
        let err = store.load_shard_trusted(0).unwrap_err();
        assert!(
            matches!(err, GraphError::ShardIo(ShardIoError::ShortRead { .. })),
            "{err}"
        );
        fs::write(&path, &pristine).unwrap();
        assert_eq!(
            edge_set(&store.load_shard_trusted(0).unwrap()),
            edge_set(&g)
        );
    }

    #[test]
    fn reservations_share_the_budget_with_shards() {
        let g = sample();
        let dir = tdir("pool_reserve");
        let store = ShardStore::build_from_graph(&g, &dir, 2, CompactModel::MAX_EDGES).unwrap();
        let one = resident_cost(store.schema(), store.node_count(), 8);
        let pool = ShardPool::new(&store, Some(one)).unwrap();
        {
            let _l = pool.acquire(0).unwrap();
        }
        // A reservation evicts the unpinned shard to make room.
        let r = pool.reserve(one).unwrap();
        assert_eq!(pool.meter().current(), one);
        assert!(pool.stats().evictions >= 1);
        drop(r);
        assert_eq!(pool.meter().current(), 0);
        assert!(pool.stats().resident_bytes_peak <= pool.budget());
    }

    #[test]
    fn streaming_writer_matches_build_from_graph() {
        let g = sample();
        let d1 = tdir("stream_a");
        let d2 = tdir("stream_b");
        let built = ShardStore::build_from_graph(&g, &d1, 3, CompactModel::MAX_EDGES).unwrap();
        let mut w =
            ShardStoreWriter::create(g.schema().clone(), &d2, 3, CompactModel::MAX_EDGES).unwrap();
        for n in g.node_ids() {
            w.add_node(g.node_row(n)).unwrap();
        }
        for e in g.edge_ids() {
            w.add_edge(g.src(e), g.dst(e), g.edge_row(e)).unwrap();
        }
        let streamed = w.finish().unwrap();
        for s in 0..3 {
            assert_eq!(streamed.edge_count(s), built.edge_count(s));
            assert_eq!(
                edge_set(&streamed.load_shard(s).unwrap()),
                edge_set(&built.load_shard(s).unwrap())
            );
        }
    }

    #[test]
    fn writer_validates_rows_and_endpoints() {
        let g = sample();
        let dir = tdir("validate");
        let mut w =
            ShardStoreWriter::create(g.schema().clone(), &dir, 2, CompactModel::MAX_EDGES).unwrap();
        assert!(w.add_node(&[9, 1]).is_err(), "out of domain");
        w.add_node(&[1, 1]).unwrap();
        assert!(w.add_edge(0, 5, &[1]).is_err(), "dangling endpoint");
        assert!(w.add_edge(0, 0, &[7]).is_err(), "edge value out of domain");
        assert!(w.add_edge(0, 0, &[1]).is_ok(), "self-loops accepted");
    }
}
