//! The attributed, directed social network `G = (V, E)` of §III.
//!
//! Nodes and edges each carry a fixed-width row of discrete attribute
//! values. Node attributes are stored **once per node** (row-major), never
//! per incident edge — this is the storage discipline that the compact data
//! model of §IV-A builds on and that the single-table representation
//! ([`crate::SingleTable`], used by baseline BL1) deliberately violates.

use crate::error::Result;
use crate::schema::Schema;
use crate::value::{AttrValue, EdgeAttrId, EdgeId, NodeAttrId, NodeId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A directed social network with multidimensional nodes and edges.
///
/// Construct via [`crate::GraphBuilder`]. An undirected tie is represented
/// by two directed edges in opposite directions (§III).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SocialGraph {
    schema: Arc<Schema>,
    /// `node_count × node_attr_count`, row-major.
    node_values: Vec<AttrValue>,
    /// Edge sources, indexed by `EdgeId`.
    srcs: Vec<NodeId>,
    /// Edge destinations, indexed by `EdgeId`.
    dsts: Vec<NodeId>,
    /// `edge_count × edge_attr_count`, row-major.
    edge_values: Vec<AttrValue>,
}

impl SocialGraph {
    pub(crate) fn from_parts(
        schema: Arc<Schema>,
        node_values: Vec<AttrValue>,
        srcs: Vec<NodeId>,
        dsts: Vec<NodeId>,
        edge_values: Vec<AttrValue>,
    ) -> Self {
        debug_assert_eq!(srcs.len(), dsts.len());
        debug_assert_eq!(node_values.len() % schema.node_attr_count().max(1), 0);
        SocialGraph {
            schema,
            node_values,
            srcs,
            dsts,
            edge_values,
        }
    }

    /// The attribute schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// `|V|`.
    pub fn node_count(&self) -> usize {
        if self.schema.node_attr_count() == 0 {
            0
        } else {
            self.node_values.len() / self.schema.node_attr_count()
        }
    }

    /// `|E|`.
    pub fn edge_count(&self) -> usize {
        self.srcs.len()
    }

    /// Value of node attribute `a` on node `n`.
    #[inline]
    pub fn node_attr(&self, n: NodeId, a: NodeAttrId) -> AttrValue {
        self.node_values[n as usize * self.schema.node_attr_count() + a.index()]
    }

    /// The full attribute row of node `n`.
    #[inline]
    pub fn node_row(&self, n: NodeId) -> &[AttrValue] {
        let w = self.schema.node_attr_count();
        &self.node_values[n as usize * w..(n as usize + 1) * w]
    }

    /// Source node of edge `e`.
    #[inline]
    pub fn src(&self, e: EdgeId) -> NodeId {
        self.srcs[e as usize]
    }

    /// Destination node of edge `e`.
    #[inline]
    pub fn dst(&self, e: EdgeId) -> NodeId {
        self.dsts[e as usize]
    }

    /// Value of edge attribute `a` on edge `e`.
    #[inline]
    pub fn edge_attr(&self, e: EdgeId, a: EdgeAttrId) -> AttrValue {
        self.edge_values[e as usize * self.schema.edge_attr_count() + a.index()]
    }

    /// The full attribute row of edge `e` (empty slice if the schema has no
    /// edge attributes).
    #[inline]
    pub fn edge_row(&self, e: EdgeId) -> &[AttrValue] {
        let w = self.schema.edge_attr_count();
        &self.edge_values[e as usize * w..(e as usize + 1) * w]
    }

    /// Value of node attribute `a` on the *source* of edge `e` — the key
    /// function used when partitioning edges on an LHS dimension.
    #[inline]
    pub fn src_attr(&self, e: EdgeId, a: NodeAttrId) -> AttrValue {
        self.node_attr(self.src(e), a)
    }

    /// Value of node attribute `a` on the *destination* of edge `e` — the
    /// key function used when partitioning edges on an RHS dimension.
    #[inline]
    pub fn dst_attr(&self, e: EdgeId, a: NodeAttrId) -> AttrValue {
        self.node_attr(self.dst(e), a)
    }

    /// Iterate over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        0..self.edge_count() as EdgeId
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        0..self.node_count() as NodeId
    }

    /// Out-degree of every node (computed; the compact model caches this
    /// as the LArray `Out` column).
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.node_count()];
        for &s in &self.srcs {
            d[s as usize] += 1;
        }
        d
    }

    /// In-degree of every node.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.node_count()];
        for &t in &self.dsts {
            d[t as usize] += 1;
        }
        d
    }

    /// Re-validate every stored value against the schema. The builder
    /// guarantees this at construction; the check exists for graphs
    /// deserialized from untrusted bytes.
    pub fn validate(&self) -> Result<()> {
        let n = self.node_count();
        for i in 0..n {
            self.schema.check_node_values(self.node_row(i as NodeId))?;
        }
        for e in self.edge_ids() {
            self.schema.check_edge_values(self.edge_row(e))?;
            for end in [self.src(e), self.dst(e)] {
                if end as usize >= n {
                    return Err(crate::error::GraphError::DanglingEndpoint {
                        node: end,
                        nodes: n,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{GraphBuilder, SchemaBuilder};

    #[test]
    fn basic_accessors() {
        let schema = SchemaBuilder::new()
            .node_attr("A", 3, true)
            .node_attr("B", 2, false)
            .edge_attr("W", 2)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let n0 = b.add_node(&[1, 2]).unwrap();
        let n1 = b.add_node(&[3, 1]).unwrap();
        let n2 = b.add_node(&[2, 0]).unwrap();
        b.add_edge(n0, n1, &[1]).unwrap();
        b.add_edge(n1, n2, &[2]).unwrap();
        b.add_edge(n0, n2, &[1]).unwrap();
        let g = b.build().unwrap();

        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.node_attr(n1, crate::NodeAttrId(0)), 3);
        assert_eq!(g.node_row(n2), &[2, 0]);
        assert_eq!(g.src(1), n1);
        assert_eq!(g.dst(1), n2);
        assert_eq!(g.edge_attr(1, crate::EdgeAttrId(0)), 2);
        assert_eq!(g.src_attr(2, crate::NodeAttrId(1)), 2);
        assert_eq!(g.dst_attr(2, crate::NodeAttrId(0)), 2);
        assert_eq!(g.out_degrees(), vec![2, 1, 0]);
        assert_eq!(g.in_degrees(), vec![0, 1, 2]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn empty_edge_schema_has_empty_rows() {
        let schema = SchemaBuilder::new()
            .node_attr("A", 2, false)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let n0 = b.add_node(&[1]).unwrap();
        let n1 = b.add_node(&[2]).unwrap();
        b.add_edge(n0, n1, &[]).unwrap();
        let g = b.build().unwrap();
        assert!(g.edge_row(0).is_empty());
    }
}
