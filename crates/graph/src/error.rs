//! Error type shared by the graph substrate.

use std::fmt;

/// Integrity failures detected while reading a shard spill file back
/// from disk. Every spill file carries a magic/version header and every
/// chunk a trailing checksum (see [`crate::io`]), so a torn write, a
/// truncated file, or bit rot surfaces as a typed error here instead of
/// a decoded garbage graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardIoError {
    /// The file does not start with the spill magic — not a spill file,
    /// or its header was destroyed.
    BadMagic,
    /// The file's format version is not the one this build writes.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// A chunk's recomputed checksum does not match the stored one —
    /// the payload was corrupted after it was written.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the payload read back.
        computed: u64,
    },
    /// The file ended mid-structure (torn write or truncation).
    ShortRead {
        /// Which structure was being read when the bytes ran out.
        context: &'static str,
    },
}

impl fmt::Display for ShardIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardIoError::BadMagic => {
                write!(f, "spill file does not start with the GRMSPILL magic")
            }
            ShardIoError::VersionMismatch { found, expected } => {
                write!(f, "spill file version {found}, this build reads {expected}")
            }
            ShardIoError::ChecksumMismatch { stored, computed } => write!(
                f,
                "spill chunk checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            ShardIoError::ShortRead { context } => {
                write!(f, "spill file truncated while reading {context}")
            }
        }
    }
}

/// Errors produced while building, validating, or loading graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant docs describe the named fields
pub enum GraphError {
    /// A schema was declared with no attributes at all; GR mining needs at
    /// least one node attribute to describe groups.
    EmptySchema,
    /// An attribute was declared with a zero domain (only null possible).
    EmptyDomain { attr: String },
    /// Two attributes in the same namespace (node or edge) share a name.
    DuplicateAttribute { attr: String },
    /// A value-name dictionary does not match its declared domain size.
    DictionarySize {
        attr: String,
        expected: usize,
        got: usize,
    },
    /// A node/edge row supplied the wrong number of attribute values.
    ArityMismatch { expected: usize, got: usize },
    /// An attribute value exceeds its declared domain size.
    ValueOutOfDomain {
        attr: String,
        value: u16,
        domain: u16,
    },
    /// An edge endpoint references a node that does not exist. `nodes`
    /// is a `usize` so a graph that has grown past the u32 id space can
    /// still report its true size.
    DanglingEndpoint { node: u32, nodes: usize },
    /// Adding one more node would exhaust the u32 node-id space
    /// ([`crate::value::NodeId`]); ids are assigned by
    /// [`crate::value::next_node_id`], never by raw `as` narrowing.
    TooManyNodes { nodes: usize },
    /// Adding one more edge would exhaust the u32 edge-id space
    /// ([`crate::value::EdgeId`]).
    TooManyEdgeIds { edges: usize },
    /// The graph has more edges than the compact model can index
    /// (EArray positions are `u32`).
    TooManyEdges { edges: usize, max: usize },
    /// A shard-pool memory budget cannot hold even one resident shard
    /// (see [`crate::shard::ShardPool`]).
    MemoryBudgetTooSmall { needed: u64, budget: u64 },
    /// A self-loop was supplied while the builder forbids them.
    SelfLoop { node: u32 },
    /// A partition pass saw a key at or beyond its declared bucket count
    /// (see [`crate::sort::PartitionArena`]). Checked in release builds:
    /// an unchecked oversized key would silently corrupt the histogram.
    KeyOutOfRange { key: u16, bucket_count: usize },
    /// A key column handed to a partition pass does not cover every
    /// position of the data slice — reported instead of fabricating a
    /// key for positions the column cannot describe.
    ColumnTooShort { len: usize, index: usize },
    /// Unknown attribute or value name in a lookup.
    UnknownName { name: String },
    /// Malformed input while parsing a serialized graph.
    Parse { line: usize, message: String },
    /// Underlying I/O failure (message-only so the error stays `Clone + Eq`).
    Io { message: String },
    /// A shard spill file failed an integrity check on read-back.
    ShardIo(ShardIoError),
    /// The operation observed a tripped [`crate::cancel::CancelToken`]
    /// and stopped cooperatively.
    Cancelled,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptySchema => {
                write!(f, "schema has no node attributes")
            }
            GraphError::EmptyDomain { attr } => {
                write!(f, "attribute `{attr}` has an empty domain")
            }
            GraphError::DuplicateAttribute { attr } => {
                write!(f, "duplicate attribute name `{attr}`")
            }
            GraphError::DictionarySize {
                attr,
                expected,
                got,
            } => write!(
                f,
                "value dictionary for `{attr}` has {got} entries, expected {expected} (domain + null)"
            ),
            GraphError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} attribute values, got {got}")
            }
            GraphError::ValueOutOfDomain {
                attr,
                value,
                domain,
            } => write!(
                f,
                "value {value} out of domain 0..={domain} for attribute `{attr}`"
            ),
            GraphError::DanglingEndpoint { node, nodes } => {
                write!(f, "edge endpoint {node} out of range (graph has {nodes} nodes)")
            }
            GraphError::TooManyNodes { nodes } => write!(
                f,
                "graph already has {nodes} nodes; adding another would overflow the u32 \
                 node-id space"
            ),
            GraphError::TooManyEdgeIds { edges } => write!(
                f,
                "graph already has {edges} edges; adding another would overflow the u32 \
                 edge-id space"
            ),
            GraphError::TooManyEdges { edges, max } => write!(
                f,
                "graph has {edges} edges, exceeding the compact model's capacity of {max} \
                 (EArray positions are u32); mine with --shards so every per-shard model \
                 stays under the cap"
            ),
            GraphError::MemoryBudgetTooSmall { needed, budget } => write!(
                f,
                "memory budget of {budget} bytes cannot hold a {needed}-byte resident shard \
                 (minimum viable budget: {needed} bytes); raise --memory-budget or increase \
                 --shards"
            ),
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} rejected by builder policy")
            }
            GraphError::KeyOutOfRange { key, bucket_count } => write!(
                f,
                "partition key {key} out of range for {bucket_count} buckets"
            ),
            GraphError::ColumnTooShort { len, index } => write!(
                f,
                "key column of length {len} cannot cover position {index}"
            ),
            GraphError::UnknownName { name } => {
                write!(f, "unknown attribute or value name `{name}`")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io { message } => write!(f, "i/o error: {message}"),
            GraphError::ShardIo(e) => write!(f, "shard spill integrity: {e}"),
            GraphError::Cancelled => write!(f, "operation cancelled"),
        }
    }
}

impl From<ShardIoError> for GraphError {
    fn from(e: ShardIoError) -> Self {
        GraphError::ShardIo(e)
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io {
            message: e.to_string(),
        }
    }
}

/// Convenience alias used across the substrate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_facts() {
        let e = GraphError::ValueOutOfDomain {
            attr: "Age".into(),
            value: 99,
            domain: 11,
        };
        let s = e.to_string();
        assert!(s.contains("Age") && s.contains("99") && s.contains("11"));

        let e = GraphError::DanglingEndpoint { node: 7, nodes: 3 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io { .. }));
        assert!(e.to_string().contains("gone"));
    }
}
