//! CSV import for real-world datasets.
//!
//! The GRMGRAPH format (`crate::io`) is this library's native
//! serialization; most public datasets, however, ship as a node table and
//! an edge list (the SNAP Pokec dump the paper uses is exactly that). This
//! module loads such pairs against a user-declared [`Schema`]:
//!
//! * **nodes file** — header row naming an id column plus attribute
//!   columns (any subset/order of the schema's node attributes; missing
//!   columns and empty cells become null);
//! * **edges file** — header row with source and destination id columns
//!   plus optional edge-attribute columns.
//!
//! Cell values may be value *names* (resolved through the schema's
//! dictionaries) or numeric codes. Node ids are arbitrary strings, mapped
//! densely in order of first appearance. The delimiter is configurable
//! (`,` default, `\t` for TSVs). Quoting is not interpreted — the public
//! network datasets this targets are plain unquoted tables.

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::SocialGraph;
use crate::schema::Schema;
use crate::value::{AttrValue, NodeAttrId};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};

/// Options for CSV loading.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Name of the node-id column in the nodes file (default `id`).
    pub node_id_column: String,
    /// Names of the source/destination columns in the edges file
    /// (default `src`, `dst`).
    pub src_column: String,
    /// See [`CsvOptions::src_column`].
    pub dst_column: String,
    /// Create nodes (with all-null attributes) for ids that appear only in
    /// the edges file (default `false`: unknown endpoints are an error).
    pub implicit_nodes: bool,
    /// Permit self-loops (default `false`).
    pub allow_self_loops: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            node_id_column: "id".into(),
            src_column: "src".into(),
            dst_column: "dst".into(),
            implicit_nodes: false,
            allow_self_loops: false,
        }
    }
}

impl CsvOptions {
    /// Tab-separated variant.
    pub fn tsv() -> Self {
        CsvOptions {
            delimiter: '\t',
            ..Self::default()
        }
    }
}

/// Load a graph from a nodes CSV and an edges CSV against `schema`.
pub fn read_csv_graph<N: Read, E: Read>(
    schema: Schema,
    nodes: N,
    edges: E,
    options: &CsvOptions,
) -> Result<SocialGraph> {
    let mut builder = GraphBuilder::new(schema);
    if options.allow_self_loops {
        builder = builder.allow_self_loops();
    }
    let mut ids: HashMap<String, u32> = HashMap::new();

    // --- nodes ----------------------------------------------------------
    let mut lines = BufReader::new(nodes).lines().enumerate();
    let (ln, header) = next_line(&mut lines, "nodes header")?;
    let cols: Vec<String> = split(&header, options.delimiter);
    let id_col = find_col(&cols, &options.node_id_column, ln)?;
    // Map CSV columns to node attributes (unknown columns are ignored so
    // extra metadata columns don't break the import).
    let attr_cols: Vec<(usize, NodeAttrId)> = cols
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != id_col)
        .filter_map(|(i, name)| {
            builder
                .schema()
                .node_attr_by_name(name)
                .ok()
                .map(|a| (i, a))
        })
        .collect();

    let na = builder.schema().node_attr_count();
    let mut row = vec![0 as AttrValue; na];
    while let Some((ln, line)) = maybe_line(&mut lines)? {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split(&line, options.delimiter);
        let id_raw = fields
            .get(id_col)
            .ok_or(parse_err(ln, "missing id"))?
            .clone();
        row.iter_mut().for_each(|v| *v = 0);
        for &(col, attr) in &attr_cols {
            let raw = fields.get(col).map(|s| s.trim()).unwrap_or("");
            row[attr.index()] = resolve_node_value(&builder, attr, raw, ln)?;
        }
        let node = builder.add_node(&row).map_err(|e| wrap(ln, e))?;
        if ids.insert(id_raw.clone(), node).is_some() {
            return Err(parse_err(ln, &format!("duplicate node id `{id_raw}`")));
        }
    }

    // --- edges ----------------------------------------------------------
    let mut lines = BufReader::new(edges).lines().enumerate();
    let (ln, header) = next_line(&mut lines, "edges header")?;
    let cols: Vec<String> = split(&header, options.delimiter);
    let src_col = find_col(&cols, &options.src_column, ln)?;
    let dst_col = find_col(&cols, &options.dst_column, ln)?;
    let eattr_cols: Vec<(usize, grm_graph_edge::EdgeAttrId)> = cols
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != src_col && i != dst_col)
        .filter_map(|(i, name)| {
            builder
                .schema()
                .edge_attr_by_name(name)
                .ok()
                .map(|a| (i, a))
        })
        .collect();

    let ea = builder.schema().edge_attr_count();
    let mut erow = vec![0 as AttrValue; ea];
    while let Some((ln, line)) = maybe_line(&mut lines)? {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split(&line, options.delimiter);
        let src = endpoint(&mut builder, &mut ids, &fields, src_col, ln, options)?;
        let dst = endpoint(&mut builder, &mut ids, &fields, dst_col, ln, options)?;
        erow.iter_mut().for_each(|v| *v = 0);
        for &(col, attr) in &eattr_cols {
            let raw = fields.get(col).map(|s| s.trim()).unwrap_or("");
            erow[attr.index()] = resolve_edge_value(&builder, attr, raw, ln)?;
        }
        builder.add_edge(src, dst, &erow).map_err(|e| wrap(ln, e))?;
    }

    builder.build()
}

// A tiny alias module so the import list above stays readable without
// exposing another public name.
mod grm_graph_edge {
    pub use crate::value::EdgeAttrId;
}

fn split(line: &str, delim: char) -> Vec<String> {
    line.split(delim).map(|s| s.trim().to_string()).collect()
}

fn find_col(cols: &[String], name: &str, ln: usize) -> Result<usize> {
    cols.iter()
        .position(|c| c.eq_ignore_ascii_case(name))
        .ok_or(parse_err(ln, &format!("missing column `{name}`")))
}

type Lines<R> = std::iter::Enumerate<std::io::Lines<BufReader<R>>>;

fn next_line<R: Read>(lines: &mut Lines<R>, what: &str) -> Result<(usize, String)> {
    maybe_line(lines)?.ok_or(parse_err(0, &format!("missing {what}")))
}

fn maybe_line<R: Read>(lines: &mut Lines<R>) -> Result<Option<(usize, String)>> {
    match lines.next() {
        None => Ok(None),
        Some((i, Ok(l))) => Ok(Some((i + 1, l))),
        Some((i, Err(e))) => Err(parse_err(i + 1, &e.to_string())),
    }
}

fn parse_err(line: usize, message: &str) -> GraphError {
    GraphError::Parse {
        line,
        message: message.to_string(),
    }
}

fn wrap(ln: usize, e: GraphError) -> GraphError {
    parse_err(ln, &e.to_string())
}

fn resolve_node_value(
    builder: &GraphBuilder,
    attr: NodeAttrId,
    raw: &str,
    ln: usize,
) -> Result<AttrValue> {
    if raw.is_empty() {
        return Ok(0);
    }
    let def = builder.schema().node_attr(attr);
    def.value_by_name(raw)
        .or_else(|| raw.parse().ok().filter(|&v| v <= def.domain_size()))
        .ok_or(parse_err(
            ln,
            &format!("bad value `{raw}` for attribute `{}`", def.name()),
        ))
}

fn resolve_edge_value(
    builder: &GraphBuilder,
    attr: grm_graph_edge::EdgeAttrId,
    raw: &str,
    ln: usize,
) -> Result<AttrValue> {
    if raw.is_empty() {
        return Ok(0);
    }
    let def = builder.schema().edge_attr(attr);
    def.value_by_name(raw)
        .or_else(|| raw.parse().ok().filter(|&v| v <= def.domain_size()))
        .ok_or(parse_err(
            ln,
            &format!("bad value `{raw}` for attribute `{}`", def.name()),
        ))
}

fn endpoint(
    builder: &mut GraphBuilder,
    ids: &mut HashMap<String, u32>,
    fields: &[String],
    col: usize,
    ln: usize,
    options: &CsvOptions,
) -> Result<u32> {
    let raw = fields.get(col).ok_or(parse_err(ln, "missing endpoint"))?;
    if let Some(&n) = ids.get(raw) {
        return Ok(n);
    }
    if options.implicit_nodes {
        let row = vec![0 as AttrValue; builder.schema().node_attr_count()];
        let n = builder.add_node(&row).map_err(|e| wrap(ln, e))?;
        ids.insert(raw.clone(), n);
        Ok(n)
    } else {
        Err(parse_err(ln, &format!("unknown node id `{raw}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchemaBuilder;

    fn schema() -> Schema {
        SchemaBuilder::new()
            .node_attr_named("SEX", false, ["F", "M"])
            .node_attr_named("EDU", true, ["HS", "College", "Grad"])
            .edge_attr_named("TYPE", ["dates", "friends"])
            .build()
            .unwrap()
    }

    #[test]
    fn loads_names_and_codes() {
        let nodes = "id,SEX,EDU\nu1,F,Grad\nu2,M,2\nu3,,HS\n";
        let edges = "src,dst,TYPE\nu1,u2,dates\nu2,u3,2\n";
        let g = read_csv_graph(
            schema(),
            nodes.as_bytes(),
            edges.as_bytes(),
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_row(0), &[1, 3]);
        assert_eq!(g.node_row(1), &[2, 2], "numeric codes accepted");
        assert_eq!(g.node_row(2), &[0, 1], "empty cell becomes null");
        assert_eq!(g.edge_attr(0, crate::EdgeAttrId(0)), 1);
        assert_eq!(g.edge_attr(1, crate::EdgeAttrId(0)), 2);
    }

    #[test]
    fn column_order_and_extras_are_flexible() {
        let nodes = "EDU,ignored,id,SEX\nGrad,x,a,F\nHS,y,b,M\n";
        let edges = "dst,src\nb,a\n";
        let g = read_csv_graph(
            schema(),
            nodes.as_bytes(),
            edges.as_bytes(),
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(g.node_row(0), &[1, 3]);
        assert_eq!((g.src(0), g.dst(0)), (0, 1));
        assert_eq!(g.edge_row(0), &[0], "absent edge attr column -> null");
    }

    #[test]
    fn tsv_variant() {
        let nodes = "id\tSEX\tEDU\nu1\tF\tGrad\nu2\tM\tHS\n";
        let edges = "src\tdst\tTYPE\nu1\tu2\tfriends\n";
        let g = read_csv_graph(
            schema(),
            nodes.as_bytes(),
            edges.as_bytes(),
            &CsvOptions::tsv(),
        )
        .unwrap();
        assert_eq!(g.edge_attr(0, crate::EdgeAttrId(0)), 2);
    }

    #[test]
    fn implicit_nodes_policy() {
        let nodes = "id,SEX,EDU\nu1,F,Grad\n";
        let edges = "src,dst\nu1,ghost\n";
        let err = read_csv_graph(
            schema(),
            nodes.as_bytes(),
            edges.as_bytes(),
            &CsvOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("ghost"));

        let opts = CsvOptions {
            implicit_nodes: true,
            ..CsvOptions::default()
        };
        let g = read_csv_graph(schema(), nodes.as_bytes(), edges.as_bytes(), &opts).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.node_row(1), &[0, 0], "implicit node is all-null");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let nodes = "id,SEX,EDU\nu1,F,Grad\nu1,M,HS\n";
        let edges = "src,dst\n";
        let err = read_csv_graph(
            schema(),
            nodes.as_bytes(),
            edges.as_bytes(),
            &CsvOptions::default(),
        )
        .unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("duplicate"));
            }
            other => panic!("unexpected {other:?}"),
        }

        let nodes = "id,SEX,EDU\nu1,F,Professor\n";
        let err = read_csv_graph(
            schema(),
            nodes.as_bytes(),
            "src,dst\n".as_bytes(),
            &CsvOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("Professor"));
    }

    #[test]
    fn missing_required_columns_rejected() {
        let err = read_csv_graph(
            schema(),
            "name,SEX\nu1,F\n".as_bytes(),
            "src,dst\n".as_bytes(),
            &CsvOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("`id`"));

        let err = read_csv_graph(
            schema(),
            "id,SEX\nu1,F\n".as_bytes(),
            "from,to\n".as_bytes(),
            &CsvOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("`src`"));
    }

    #[test]
    fn self_loop_policy_respected() {
        let nodes = "id,SEX,EDU\nu1,F,Grad\n";
        let edges = "src,dst\nu1,u1\n";
        assert!(read_csv_graph(
            schema(),
            nodes.as_bytes(),
            edges.as_bytes(),
            &CsvOptions::default()
        )
        .is_err());
        let opts = CsvOptions {
            allow_self_loops: true,
            ..CsvOptions::default()
        };
        let g = read_csv_graph(schema(), nodes.as_bytes(), edges.as_bytes(), &opts).unwrap();
        assert_eq!(g.edge_count(), 1);
    }
}
