//! Attribute values and identifiers.
//!
//! Every attribute `A` in the paper (§III) has a discrete domain
//! `{0, 1, …, |A|}` where `0` represents the *null* value. We encode values
//! as [`AttrValue`] (`u16`), which comfortably covers the largest domain in
//! the paper's evaluation (Pokec `Region` with 188 values) with a compact
//! in-memory footprint — the compact data model of §IV-A stores one cell per
//! (node, attribute) pair, so cell width matters.

use crate::error::GraphError;
use serde::{Deserialize, Serialize};

/// A single attribute value. `0` is the null value ([`NULL`]); real values
/// are `1..=domain_size`.
pub type AttrValue = u16;

/// The null value: "attribute not filled in" (§III). Descriptors never
/// contain null, and partitions on null are skipped during enumeration,
/// but edges incident to null-valued nodes still count toward supports of
/// patterns that do not constrain that attribute.
pub const NULL: AttrValue = 0;

/// Index of a node attribute within a [`crate::Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeAttrId(pub u8);

/// Index of an edge attribute within a [`crate::Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeAttrId(pub u8);

impl NodeAttrId {
    /// The attribute index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeAttrId {
    /// The attribute index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeAttrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for EdgeAttrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifier of a node in a [`crate::SocialGraph`]. Dense, zero-based.
pub type NodeId = u32;

/// Identifier of an edge in a [`crate::SocialGraph`]. Dense, zero-based,
/// in insertion order.
pub type EdgeId = u32;

/// The id the next node would get, or [`GraphError::TooManyNodes`] once
/// the u32 id space is exhausted. Ids are dense, so the next id is the
/// current count — but the count lives in `usize` and must not be
/// narrowed blindly: past 2^32 nodes a raw `as` cast would silently wrap
/// ids back to 0 and alias every subsequent edge endpoint.
pub fn next_node_id(count: usize) -> Result<NodeId, GraphError> {
    count
        .try_into()
        .map_err(|_| GraphError::TooManyNodes { nodes: count })
}

/// The id the next edge would get, or [`GraphError::TooManyEdgeIds`]
/// once the u32 id space is exhausted.
pub fn next_edge_id(count: usize) -> Result<EdgeId, GraphError> {
    count
        .try_into()
        .map_err(|_| GraphError::TooManyEdgeIds { edges: count })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_zero() {
        assert_eq!(NULL, 0);
    }

    #[test]
    fn id_assignment_errors_at_the_u32_boundary() {
        // Dense ids: the 2^32-th node/edge is the first that cannot be
        // named by a u32 and must be refused, not wrapped to id 0.
        assert_eq!(next_node_id(0), Ok(0));
        assert_eq!(next_node_id(u32::MAX as usize), Ok(u32::MAX));
        assert_eq!(
            next_node_id(u32::MAX as usize + 1),
            Err(GraphError::TooManyNodes {
                nodes: u32::MAX as usize + 1
            })
        );
        assert_eq!(next_edge_id(7), Ok(7));
        assert_eq!(
            next_edge_id(u32::MAX as usize + 1),
            Err(GraphError::TooManyEdgeIds {
                edges: u32::MAX as usize + 1
            })
        );
    }

    #[test]
    fn attr_ids_index() {
        assert_eq!(NodeAttrId(3).index(), 3);
        assert_eq!(EdgeAttrId(200).index(), 200);
    }

    #[test]
    fn attr_ids_display() {
        assert_eq!(NodeAttrId(2).to_string(), "n2");
        assert_eq!(EdgeAttrId(1).to_string(), "e1");
    }

    #[test]
    fn attr_ids_ordering() {
        assert!(NodeAttrId(1) < NodeAttrId(2));
        assert!(EdgeAttrId(0) < EdgeAttrId(1));
    }
}
