//! Counting-sort partitioning.
//!
//! GRMiner (§V) "adopts a linear sorting method, Counting Sort, to sort and
//! get the aggregate of each partition. It sorts in O(N) time without any
//! key comparisons." This module provides exactly that primitive: given a
//! slice of item ids and a key function mapping each id to an attribute
//! value in `0..=domain_size`, it reorders the slice so that items with
//! equal keys are contiguous and returns the `(value, range)` partitions.
//!
//! The sort is **stable** (scatter in scan order), which keeps partition
//! contents deterministic across runs — important because the paper's rank
//! (Def. 5) breaks ties alphabetically and our tests pin exact outputs.

use crate::value::AttrValue;
use std::ops::Range;

/// One partition produced by [`partition_in_place`]: all items whose key is
/// `value` occupy `range` within the reordered slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// The shared key value of the partition.
    pub value: AttrValue,
    /// The index range within the reordered slice.
    pub range: Range<usize>,
}

impl Partition {
    /// Number of items in the partition. For edge partitions this is the
    /// absolute support `|E(pattern)|` of the extended pattern.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the partition is empty (never returned by the partitioner).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// Reusable scratch space for [`partition_in_place`], so the mining
/// recursion performs no per-call allocations beyond its first use at each
/// size (the "workhorse collection" idiom).
#[derive(Debug, Default, Clone)]
pub struct SortScratch {
    counts: Vec<u32>,
    buffer: Vec<u32>,
}

impl SortScratch {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Stable counting sort of `data` by `key`, in place, using `scratch`.
///
/// `bucket_count` must be strictly greater than every key (i.e.
/// `domain_size + 1` — see [`crate::AttrDef::bucket_count`]).
/// Returns the non-empty partitions in increasing key order; runs in
/// `O(data.len() + bucket_count)` with no key comparisons.
pub fn partition_in_place<K>(
    data: &mut [u32],
    bucket_count: usize,
    scratch: &mut SortScratch,
    mut key: K,
) -> Vec<Partition>
where
    K: FnMut(u32) -> AttrValue,
{
    if data.is_empty() {
        return Vec::new();
    }
    // Count occurrences per value.
    scratch.counts.clear();
    scratch.counts.resize(bucket_count, 0);
    // Cache keys while counting so `key` runs once per item: key lookups
    // chase node pointers and dominate the pass cost.
    scratch.buffer.clear();
    scratch.buffer.reserve(data.len());
    for &id in data.iter() {
        let k = key(id);
        debug_assert!(
            (k as usize) < bucket_count,
            "key {k} out of bucket range {bucket_count}"
        );
        scratch.counts[k as usize] += 1;
        scratch.buffer.push(k as u32);
    }
    // Exclusive prefix sums -> starting offset of each value's partition.
    let mut offsets = Vec::with_capacity(bucket_count);
    let mut acc = 0u32;
    for &c in &scratch.counts {
        offsets.push(acc);
        acc += c;
    }
    // Scatter into a temporary, then copy back (stable).
    let mut cursor = offsets.clone();
    let mut out = vec![0u32; data.len()];
    for (i, &id) in data.iter().enumerate() {
        let k = scratch.buffer[i] as usize;
        out[cursor[k] as usize] = id;
        cursor[k] += 1;
    }
    data.copy_from_slice(&out);
    // Emit non-empty partitions.
    let mut parts = Vec::new();
    for (v, &c) in scratch.counts.iter().enumerate() {
        if c > 0 {
            let start = offsets[v] as usize;
            parts.push(Partition {
                value: v as AttrValue,
                range: start..start + c as usize,
            });
        }
    }
    parts
}

/// Convenience wrapper that allocates its own scratch.
pub fn partition_by<K>(data: &mut [u32], bucket_count: usize, key: K) -> Vec<Partition>
where
    K: FnMut(u32) -> AttrValue,
{
    let mut scratch = SortScratch::new();
    partition_in_place(data, bucket_count, &mut scratch, key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let mut data: Vec<u32> = vec![];
        assert!(partition_by(&mut data, 4, |_| 0).is_empty());
    }

    #[test]
    fn partitions_are_contiguous_and_sorted() {
        let mut data = vec![0, 1, 2, 3, 4, 5, 6];
        let keys = [2u16, 0, 1, 2, 1, 0, 2];
        let parts = partition_by(&mut data, 3, |i| keys[i as usize]);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].value, 0);
        assert_eq!(parts[1].value, 1);
        assert_eq!(parts[2].value, 2);
        assert_eq!(&data[parts[0].range.clone()], &[1, 5]);
        assert_eq!(&data[parts[1].range.clone()], &[2, 4]);
        assert_eq!(&data[parts[2].range.clone()], &[0, 3, 6]);
    }

    #[test]
    fn stability_preserves_input_order_within_partition() {
        let mut data = vec![9, 3, 7, 1];
        let parts = partition_by(&mut data, 2, |_| 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(data, vec![9, 3, 7, 1]);
        assert_eq!(parts[0].len(), 4);
    }

    #[test]
    fn skips_empty_values() {
        let mut data = vec![0, 1];
        let parts = partition_by(&mut data, 10, |i| if i == 0 { 2 } else { 9 });
        let values: Vec<_> = parts.iter().map(|p| p.value).collect();
        assert_eq!(values, vec![2, 9]);
    }

    #[test]
    fn is_a_permutation() {
        let mut data: Vec<u32> = (0..100).collect();
        let parts = partition_by(&mut data, 7, |i| (i % 7) as u16);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 100);
    }

    #[test]
    fn scratch_reuse_across_sizes() {
        let mut scratch = SortScratch::new();
        let mut a: Vec<u32> = (0..10).collect();
        partition_in_place(&mut a, 3, &mut scratch, |i| (i % 3) as u16);
        let mut b: Vec<u32> = (0..1000).collect();
        let parts = partition_in_place(&mut b, 11, &mut scratch, |i| (i % 11) as u16);
        assert_eq!(parts.len(), 11);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 1000);
    }

    #[test]
    fn ranges_tile_the_slice() {
        let mut data: Vec<u32> = (0..57).collect();
        let parts = partition_by(&mut data, 5, |i| (i % 5) as u16);
        let mut next = 0;
        for p in &parts {
            assert_eq!(p.range.start, next);
            next = p.range.end;
        }
        assert_eq!(next, 57);
    }
}
