//! Counting-sort partitioning — the zero-allocation fused engine.
//!
//! GRMiner (§V) "adopts a linear sorting method, Counting Sort, to sort and
//! get the aggregate of each partition. It sorts in O(N) time without any
//! key comparisons." This module provides that primitive as a
//! [`PartitionArena`]: one object owning **all** scratch of the mining
//! recursion — the bucket histogram, the per-item key cache, the scatter
//! buffer, a partition-record stack with [`Frame`]-based windows, and a
//! stack of *fused* child histograms — so that once the arena has warmed up
//! to the workload's sizes, a partition pass performs **zero heap
//! allocations**, however deep the recursion (`arena_alloc.rs` asserts this
//! with a counting allocator).
//!
//! Every pass is **stable** (scatter in scan order), which keeps partition
//! contents deterministic across runs — important because the paper's rank
//! (Def. 5) breaks ties alphabetically and our tests pin exact outputs.
//!
//! ### Frames
//!
//! Partition records are pushed onto an internal stack and addressed by a
//! [`Frame`] of plain indices, so a recursive caller can copy one
//! [`PartRec`] out ([`PartitionArena::record`] — records are `Copy`),
//! recurse into its sub-slice (the recursion pushes and pops its own
//! frames above), and finally release the level with
//! [`PartitionArena::pop_frame`]. Nothing borrows the arena across the
//! recursion, and no `Vec<Partition>` is returned on the hot path.
//!
//! ### Fused two-level passes
//!
//! The mining recursion almost always knows which dimension a child will
//! partition next (the first dynamic RHS dimension — Eqn. 8). A *fused*
//! pass ([`PartitionArena::partition_col_fused`]) therefore, while
//! scattering the parent's partitions, (1) builds the histogram of the
//! **next** dimension for every child at once and (2) caches each item's
//! next-dimension key *in scattered order*. The child consumes both with
//! [`PartitionArena::partition_pre_counted`]: no counting phase and **no
//! column gathers at all** — its keys stream sequentially out of the
//! parent's cache — one memory pass over the child data instead of two,
//! with the random column loads paid once instead of twice. Outputs are
//! bit-identical to the unfused pass: a histogram is order-independent,
//! and the scatter order is unchanged.
//!
//! ### Errors
//!
//! A key at or beyond `bucket_count` is a **checked error in release
//! builds** ([`GraphError::KeyOutOfRange`]) — not a `debug_assert!` — since
//! an oversized key would otherwise corrupt the histogram. The legacy
//! [`partition_in_place`] wrapper forwards the same error. On error the
//! arena rolls its state back and stays usable.

use crate::error::{GraphError, Result};
use crate::kernel;
use crate::value::AttrValue;
use std::ops::Range;

/// One partition produced by the legacy [`partition_in_place`] wrapper:
/// all items whose key is `value` occupy `range` within the reordered
/// slice. Hot paths use the arena's [`PartRec`] records instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// The shared key value of the partition.
    pub value: AttrValue,
    /// The index range within the reordered slice.
    pub range: Range<usize>,
}

impl Partition {
    /// Number of items in the partition. For edge partitions this is the
    /// absolute support `|E(pattern)|` of the extended pattern.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the partition is empty (never returned by the partitioner).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// One partition record on the arena's stack: items whose key is `value`
/// occupy `start..end` of the partitioned slice. `Copy`, so recursive
/// callers lift it out of the arena before descending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartRec {
    /// The shared key value of the partition.
    pub value: AttrValue,
    start: u32,
    end: u32,
}

impl PartRec {
    /// The index range within the partitioned slice.
    pub fn range(&self) -> Range<usize> {
        self.start as usize..self.end as usize
    }

    /// Number of items in the partition (never zero as emitted).
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the partition is empty (never true as emitted).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A window of partition records on the arena's stack, produced by one
/// pass. Plain indices — nothing borrows the arena — so the holder can
/// recurse freely and must release the window with
/// [`PartitionArena::pop_frame`] when the level is done.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    start: u32,
    end: u32,
}

impl Frame {
    /// Record indices of this frame, for [`PartitionArena::record`].
    pub fn indices(&self) -> Range<u32> {
        self.start..self.end
    }

    /// Number of (non-empty) partitions the pass produced.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the pass produced no partitions (empty input).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Handle to one level of fused child histograms plus the scattered-order
/// next-key cache, returned by [`PartitionArena::partition_col_fused`].
/// Addresses `parent_buckets × next_buckets` counters and `len` cached
/// keys on the arena's fused stacks; release with
/// [`PartitionArena::pop_fused`] after the partition loop.
#[derive(Debug, Clone, Copy)]
pub struct FusedLevel {
    base: usize,
    keys_base: usize,
    len: usize,
    parent_buckets: u32,
    next_buckets: u32,
}

/// One child partition's pre-counted histogram and key-cache window,
/// carved out of a [`FusedLevel`] by [`PartitionArena::child_hist`].
/// Consumed (destroyed) by [`PartitionArena::partition_pre_counted`].
#[derive(Debug, Clone, Copy)]
pub struct FusedHist {
    offset: usize,
    keys_at: usize,
    buckets: usize,
}

impl FusedHist {
    /// Bucket count the histogram was counted for — the consuming pass
    /// must use the same.
    pub fn buckets(&self) -> usize {
        self.buckets
    }
}

/// All scratch of the counting-sort partition layer (module docs): bucket
/// histogram, key cache, scatter buffer, partition-record stack, fused
/// child-histogram stack. Buffers only ever grow; steady-state passes
/// allocate nothing. [`PartitionArena::peak_bytes`] reports the high-water
/// mark (the `scratch_bytes_peak` miner counter).
///
/// Internal invariant: `counts` is all-zeros between passes — each pass
/// re-zeroes exactly the buckets it touched while emitting records, so a
/// pass costs `O(n + bucket_count)` without a full clear of the largest
/// histogram ever seen. The kernel stripe scratch keeps the same
/// discipline (see [`kernel::histogram_u32`]).
#[derive(Debug, Clone)]
pub struct PartitionArena {
    /// Bucket histogram, then (in place) prefix offsets, then cursors.
    counts: Vec<u32>,
    /// Per-item key cache: each key function / column load runs once.
    keys: Vec<AttrValue>,
    /// Scatter buffer (copied back into the caller's slice — stable).
    scatter: Vec<u32>,
    /// The partition-record stack, windowed by [`Frame`]s.
    records: Vec<PartRec>,
    /// The fused child-histogram stack, windowed by [`FusedLevel`]s.
    fused: Vec<u32>,
    fused_top: usize,
    /// Scattered-order next-key cache per fused level (same discipline).
    fused_keys: Vec<AttrValue>,
    fused_keys_top: usize,
    /// Per-lane histogram scratch of the counting kernel
    /// ([`kernel::STRIPES`] stripes; all-zero between passes).
    stripes: Vec<u32>,
    /// Route hot loops through the batch kernels (`grm_graph::kernel`).
    /// On by default; outputs are bit-identical either way, so the
    /// toggle exists for the `scalar_kernel_off` ablation and the
    /// differential oracles.
    use_kernel: bool,
    /// Full kernel batches processed since the last
    /// [`PartitionArena::take_kernel_batches`].
    kernel_batches: u64,
    peak: usize,
}

impl Default for PartitionArena {
    fn default() -> Self {
        // lint: allow(alloc-in-arena) — construction site, not a pass:
        // every buffer starts empty (no capacity) and warms up in place.
        PartitionArena {
            counts: Vec::new(),
            keys: Vec::new(),
            scatter: Vec::new(),
            records: Vec::new(),
            fused: Vec::new(),
            fused_top: 0,
            fused_keys: Vec::new(),
            fused_keys_top: 0,
            stripes: Vec::new(),
            use_kernel: true,
            kernel_batches: 0,
            peak: 0,
        }
    }
}

impl PartitionArena {
    /// Fresh, empty arena (no allocations until the first pass), with
    /// the batch kernels enabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable or disable the batch kernels for subsequent passes.
    /// Outputs are bit-identical either way (the scalar loops are kept
    /// as the ablation/differential baseline).
    pub fn set_kernel_enabled(&mut self, on: bool) {
        self.use_kernel = on;
    }

    /// Whether passes currently run through the batch kernels.
    pub fn kernel_enabled(&self) -> bool {
        self.use_kernel
    }

    /// Drain the accumulated count of full [`kernel::LANES`]-wide
    /// batches processed by kernel-backed loops (the miner's
    /// `kernel_batches` counter; resets to zero).
    pub fn take_kernel_batches(&mut self) -> u64 {
        std::mem::take(&mut self.kernel_batches)
    }

    /// Stable counting-sort pass keyed by a closure. Used where the key is
    /// computed (the β group-by match mask); columnar passes should prefer
    /// [`PartitionArena::partition_col`].
    pub fn partition_with<K>(
        &mut self,
        data: &mut [u32],
        bucket_count: usize,
        mut key: K,
    ) -> Result<Frame>
    where
        K: FnMut(u32) -> AttrValue,
    {
        self.prepare(data.len(), bucket_count);
        let n = data.len();
        // Fill and validate the key cache first (the closure is opaque
        // to the kernels), then count it positionally — on a bad key the
        // histogram was never touched, so the all-zeros invariant holds.
        for (i, &id) in data.iter().enumerate() {
            let k = key(id);
            if (k as usize) >= bucket_count {
                return Err(GraphError::KeyOutOfRange {
                    key: k,
                    bucket_count,
                });
            }
            self.keys[i] = k;
        }
        self.count_keys(n, bucket_count);
        let frame = self.scatter_and_emit(data, bucket_count);
        self.note_peak();
        Ok(frame)
    }

    /// Stable counting-sort pass keyed by a conjunction match mask over
    /// columnar `(column, value)` pairs: item `id`'s key has bit `i` set
    /// iff `pairs[i].0[id as usize] == pairs[i].1` — the β group-by of
    /// `grm_core::beta`, vectorized one dimension at a time through
    /// [`kernel::mask_eq_accumulate`]. The bucket count is
    /// `1 << pairs.len()`; every mask lies below it by construction, so
    /// the pass cannot fail. At most 15 pairs (the mask must fit an
    /// [`AttrValue`]); columns must cover every id in `data`.
    pub fn partition_mask_cols(
        &mut self,
        data: &mut [u32],
        pairs: &[(&[AttrValue], AttrValue)],
    ) -> Frame {
        assert!(
            pairs.len() < AttrValue::BITS as usize,
            "match masks are AttrValue-wide ({} pairs)",
            pairs.len()
        );
        let bucket_count = 1usize << pairs.len();
        self.prepare(data.len(), bucket_count);
        let n = data.len();
        self.keys[..n].fill(0);
        if self.use_kernel && kernel::batching_pays_off(n) {
            for (bit, &(col, v)) in pairs.iter().enumerate() {
                self.kernel_batches +=
                    // cast: bit < pairs.len() ≤ AttrValue::BITS = 16
                    kernel::mask_eq_accumulate(data, col, v, bit as u32, &mut self.keys[..n]);
            }
        } else {
            for (i, &id) in data.iter().enumerate() {
                let mut mask: AttrValue = 0;
                for (bit, &(col, v)) in pairs.iter().enumerate() {
                    mask |= AttrValue::from(col[id as usize] == v) << bit;
                }
                self.keys[i] = mask;
            }
        }
        self.count_keys(n, bucket_count);
        let frame = self.scatter_and_emit(data, bucket_count);
        self.note_peak();
        frame
    }

    /// Stable counting-sort pass over a contiguous key column: item `id`'s
    /// key is `col[id]` (one indexed load — the miner's columnar caches).
    /// The counting loop is chunked so the eight gather loads of a chunk
    /// issue independently of the histogram increments.
    pub fn partition_col(
        &mut self,
        data: &mut [u32],
        bucket_count: usize,
        col: &[AttrValue],
    ) -> Result<Frame> {
        self.prepare(data.len(), bucket_count);
        self.count_col(data, bucket_count, col)?;
        let frame = self.scatter_and_emit(data, bucket_count);
        self.note_peak();
        Ok(frame)
    }

    /// Fused two-level pass (module docs): partition `data` by `col` and,
    /// while scattering, count each child partition's histogram over
    /// `next_col` **and** cache each item's next key in scattered order,
    /// into a fresh [`FusedLevel`]. Children consume both via
    /// [`PartitionArena::child_hist`] +
    /// [`PartitionArena::partition_pre_counted`]; the caller pops the
    /// level with [`PartitionArena::pop_fused`] after its partition loop.
    pub fn partition_col_fused(
        &mut self,
        data: &mut [u32],
        bucket_count: usize,
        col: &[AttrValue],
        next_col: &[AttrValue],
        next_buckets: usize,
    ) -> Result<(Frame, FusedLevel)> {
        if next_buckets == 0 && !data.is_empty() {
            // Deterministic bail before any arena state is touched: a
            // zero-bucket next dimension cannot key any item. Report the
            // first item's *actual* key; a next column that does not
            // even cover the data is its own error — never a fabricated
            // key 0 (which downstream cost models would mistake for a
            // real NULL key).
            return Err(match next_col.get(data[0] as usize) {
                Some(&key) => GraphError::KeyOutOfRange {
                    key,
                    bucket_count: 0,
                },
                None => GraphError::ColumnTooShort {
                    len: next_col.len(),
                    index: data[0] as usize,
                },
            });
        }
        self.prepare(data.len(), bucket_count);
        self.count_col(data, bucket_count, col)?;
        let n = data.len();
        // Push a zeroed histogram level and an (uninitialized — every
        // slot is written exactly once) next-key level.
        let base = self.fused_top;
        let size = bucket_count * next_buckets;
        if self.fused.len() < base + size {
            self.fused.resize(base + size, 0);
        }
        self.fused[base..base + size].fill(0);
        self.fused_top = base + size;
        let keys_base = self.fused_keys_top;
        if self.fused_keys.len() < keys_base + n {
            self.fused_keys.resize(keys_base + n, 0);
        }
        self.fused_keys_top = keys_base + n;
        // Prefix offsets, then scatter while counting and caching the
        // next dimension. Slice-local views keep the hot loop's bounds
        // arithmetic simple; the key-range check is branchless (clamp +
        // sticky flag) so it never breaks the loop's pipelining — the
        // cold rollback below discards anything a clamped key touched.
        self.prefix(bucket_count);
        let mut bad = false;
        {
            let counts = &mut self.counts[..bucket_count];
            let keys = &self.keys[..n];
            let scatter = &mut self.scatter[..n];
            let fused = &mut self.fused[base..base + size];
            let fused_keys = &mut self.fused_keys[keys_base..keys_base + n];
            if self.use_kernel && kernel::batching_pays_off(n) {
                let (b, batches) = kernel::scatter_with_count(
                    data,
                    keys,
                    counts,
                    scatter,
                    next_col,
                    next_buckets,
                    fused,
                    fused_keys,
                );
                bad = b;
                self.kernel_batches += batches;
            } else {
                let clamp = next_buckets.saturating_sub(1);
                for i in 0..n {
                    let id = data[i];
                    let k = keys[i] as usize;
                    let dst = counts[k] as usize;
                    counts[k] += 1;
                    scatter[dst] = id;
                    let nk = next_col[id as usize] as usize;
                    bad |= nk > clamp;
                    let nk = nk.min(clamp);
                    fused[k * next_buckets + nk] += 1;
                    fused_keys[dst] = nk as AttrValue; // cast: nk ≤ clamp < next_buckets ≤ u16 domain
                }
            }
        }
        if bad {
            // Roll back: cursors are dirty and the level is garbage.
            // lint: allow(panic-in-hot-path) — cold error-recovery scan:
            // `bad` was set by exactly this predicate one loop earlier, so
            // the offender must still be found on the re-scan.
            let key = data
                .iter()
                .map(|&id| next_col[id as usize])
                .find(|&nk| nk as usize >= next_buckets)
                .expect("a key beyond the clamp set the flag");
            self.counts.iter_mut().for_each(|c| *c = 0);
            self.fused_top = base;
            self.fused_keys_top = keys_base;
            return Err(GraphError::KeyOutOfRange {
                key,
                bucket_count: next_buckets,
            });
        }
        data.copy_from_slice(&self.scatter[..n]);
        let frame = self.emit_records(bucket_count);
        self.note_peak();
        Ok((
            frame,
            FusedLevel {
                base,
                keys_base,
                len: n,
                parent_buckets: bucket_count as u32, // cast: bucket counts ≤ u16 domain + 1
                next_buckets: next_buckets as u32,   // cast: bucket counts ≤ u16 domain + 1
            },
        ))
    }

    /// The pre-counted histogram and key-cache window of one child
    /// partition (`part`, a record of the pass that produced `level`).
    pub fn child_hist(&self, level: FusedLevel, part: PartRec) -> FusedHist {
        debug_assert!((part.value as u32) < level.parent_buckets);
        debug_assert!(part.end as usize <= level.len, "record outside level");
        FusedHist {
            offset: level.base + part.value as usize * level.next_buckets as usize,
            keys_at: level.keys_base + part.start as usize,
            buckets: level.next_buckets as usize,
        }
    }

    /// Stable counting-sort pass that consumes a child histogram and key
    /// cache produced by the parent's fused pass: no counting phase and no
    /// key-column loads — the keys stream sequentially out of the cache
    /// (which is why no column argument exists). The histogram is
    /// destroyed; each [`FusedHist`] may be consumed once, on exactly the
    /// sub-slice its [`PartRec`] described.
    pub fn partition_pre_counted(
        &mut self,
        data: &mut [u32],
        bucket_count: usize,
        hist: FusedHist,
    ) -> Frame {
        debug_assert_eq!(hist.buckets, bucket_count, "histogram/bucket mismatch");
        debug_assert_eq!(
            self.fused[hist.offset..hist.offset + bucket_count]
                .iter()
                .map(|&c| c as usize)
                .sum::<usize>(),
            data.len(),
            "pre-counted histogram does not cover the slice"
        );
        self.prepare(data.len(), bucket_count);
        // Prefix offsets in place within the fused slice, then scatter by
        // the cached keys (validated < bucket_count by the producer; a
        // misused handle still lands on the slice bounds checks below).
        let mut acc = 0u32;
        for c in &mut self.fused[hist.offset..hist.offset + bucket_count] {
            let v = *c;
            *c = acc;
            acc += v;
        }
        let n = data.len();
        for (i, &id) in data.iter().enumerate() {
            let k = self.fused_keys[hist.keys_at + i] as usize;
            let cursor = &mut self.fused[hist.offset + k];
            self.scatter[*cursor as usize] = id;
            *cursor += 1;
        }
        data.copy_from_slice(&self.scatter[..n]);
        // Emit records from the fused cursors (now partition ends).
        // cast: ≤ one record per element, and n ≤ the u32 edge cap
        let start = self.records.len() as u32;
        let mut prev = 0u32;
        for v in 0..bucket_count {
            let end = self.fused[hist.offset + v];
            if end > prev {
                self.records.push(PartRec {
                    value: v as AttrValue, // cast: v < bucket_count ≤ u16 domain + 1
                    start: prev,
                    end,
                });
            }
            prev = end;
        }
        self.note_peak();
        Frame {
            start,
            // cast: ≤ one record per element, and n ≤ the u32 edge cap
            end: self.records.len() as u32,
        }
    }

    /// Copy one partition record out of a frame.
    pub fn record(&self, index: u32) -> PartRec {
        self.records[index as usize]
    }

    /// Borrow a frame's records for non-recursive iteration.
    pub fn records(&self, frame: &Frame) -> &[PartRec] {
        &self.records[frame.start as usize..frame.end as usize]
    }

    /// Release a frame, truncating the record stack back to its start.
    /// Frames must be popped in LIFO order (innermost recursion first).
    pub fn pop_frame(&mut self, frame: Frame) {
        debug_assert_eq!(self.records.len() as u32, frame.end, "non-LIFO pop");
        self.records.truncate(frame.start as usize);
    }

    /// Release a fused level. LIFO, after the producing partition loop.
    pub fn pop_fused(&mut self, level: FusedLevel) {
        debug_assert_eq!(
            self.fused_top,
            level.base + level.parent_buckets as usize * level.next_buckets as usize,
            "non-LIFO fused pop"
        );
        debug_assert_eq!(self.fused_keys_top, level.keys_base + level.len);
        self.fused_top = level.base;
        self.fused_keys_top = level.keys_base;
    }

    /// High-water mark of the arena's owned scratch, in bytes. Stable
    /// across repeated runs of the same workload — the arena-reuse /
    /// zero-allocation guarantee made measurable.
    pub fn peak_bytes(&self) -> usize {
        self.peak
    }

    /// Grow the per-pass buffers; `counts` keeps its all-zeros invariant
    /// (`resize` only appends zeros).
    fn prepare(&mut self, n: usize, bucket_count: usize) {
        assert!(
            n <= u32::MAX as usize,
            "partition slices are indexed by u32 ({n} items)"
        );
        if self.counts.len() < bucket_count {
            self.counts.resize(bucket_count, 0);
        }
        if self.keys.len() < n {
            self.keys.resize(n, 0);
        }
        if self.scatter.len() < n {
            self.scatter.resize(n, 0);
        }
        if self.use_kernel {
            let want = kernel::STRIPES * bucket_count;
            if self.stripes.len() < want {
                self.stripes.resize(want, 0);
            }
        }
    }

    /// Counting phase over a contiguous key column. With the kernels on
    /// and a slice large enough for the stripes to pay
    /// ([`kernel::stripes_pay_off`]): one gather pass fills the key
    /// cache and returns the key maximum (the range check hoisted out
    /// of the loop), then the striped histogram counts the cache
    /// positionally — on a bad key the histogram was never touched, and
    /// the first offender in scan order is recovered from the cache for
    /// the error (cold path). Small passes — the bulk of a
    /// heavily-pruned mining recursion — use the single fused
    /// gather-and-count loop below, which is also the
    /// `scalar_kernel_off` baseline.
    fn count_col(&mut self, data: &[u32], bucket_count: usize, col: &[AttrValue]) -> Result<()> {
        let n = data.len();
        if self.use_kernel && kernel::stripes_pay_off(n, bucket_count) {
            let (max, batches) = kernel::gather_keys(data, col, &mut self.keys[..n]);
            self.kernel_batches += batches;
            if (max as usize) >= bucket_count {
                // lint: allow(panic-in-hot-path) — cold error-recovery
                // scan: `max >= bucket_count` guarantees the key cache
                // holds at least one offender to report.
                let key = self.keys[..n]
                    .iter()
                    .copied()
                    .find(|&k| (k as usize) >= bucket_count)
                    .expect("the key maximum exceeded the bucket count");
                return Err(GraphError::KeyOutOfRange { key, bucket_count });
            }
            self.kernel_batches += kernel::histogram_u32(
                &self.keys[..n],
                &mut self.counts[..bucket_count],
                &mut self.stripes[..kernel::STRIPES * bucket_count],
            );
            return Ok(());
        }
        if self.use_kernel {
            // The small-pass strategy still processes whole batches (the
            // chunked gathers below); account for them.
            self.kernel_batches += kernel::batches(n);
        }
        // One-pass chunked loop (small kernel passes and the
        // `scalar_kernel_off` baseline): gathers for a whole chunk issue
        // before the (serially dependent) increments.
        let counts = &mut self.counts[..bucket_count];
        let keys = &mut self.keys[..n];
        let mut bad: Option<AttrValue> = None;
        let mut i = 0usize;
        let chunks = data.chunks_exact(8);
        let rem = chunks.remainder();
        'count: {
            for ch in chunks {
                let ks: [AttrValue; 8] = [
                    col[ch[0] as usize],
                    col[ch[1] as usize],
                    col[ch[2] as usize],
                    col[ch[3] as usize],
                    col[ch[4] as usize],
                    col[ch[5] as usize],
                    col[ch[6] as usize],
                    col[ch[7] as usize],
                ];
                for (j, &k) in ks.iter().enumerate() {
                    if (k as usize) >= bucket_count {
                        bad = Some(k);
                        break 'count;
                    }
                    counts[k as usize] += 1;
                    keys[i + j] = k;
                }
                i += 8;
            }
            for &id in rem {
                let k = col[id as usize];
                if (k as usize) >= bucket_count {
                    bad = Some(k);
                    break 'count;
                }
                counts[k as usize] += 1;
                keys[i] = k;
                i += 1;
            }
        }
        match bad {
            Some(k) => Err(self.count_failed(k, bucket_count)),
            None => Ok(()),
        }
    }

    /// Count the first `n` cached keys into the histogram — striped
    /// kernel counting when enabled, the plain loop otherwise. Keys
    /// must already be validated `< bucket_count`.
    fn count_keys(&mut self, n: usize, bucket_count: usize) {
        let keys = &self.keys[..n];
        let counts = &mut self.counts[..bucket_count];
        if self.use_kernel {
            self.kernel_batches += kernel::histogram_u32(
                keys,
                counts,
                &mut self.stripes[..kernel::STRIPES * bucket_count],
            );
        } else {
            for &k in keys {
                counts[k as usize] += 1;
            }
        }
    }

    /// Restore the all-zeros `counts` invariant after a failed counting
    /// phase and build the error (cold path).
    fn count_failed(&mut self, key: AttrValue, bucket_count: usize) -> GraphError {
        self.counts.iter_mut().for_each(|c| *c = 0);
        GraphError::KeyOutOfRange { key, bucket_count }
    }

    /// Exclusive prefix sums in place: `counts[v]` becomes the start
    /// offset of value `v`'s partition.
    fn prefix(&mut self, bucket_count: usize) {
        let mut acc = 0u32;
        for c in &mut self.counts[..bucket_count] {
            let v = *c;
            *c = acc;
            acc += v;
        }
    }

    /// Prefix, stable scatter via the key cache, copy back, emit records.
    fn scatter_and_emit(&mut self, data: &mut [u32], bucket_count: usize) -> Frame {
        self.prefix(bucket_count);
        let n = data.len();
        for (i, &id) in data.iter().enumerate() {
            let k = self.keys[i] as usize;
            let cursor = &mut self.counts[k];
            self.scatter[*cursor as usize] = id;
            *cursor += 1;
        }
        data.copy_from_slice(&self.scatter[..n]);
        self.emit_records(bucket_count)
    }

    /// Emit non-empty partitions in increasing key order from the
    /// post-scatter cursors (`counts[v]` = end offset of `v`'s partition),
    /// re-zeroing each touched bucket to restore the invariant.
    fn emit_records(&mut self, bucket_count: usize) -> Frame {
        // cast: ≤ one record per element, and n ≤ the u32 edge cap
        let start = self.records.len() as u32;
        let mut prev = 0u32;
        for v in 0..bucket_count {
            let end = self.counts[v];
            self.counts[v] = 0;
            if end > prev {
                self.records.push(PartRec {
                    value: v as AttrValue, // cast: v < bucket_count ≤ u16 domain + 1
                    start: prev,
                    end,
                });
            }
            prev = end;
        }
        Frame {
            start,
            // cast: ≤ one record per element, and n ≤ the u32 edge cap
            end: self.records.len() as u32,
        }
    }

    /// Update the high-water mark after a pass (capacities are monotone).
    fn note_peak(&mut self) {
        let bytes = self.counts.capacity() * std::mem::size_of::<u32>()
            + self.keys.capacity() * std::mem::size_of::<AttrValue>()
            + self.scatter.capacity() * std::mem::size_of::<u32>()
            + self.records.capacity() * std::mem::size_of::<PartRec>()
            + self.fused.capacity() * std::mem::size_of::<u32>()
            + self.fused_keys.capacity() * std::mem::size_of::<AttrValue>()
            + self.stripes.capacity() * std::mem::size_of::<u32>();
        self.peak = self.peak.max(bytes);
    }
}

/// Stable counting sort of `data` by `key`, in place, using `arena`.
///
/// `bucket_count` must be strictly greater than every key (i.e.
/// `domain_size + 1` — see [`crate::AttrDef::bucket_count`]); an
/// out-of-range key is a [`GraphError::KeyOutOfRange`] error and leaves
/// the arena rolled back and usable. Returns the non-empty partitions in
/// increasing key order in `O(data.len() + bucket_count)` with no key
/// comparisons.
///
/// This is the convenience wrapper for cold paths (baselines, tests): it
/// allocates the returned `Vec<Partition>` on every call. Hot paths use
/// the arena's frame API, which allocates nothing in steady state.
pub fn partition_in_place<K>(
    data: &mut [u32],
    bucket_count: usize,
    arena: &mut PartitionArena,
    key: K,
) -> Result<Vec<Partition>>
where
    K: FnMut(u32) -> AttrValue,
{
    let frame = arena.partition_with(data, bucket_count, key)?;
    let parts = arena
        .records(&frame)
        .iter()
        .map(|r| Partition {
            value: r.value,
            range: r.range(),
        })
        // lint: allow(alloc-in-arena) — this legacy wrapper is documented
        // as allocating its return value; hot paths use the frame API.
        .collect();
    arena.pop_frame(frame);
    Ok(parts)
}

/// Convenience wrapper that allocates its own scratch.
pub fn partition_by<K>(data: &mut [u32], bucket_count: usize, key: K) -> Result<Vec<Partition>>
where
    K: FnMut(u32) -> AttrValue,
{
    let mut arena = PartitionArena::new();
    partition_in_place(data, bucket_count, &mut arena, key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let mut data: Vec<u32> = vec![];
        assert!(partition_by(&mut data, 4, |_| 0).unwrap().is_empty());
    }

    #[test]
    fn partitions_are_contiguous_and_sorted() {
        let mut data = vec![0, 1, 2, 3, 4, 5, 6];
        let keys = [2u16, 0, 1, 2, 1, 0, 2];
        let parts = partition_by(&mut data, 3, |i| keys[i as usize]).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].value, 0);
        assert_eq!(parts[1].value, 1);
        assert_eq!(parts[2].value, 2);
        assert_eq!(&data[parts[0].range.clone()], &[1, 5]);
        assert_eq!(&data[parts[1].range.clone()], &[2, 4]);
        assert_eq!(&data[parts[2].range.clone()], &[0, 3, 6]);
    }

    #[test]
    fn stability_preserves_input_order_within_partition() {
        let mut data = vec![9, 3, 7, 1];
        let parts = partition_by(&mut data, 2, |_| 1).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(data, vec![9, 3, 7, 1]);
        assert_eq!(parts[0].len(), 4);
    }

    #[test]
    fn skips_empty_values() {
        let mut data = vec![0, 1];
        let parts = partition_by(&mut data, 10, |i| if i == 0 { 2 } else { 9 }).unwrap();
        let values: Vec<_> = parts.iter().map(|p| p.value).collect();
        assert_eq!(values, vec![2, 9]);
    }

    #[test]
    fn is_a_permutation() {
        let mut data: Vec<u32> = (0..100).collect();
        let parts = partition_by(&mut data, 7, |i| (i % 7) as u16).unwrap();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 100);
    }

    #[test]
    fn arena_reuse_across_sizes() {
        let mut arena = PartitionArena::new();
        let mut a: Vec<u32> = (0..10).collect();
        partition_in_place(&mut a, 3, &mut arena, |i| (i % 3) as u16).unwrap();
        let mut b: Vec<u32> = (0..1000).collect();
        let parts = partition_in_place(&mut b, 11, &mut arena, |i| (i % 11) as u16).unwrap();
        assert_eq!(parts.len(), 11);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 1000);
        // Going back to a smaller bucket count must not see stale counts.
        let mut c: Vec<u32> = (0..20).collect();
        let parts = partition_in_place(&mut c, 2, &mut arena, |i| (i % 2) as u16).unwrap();
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 20);
    }

    #[test]
    fn ranges_tile_the_slice() {
        let mut data: Vec<u32> = (0..57).collect();
        let parts = partition_by(&mut data, 5, |i| (i % 5) as u16).unwrap();
        let mut next = 0;
        for p in &parts {
            assert_eq!(p.range.start, next);
            next = p.range.end;
        }
        assert_eq!(next, 57);
    }

    #[test]
    fn out_of_range_key_is_an_error_and_arena_survives() {
        let mut arena = PartitionArena::new();
        let mut data: Vec<u32> = (0..10).collect();
        let err = arena
            .partition_with(&mut data, 3, |i| if i == 7 { 9 } else { 1 })
            .unwrap_err();
        assert_eq!(
            err,
            GraphError::KeyOutOfRange {
                key: 9,
                bucket_count: 3
            }
        );
        assert!(err.to_string().contains("9") && err.to_string().contains("3 buckets"));
        // Columnar variant too.
        let col: Vec<u16> = (0..10).map(|i| if i == 4 { 3 } else { 0 }).collect();
        let err = arena.partition_col(&mut data, 3, &col).unwrap_err();
        assert!(matches!(err, GraphError::KeyOutOfRange { key: 3, .. }));
        // The failed passes rolled back: a good pass still works.
        let frame = arena
            .partition_with(&mut data, 3, |i| (i % 3) as u16)
            .unwrap();
        assert_eq!(
            arena.records(&frame).iter().map(|r| r.len()).sum::<usize>(),
            10
        );
        arena.pop_frame(frame);
    }

    #[test]
    fn legacy_wrapper_reports_out_of_range_key() {
        let mut data = vec![0u32, 1];
        let err = partition_by(&mut data, 2, |_| 5).unwrap_err();
        assert!(matches!(err, GraphError::KeyOutOfRange { key: 5, .. }));
    }

    #[test]
    fn frames_nest_like_a_recursion() {
        // Two-level manual recursion exercising the frame stack: partition
        // by i % 3, then each partition by i % 2, checking LIFO pops.
        let mut arena = PartitionArena::new();
        let mut data: Vec<u32> = (0..30).collect();
        let outer = arena
            .partition_with(&mut data, 3, |i| (i % 3) as u16)
            .unwrap();
        assert_eq!(outer.len(), 3);
        for idx in outer.indices() {
            let part = arena.record(idx);
            let sub = &mut data[part.range()];
            let inner = arena.partition_with(sub, 2, |i| (i % 2) as u16).unwrap();
            for j in inner.indices() {
                let p = arena.record(j);
                for &id in &sub[p.range()] {
                    assert_eq!((id % 2) as u16, p.value);
                }
            }
            arena.pop_frame(inner);
            for &id in sub.iter() {
                assert_eq!((id % 3) as u16, part.value);
            }
        }
        arena.pop_frame(outer);
    }

    /// Reference: the fused and pre-counted pair must equal two plain
    /// passes bit for bit (same data order, same records).
    #[test]
    fn fused_pair_matches_unfused_passes() {
        let n = 257u32;
        let col: Vec<u16> = (0..n).map(|i| (i * 7 % 5) as u16).collect();
        let next: Vec<u16> = (0..n).map(|i| (i * 13 % 4) as u16).collect();
        let base: Vec<u32> = (0..n).map(|i| (i * 31) % n).collect();

        // Unfused reference.
        let mut ref_arena = PartitionArena::new();
        let mut ref_data = base.clone();
        let ref_outer = ref_arena.partition_col(&mut ref_data, 5, &col).unwrap();
        let ref_parts: Vec<PartRec> = ref_arena.records(&ref_outer).to_vec();
        ref_arena.pop_frame(ref_outer);
        let mut ref_children: Vec<(Vec<u32>, Vec<PartRec>)> = Vec::new();
        for part in &ref_parts {
            let sub = &mut ref_data[part.range()];
            let f = ref_arena.partition_col(sub, 4, &next).unwrap();
            ref_children.push((sub.to_vec(), ref_arena.records(&f).to_vec()));
            ref_arena.pop_frame(f);
        }

        // Fused.
        let mut arena = PartitionArena::new();
        let mut data = base.clone();
        let (outer, level) = arena
            .partition_col_fused(&mut data, 5, &col, &next, 4)
            .unwrap();
        let parts: Vec<PartRec> = arena.records(&outer).to_vec();
        assert_eq!(parts, ref_parts);
        for (i, part) in parts.iter().enumerate() {
            let hist = arena.child_hist(level, *part);
            assert_eq!(hist.buckets(), 4);
            let sub = &mut data[part.range()];
            let f = arena.partition_pre_counted(sub, 4, hist);
            assert_eq!(sub.to_vec(), ref_children[i].0, "child {i} data");
            assert_eq!(
                arena.records(&f),
                &ref_children[i].1[..],
                "child {i} records"
            );
            arena.pop_frame(f);
        }
        arena.pop_frame(outer);
        arena.pop_fused(level);
        assert_eq!(data, ref_data);
    }

    #[test]
    fn fused_rejects_out_of_range_next_key() {
        let mut arena = PartitionArena::new();
        let mut data: Vec<u32> = (0..10).collect();
        let col: Vec<u16> = vec![1; 10];
        let next: Vec<u16> = (0..10).map(|i| if i == 6 { 7 } else { 0 }).collect();
        let err = arena
            .partition_col_fused(&mut data, 3, &col, &next, 2)
            .unwrap_err();
        assert!(matches!(err, GraphError::KeyOutOfRange { key: 7, .. }));
        // Arena rolled back and works again (counts invariant intact).
        let mut data2: Vec<u32> = (0..10).collect();
        let (f, lvl) = arena
            .partition_col_fused(&mut data2, 3, &col, &col, 3)
            .unwrap();
        assert_eq!(f.len(), 1);
        arena.pop_frame(f);
        arena.pop_fused(lvl);
    }

    #[test]
    fn fused_zero_next_buckets_is_an_error_not_a_panic() {
        // Degenerate public-API call: non-empty data, zero next buckets.
        // Must be a checked error, not an index panic inside the error
        // construction — and the reported key must be the item's *real*
        // key when the column covers it, never a fabricated 0.
        let mut arena = PartitionArena::new();
        let mut data = vec![0u32];
        let err = arena
            .partition_col_fused(&mut data, 1, &[0u16], &[7u16], 0)
            .unwrap_err();
        assert_eq!(
            err,
            GraphError::KeyOutOfRange {
                key: 7,
                bucket_count: 0
            },
            "the error must carry the real first key"
        );
        // A next column that does not cover the data is its own error
        // (the old path fabricated key 0 here).
        let err = arena
            .partition_col_fused(&mut data, 1, &[0u16], &[], 0)
            .unwrap_err();
        assert_eq!(err, GraphError::ColumnTooShort { len: 0, index: 0 });
        assert!(err.to_string().contains("cannot cover position 0"));
        // Either bail leaves the arena fully usable.
        let (f, lvl) = arena
            .partition_col_fused(&mut data, 1, &[0u16], &[0u16], 1)
            .unwrap();
        assert_eq!(f.len(), 1);
        arena.pop_frame(f);
        arena.pop_fused(lvl);
        // Empty data with zero next buckets is a valid empty level.
        let mut empty: Vec<u32> = vec![];
        let (f, lvl) = arena
            .partition_col_fused(&mut empty, 1, &[], &[], 0)
            .unwrap();
        assert!(f.is_empty());
        arena.pop_frame(f);
        arena.pop_fused(lvl);
    }

    /// The batch kernels are a pure execution strategy: every pass kind
    /// produces bit-identical data, records and fused state with the
    /// kernels on and off.
    #[test]
    fn kernel_and_scalar_passes_are_bit_identical() {
        let n = 1013u32;
        let col: Vec<u16> = (0..n).map(|i| (i * 7 % 23) as u16).collect();
        let next: Vec<u16> = (0..n).map(|i| (i * 13 % 6) as u16).collect();
        let base: Vec<u32> = (0..n).map(|i| (i * 31) % n).collect();
        let mask_col: Vec<u16> = (0..n).map(|i| (i % 3) as u16).collect();

        let run = |kernel_on: bool| {
            let mut arena = PartitionArena::new();
            arena.set_kernel_enabled(kernel_on);
            assert_eq!(arena.kernel_enabled(), kernel_on);
            let mut data = base.clone();
            // Plain columnar pass.
            let f = arena.partition_col(&mut data, 23, &col).unwrap();
            let plain_recs = arena.records(&f).to_vec();
            arena.pop_frame(f);
            let plain_data = data.clone();
            // Fused pass + every child consumed.
            let mut data2 = base.clone();
            let (f, lvl) = arena
                .partition_col_fused(&mut data2, 23, &col, &next, 6)
                .unwrap();
            let fused_recs = arena.records(&f).to_vec();
            let mut children = Vec::new();
            for rec in fused_recs.clone() {
                let hist = arena.child_hist(lvl, rec);
                let sub = &mut data2[rec.range()];
                let cf = arena.partition_pre_counted(sub, 6, hist);
                children.push((sub.to_vec(), arena.records(&cf).to_vec()));
                arena.pop_frame(cf);
            }
            arena.pop_frame(f);
            arena.pop_fused(lvl);
            // Mask pass (the β group-by shape).
            let mut data3 = base.clone();
            let mf = arena.partition_mask_cols(
                &mut data3,
                &[(mask_col.as_slice(), 1), (next.as_slice(), 2)],
            );
            let mask_recs = arena.records(&mf).to_vec();
            arena.pop_frame(mf);
            let batches = arena.take_kernel_batches();
            (
                plain_data, plain_recs, data2, fused_recs, children, data3, mask_recs, batches,
            )
        };
        let with_kernel = run(true);
        let without = run(false);
        assert_eq!(with_kernel.0, without.0, "plain pass data");
        assert_eq!(with_kernel.1, without.1, "plain pass records");
        assert_eq!(with_kernel.2, without.2, "fused pass data");
        assert_eq!(with_kernel.3, without.3, "fused pass records");
        assert_eq!(with_kernel.4, without.4, "pre-counted children");
        assert_eq!(with_kernel.5, without.5, "mask pass data");
        assert_eq!(with_kernel.6, without.6, "mask pass records");
        assert!(with_kernel.7 > 0, "kernel batches counted when enabled");
        assert_eq!(without.7, 0, "no kernel batches in scalar mode");
    }

    #[test]
    fn kernel_batches_drain() {
        let mut arena = PartitionArena::new();
        let col: Vec<u16> = (0..100).map(|i| (i % 7) as u16).collect();
        let mut data: Vec<u32> = (0..100).collect();
        let f = arena.partition_col(&mut data, 7, &col).unwrap();
        arena.pop_frame(f);
        let first = arena.take_kernel_batches();
        assert!(first > 0);
        assert_eq!(arena.take_kernel_batches(), 0, "draining resets");
    }

    #[test]
    fn mask_pass_matches_closure_pass() {
        // partition_mask_cols must equal partition_with on the same
        // match-mask key, bit for bit.
        let n = 317u32;
        let c1: Vec<u16> = (0..n).map(|i| (i % 4) as u16).collect();
        let c2: Vec<u16> = (0..n).map(|i| (i * 11 % 5) as u16).collect();
        let base: Vec<u32> = (0..n).map(|i| (i * 13) % n).collect();
        let mut arena = PartitionArena::new();

        let mut by_closure = base.clone();
        let f = arena
            .partition_with(&mut by_closure, 4, |id| {
                u16::from(c1[id as usize] == 2) | (u16::from(c2[id as usize] == 3) << 1)
            })
            .unwrap();
        let closure_recs = arena.records(&f).to_vec();
        arena.pop_frame(f);

        let mut by_mask = base.clone();
        let f = arena.partition_mask_cols(&mut by_mask, &[(c1.as_slice(), 2), (c2.as_slice(), 3)]);
        assert_eq!(arena.records(&f), &closure_recs[..]);
        arena.pop_frame(f);
        assert_eq!(by_mask, by_closure);
    }

    #[test]
    fn peak_bytes_is_stable_across_repeated_workloads() {
        let mut arena = PartitionArena::new();
        let col: Vec<u16> = (0..5000).map(|i| (i % 189) as u16).collect();
        let run = |arena: &mut PartitionArena| {
            let mut data: Vec<u32> = (0..5000).collect();
            let f = arena.partition_col(&mut data, 189, &col).unwrap();
            arena.pop_frame(f);
        };
        run(&mut arena);
        let after_first = arena.peak_bytes();
        assert!(after_first > 0);
        for _ in 0..10 {
            run(&mut arena);
        }
        assert_eq!(
            arena.peak_bytes(),
            after_first,
            "steady-state passes must not grow the arena"
        );
    }
}
