//! The zero-allocation guarantee of the partition engine, asserted with a
//! counting allocator: after one warm-up pass over a workload, driving a
//! full mining-shaped recursion (plain, fused, and pre-counted passes,
//! varied slice sizes and bucket counts) through a [`PartitionArena`]
//! performs **zero** heap allocations — per recursion node and in total.

use grm_graph::sort::PartitionArena;
use grm_graph::AttrValue;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// `System`, with every allocation and reallocation counted.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// The allocation counter is process-global, so the tests in this file
/// must not overlap — a sibling test's allocations would land inside
/// the steady-state measurement window and fail it spuriously.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Synthetic columnar workload: `dims` key columns over `n` positions,
/// deterministic values, mixed domain sizes.
fn columns(n: usize, dims: usize) -> Vec<Vec<AttrValue>> {
    (0..dims)
        .map(|d| {
            let domain = [3usize, 7, 19, 5][d % 4];
            (0..n)
                .map(|i| ((i * (d * 2 + 3) + d) % domain) as AttrValue)
                .collect()
        })
        .collect()
}

/// A mining-shaped recursion: partition by `cols[depth]` — fused with the
/// next column where the miner's cost model would fuse — then recurse
/// into every partition, consuming the pre-counted histograms exactly as
/// `grm_core::miner` does. Returns a checksum so nothing is optimized out.
fn recurse(
    arena: &mut PartitionArena,
    data: &mut [u32],
    cols: &[Vec<AttrValue>],
    buckets: &[usize],
    depth: usize,
) -> u64 {
    if depth >= cols.len() {
        return 0;
    }
    let mut sum = 0u64;
    let fuse = depth + 1 < cols.len() && data.len() * 4 >= buckets[depth] * buckets[depth + 1];
    let (frame, level) = if fuse {
        let (f, lvl) = arena
            .partition_col_fused(
                data,
                buckets[depth],
                &cols[depth],
                &cols[depth + 1],
                buckets[depth + 1],
            )
            .unwrap();
        (f, Some(lvl))
    } else {
        (
            arena
                .partition_col(data, buckets[depth], &cols[depth])
                .unwrap(),
            None,
        )
    };
    for idx in frame.indices() {
        let part = arena.record(idx);
        sum += part.value as u64 * part.len() as u64;
        let sub = &mut data[part.range()];
        if let Some(lvl) = level {
            // Consume the pre-counted histogram for the child's first
            // pass, then let the child continue deeper on its own.
            let hist = arena.child_hist(lvl, part);
            let child = arena.partition_pre_counted(sub, buckets[depth + 1], hist);
            for j in child.indices() {
                let p = arena.record(j);
                sum += p.value as u64;
                sum += recurse(arena, &mut sub[p.range()], cols, buckets, depth + 2);
            }
            arena.pop_frame(child);
        } else {
            sum += recurse(arena, sub, cols, buckets, depth + 1);
        }
    }
    if let Some(lvl) = level {
        arena.pop_fused(lvl);
    }
    arena.pop_frame(frame);
    sum
}

#[test]
fn steady_state_recursion_allocates_nothing() {
    let _serial = SERIAL.lock().unwrap();
    let n = 20_000usize;
    let cols = columns(n, 4);
    let buckets: Vec<usize> = [3, 7, 19, 5].to_vec();
    let mut arena = PartitionArena::new();
    let mut data: Vec<u32> = (0..n as u32).collect();

    // Warm-up: grows every arena buffer to this workload's sizes.
    let warm = recurse(&mut arena, &mut data, &cols, &buckets, 0);
    let peak = arena.peak_bytes();
    assert!(peak > 0);

    // Steady state: repeat the full recursion; the allocator must not be
    // touched once, and the arena must not grow.
    data.clear();
    data.extend(0..n as u32);
    let before = allocs();
    let again = recurse(&mut arena, &mut data, &cols, &buckets, 0);
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "steady-state partition recursion performed heap allocations"
    );
    assert_eq!(warm, again, "recursion must be deterministic");
    assert_eq!(arena.peak_bytes(), peak, "arena grew after warm-up");
}

#[test]
fn partitions_stay_correct_under_reuse() {
    let _serial = SERIAL.lock().unwrap();
    // Same harness, smaller, with output verification: after the full
    // recursion the data is sorted by the composite key prefix.
    let n = 3_000usize;
    let cols = columns(n, 3);
    let buckets: Vec<usize> = [3, 7, 19].to_vec();
    let mut arena = PartitionArena::new();
    let mut data: Vec<u32> = (0..n as u32).collect();
    recurse(&mut arena, &mut data, &cols, &buckets, 0);
    // The first-level partition dominates the final order.
    for w in data.windows(2) {
        assert!(cols[0][w[0] as usize] <= cols[0][w[1] as usize]);
    }
    let mut sorted: Vec<u32> = data.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>(), "permutation");
}
