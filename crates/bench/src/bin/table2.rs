//! Regenerate **Table II**: top GRs ranked by nhp vs ranked by conf.
//!
//! ```text
//! cargo run --release -p grm-bench --bin table2 -- pokec [scale]
//! cargo run --release -p grm-bench --bin table2 -- dblp  [scale]
//! ```
//!
//! Paper settings: minSupp = 0.1% of |E|, minNhp = minConf = 50%,
//! k = 300 (Pokec) / 20 (DBLP); the table prints the top 5 of each column
//! plus the planted-pattern probes discussed in §VI-B / §VI-C.

use grm_bench::{fixture, secs, timed, Dataset, Table};
use grm_core::{query, GrBuilder, GrMiner, MinerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dataset = match args.first().map(String::as_str) {
        Some("dblp") => Dataset::Dblp,
        Some("pokec") | None => Dataset::Pokec,
        Some(other) => {
            eprintln!("unknown dataset `{other}` (expected pokec|dblp)");
            std::process::exit(2);
        }
    };
    let default_scale = match dataset {
        Dataset::Pokec => 0.1,
        Dataset::Dblp => 1.0,
    };
    let scale: f64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_scale);

    eprintln!("[table2] generating {} at scale {scale}…", dataset.name());
    let graph = fixture(dataset, scale);
    let schema = graph.schema();
    // The paper's minSupp is 0.1% of |E| at full Pokec scale (21M edges).
    // At reduced scale the same relative threshold admits sampling-noise
    // GRs on tiny groups, so below half scale we raise it to 0.4% — the
    // equivalent noise floor (conf noise shrinks with sqrt(group size)).
    let rel = if dataset == Dataset::Pokec && scale < 0.5 {
        0.004
    } else {
        0.001
    };
    let min_supp = (((graph.edge_count() as f64) * rel) as u64).max(1);
    let k = match dataset {
        Dataset::Pokec => 300,
        Dataset::Dblp => 20,
    };
    println!(
        "# Table II{} — {} ({} nodes, {} edges, minSupp {} = {}%, min nhp/conf 50%, k = {k})\n",
        if dataset == Dataset::Pokec { "a" } else { "b" },
        dataset.name(),
        graph.node_count(),
        graph.edge_count(),
        min_supp,
        rel * 100.0
    );

    let (nhp, t_nhp) = timed(|| GrMiner::new(&graph, MinerConfig::nhp(min_supp, 0.5, k)).mine());
    let (conf, t_conf) = timed(|| GrMiner::new(&graph, MinerConfig::conf(min_supp, 0.5, k)).mine());

    let mut table = Table::new(["rank", "ranked by nhp", "nhp", "supp", "(conf)"]);
    for (i, x) in nhp.top.iter().take(5).enumerate() {
        table.row([
            format!("{}", i + 1),
            x.gr.display(schema),
            format!("{:.1}%", x.score * 100.0),
            x.supp.to_string(),
            format!("{:.1}%", x.conf() * 100.0),
        ]);
    }
    println!("{}", table.render());

    let mut table = Table::new(["rank", "ranked by conf", "conf", "supp", "trivial?"]);
    for (i, x) in conf.top.iter().take(5).enumerate() {
        table.row([
            format!("{}", i + 1),
            x.gr.display(schema),
            format!("{:.1}%", x.score * 100.0),
            x.supp.to_string(),
            if x.gr.is_trivial(schema) { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("{}", table.render());

    let trivial = conf
        .top
        .iter()
        .take(5)
        .filter(|x| x.gr.is_trivial(schema))
        .count();
    println!(
        "trivial GRs in conf top-5: {trivial}/5 (paper: 4/5 on Pokec); \
         mining took nhp={}s conf={}s\n",
        secs(t_nhp),
        secs(t_conf)
    );

    // Planted-pattern probes (the §VI-B / §VI-C discussion rows).
    println!("## planted-pattern probes\n");
    let mut probes = Table::new(["gr", "supp", "conf", "nhp"]);
    let probe_list: Vec<grm_core::Gr> = match dataset {
        Dataset::Pokec => vec![
            GrBuilder::new(schema)
                .l("Looking", "Chat")
                .r("Looking", "GoodFriend")
                .build()
                .unwrap(),
            GrBuilder::new(schema)
                .l("Education", "Basic")
                .r("Education", "Secondary")
                .build()
                .unwrap(),
            GrBuilder::new(schema)
                .l("Looking", "SexualPartner")
                .r("Gender", "F")
                .build()
                .unwrap(),
            GrBuilder::new(schema)
                .l("Gender", "M")
                .l("Looking", "SexualPartner")
                .r("Gender", "F")
                .build()
                .unwrap(),
            GrBuilder::new(schema)
                .l("Gender", "F")
                .l("Looking", "SexualPartner")
                .r("Gender", "M")
                .build()
                .unwrap(),
            GrBuilder::new(schema)
                .l("Gender", "M")
                .l("Age", "25-34")
                .r("Age", "18-24")
                .build()
                .unwrap(),
            GrBuilder::new(schema)
                .l("Gender", "F")
                .l("Age", "25-34")
                .r("Age", "18-24")
                .build()
                .unwrap(),
        ],
        Dataset::Dblp => vec![
            GrBuilder::new(schema)
                .l("Area", "AI")
                .r("Productivity", "Poor")
                .build()
                .unwrap(),
            GrBuilder::new(schema)
                .l("Area", "DB")
                .w("S", "often")
                .r("Area", "DM")
                .build()
                .unwrap(),
            GrBuilder::new(schema)
                .l("Productivity", "Poor")
                .r("Productivity", "Poor")
                .build()
                .unwrap(),
            GrBuilder::new(schema)
                .l("Productivity", "Excellent")
                .r("Area", "DB")
                .build()
                .unwrap(),
            GrBuilder::new(schema)
                .l("Area", "IR")
                .r("Productivity", "Poor")
                .build()
                .unwrap(),
            GrBuilder::new(schema)
                .l("Area", "AI")
                .l("Productivity", "Good")
                .r("Area", "DM")
                .build()
                .unwrap(),
        ],
    };
    let pct = |v: Option<f64>| v.map_or("n/a".into(), |x| format!("{:.1}%", x * 100.0));
    for gr in &probe_list {
        let m = query::evaluate(&graph, gr);
        probes.row([
            gr.display(schema),
            m.supp.to_string(),
            pct(m.conf),
            pct(m.nhp),
        ]);
    }
    println!("{}", probes.render());
}
