//! Regenerate the **Fig. 4** runtime series (§VI-D) on the Pokec-like
//! workload, plus the §VI-D DBLP sub-second runtime check.
//!
//! ```text
//! cargo run --release -p grm-bench --bin fig4 -- a            # time vs minSupp
//! cargo run --release -p grm-bench --bin fig4 -- b            # time vs minNhp
//! cargo run --release -p grm-bench --bin fig4 -- c            # time vs k × minNhp
//! cargo run --release -p grm-bench --bin fig4 -- d            # time vs dimensionality
//! cargo run --release -p grm-bench --bin fig4 -- dblp-runtime # §VI-D check
//! cargo run --release -p grm-bench --bin fig4 -- all [scale]
//! ```
//!
//! As in the paper: GRMiner(k) pushes all constraints, GRMiner everything
//! except the dynamic top-k bound, BL1/BL2 prune on support only. Default
//! parameters mirror §VI-D — 4 node attributes (8 GR dimensions),
//! minSupp 50 (scaled), minNhp 50%, k 100. Output is one markdown table
//! per figure (absolute numbers are machine-local; the paper's claims are
//! about the relative shapes).

use grm_bench::{fixture, secs, timed, Dataset, Table};
use grm_core::baseline::{mine_baseline_with_dims, BaselineKind};
use grm_core::{Dims, GrMiner, MinerConfig};
use grm_graph::{NodeAttrId, SocialGraph};
use std::time::Duration;

/// The four-attribute dimension set of §VI-D: "the four node attributes
/// with largest domain sizes, i.e. Age, Region, Education and
/// What-looking-for" (ids 1..=4 in our Pokec schema).
fn default_dims(graph: &SocialGraph) -> Dims {
    Dims::subset(
        graph.schema(),
        &[NodeAttrId(1), NodeAttrId(2), NodeAttrId(3), NodeAttrId(4)],
        &[],
    )
}

struct Algo {
    name: &'static str,
    run: fn(&SocialGraph, &MinerConfig, &Dims) -> Duration,
}

const ALGOS: [Algo; 4] = [
    Algo {
        name: "GRMiner(k)",
        run: |g, cfg, d| timed(|| GrMiner::with_dims(g, cfg.clone(), d.clone()).mine()).1,
    },
    Algo {
        name: "GRMiner",
        run: |g, cfg, d| {
            timed(|| GrMiner::with_dims(g, cfg.clone().without_dynamic_topk(), d.clone()).mine()).1
        },
    },
    Algo {
        name: "BL2",
        run: |g, cfg, d| timed(|| mine_baseline_with_dims(g, cfg, d, BaselineKind::Bl2)).1,
    },
    Algo {
        name: "BL1",
        run: |g, cfg, d| timed(|| mine_baseline_with_dims(g, cfg, d, BaselineKind::Bl1)).1,
    },
];

fn base_config(graph: &SocialGraph) -> MinerConfig {
    // §VI-D defaults: minSupp 50, minNhp 50%, k 100. We keep minSupp at
    // |E|/2000 (= 50 on a 100k-edge graph) so the off-axis figures run at
    // a moderate support; Fig. 4a sweeps the support axis itself.
    let min_supp = (graph.edge_count() as u64 / 2000).max(10);
    MinerConfig::nhp(min_supp, 0.5, 100)
}

fn fig4a(graph: &SocialGraph) {
    let dims = default_dims(graph);
    let base = base_config(graph);
    println!("## Fig. 4a — time (s) vs minSupp (absolute)\n");
    let mut t = Table::new(
        std::iter::once("minSupp".to_string()).chain(ALGOS.iter().map(|a| a.name.to_string())),
    );
    // The paper's x-axis is absolute support on 21M edges; we sweep the
    // same absolute values — the left end (minSupp 2) is where the
    // baselines' frequent-pattern space explodes.
    for supp in [2u64, 10, 100, 1_000, 10_000] {
        let cfg = MinerConfig {
            min_supp: supp,
            ..base.clone()
        };
        let mut row = vec![supp.to_string()];
        for a in &ALGOS {
            row.push(secs((a.run)(graph, &cfg, &dims)));
        }
        t.row(row);
    }
    println!("{}", t.render());
}

fn fig4b(graph: &SocialGraph) {
    let dims = default_dims(graph);
    let base = base_config(graph);
    println!("## Fig. 4b — time (s) vs minNhp\n");
    let mut t = Table::new(
        std::iter::once("minNhp".to_string()).chain(ALGOS.iter().map(|a| a.name.to_string())),
    );
    for pct in [0u32, 20, 40, 60, 80, 100] {
        let cfg = MinerConfig {
            min_score: pct as f64 / 100.0,
            ..base.clone()
        };
        let mut row = vec![format!("{pct}%")];
        for a in &ALGOS {
            row.push(secs((a.run)(graph, &cfg, &dims)));
        }
        t.row(row);
    }
    println!("{}", t.render());
}

fn fig4c(graph: &SocialGraph) {
    let dims = default_dims(graph);
    let base = base_config(graph);
    println!("## Fig. 4c — GRMiner(k) time (s) vs k × minNhp\n");
    let mut t = Table::new(["k \\ minNhp", "0%", "25%", "50%", "75%", "100%"]);
    for k in [1usize, 10, 100, 1_000, 10_000] {
        let mut row = vec![k.to_string()];
        for pct in [0u32, 25, 50, 75, 100] {
            let cfg = MinerConfig {
                k,
                min_score: pct as f64 / 100.0,
                ..base.clone()
            };
            let d = timed(|| GrMiner::with_dims(graph, cfg, dims.clone()).mine()).1;
            row.push(secs(d));
        }
        t.row(row);
    }
    println!("{}", t.render());
}

fn fig4d(graph: &SocialGraph) {
    let base = base_config(graph);
    println!("## Fig. 4d — time (s) vs dimensionality (2·l node attrs)\n");
    let mut t = Table::new(
        std::iter::once("dims".to_string()).chain(ALGOS.iter().map(|a| a.name.to_string())),
    );
    let all: Vec<NodeAttrId> = graph.schema().node_attr_ids().collect();
    for l in 2..=all.len() {
        let dims = Dims::subset(graph.schema(), &all[..l], &[]);
        let mut row = vec![format!("{}", 2 * l)];
        for a in &ALGOS {
            row.push(secs((a.run)(graph, &base, &dims)));
        }
        t.row(row);
    }
    println!("{}", t.render());
}

fn dblp_runtime() {
    // §VI-D: "Our algorithm finished running on the DBLP data set in no
    // more than 0.483 seconds for all parameter settings."
    let graph = fixture(Dataset::Dblp, 1.0);
    println!(
        "## §VI-D DBLP runtime — full scale ({} nodes, {} edges)\n",
        graph.node_count(),
        graph.edge_count()
    );
    let mut t = Table::new(["setting", "GRMiner(k) time (s)"]);
    let mut worst = Duration::ZERO;
    for (supp, nhp, k) in [
        (2u64, 0.0, 10_000usize),
        (67, 0.5, 20),
        (67, 0.0, 100),
        (668, 0.5, 20),
        (2, 0.9, 20),
    ] {
        let cfg = MinerConfig::nhp(supp, nhp, k);
        let d = timed(|| GrMiner::new(&graph, cfg).mine()).1;
        worst = worst.max(d);
        t.row([format!("minSupp={supp} minNhp={nhp} k={k}"), secs(d)]);
    }
    println!("{}", t.render());
    println!(
        "worst case: {}s (paper: <= 0.483s on 2009-era hardware)\n",
        secs(worst)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.1);

    if which == "dblp-runtime" {
        dblp_runtime();
        return;
    }

    eprintln!("[fig4] generating pokec fixture at scale {scale}…");
    let graph = fixture(Dataset::Pokec, scale);
    println!(
        "# Fig. 4 — Pokec-like at scale {scale} ({} nodes, {} edges)\n",
        graph.node_count(),
        graph.edge_count()
    );
    match which {
        "a" => fig4a(&graph),
        "b" => fig4b(&graph),
        "c" => fig4c(&graph),
        "d" => fig4d(&graph),
        "all" => {
            fig4a(&graph);
            fig4b(&graph);
            fig4c(&graph);
            fig4d(&graph);
            dblp_runtime();
        }
        other => {
            eprintln!("unknown figure `{other}` (expected a|b|c|d|dblp-runtime|all)");
            std::process::exit(2);
        }
    }
}
