//! `bench_json` — machine-readable micro numbers for the CI perf
//! trajectory.
//!
//! Times the partition-engine cells (the tentpole's before/after
//! comparison: allocating legacy primitive vs arena pass, two-level
//! unfused vs fused) plus the β group-by, with plain `Instant` timing —
//! no criterion, so the output shape is stable and trivially diffable
//! across commits. Writes one JSON document:
//!
//! ```text
//! bench_json [out.json]        # default BENCH_partition.json
//! ```
//!
//! Schema (`grm-bench-partition/1`): `results[]` of
//! `{group, bench, n, median_ns, ns_per_item}`, medians over
//! [`SAMPLES`] timed repetitions after a warm-up. Consumers key on
//! `(group, bench, n)` — append new cells, never repurpose old names.

use grm_bench::Table;
use grm_graph::sort::PartitionArena;
use grm_graph::AttrValue;
use std::time::Instant;

/// Timed repetitions per cell (median reported).
const SAMPLES: usize = 15;

struct Cell {
    group: &'static str,
    bench: &'static str,
    n: usize,
    median_ns: u128,
}

fn median_ns(mut f: impl FnMut() -> u64) -> u128 {
    // One warm-up (grows arenas, faults pages), then SAMPLES timed runs.
    let mut sink = f();
    let mut times: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            sink = sink.wrapping_add(f());
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    // Keep the checksum observable so the work cannot be optimized away.
    if sink == u64::MAX {
        eprintln!("checksum {sink}");
    }
    times[times.len() / 2]
}

/// The pre-PR partition primitive — the baseline the arena is measured
/// against; mirrors the cell in `benches/micro.rs` and the old
/// `partition_in_place` exactly: `counts`/`keybuf` are reused scratch
/// (the old `SortScratch`), while offsets, cursor, the scatter buffer
/// and the result Vec are allocated per call.
fn legacy_partition(
    data: &mut [u32],
    bucket_count: usize,
    counts: &mut Vec<u32>,
    keybuf: &mut Vec<u32>,
    col: &[AttrValue],
) -> u64 {
    counts.clear();
    counts.resize(bucket_count, 0);
    keybuf.clear();
    keybuf.reserve(data.len());
    for &id in data.iter() {
        let k = col[id as usize];
        counts[k as usize] += 1;
        keybuf.push(k as u32);
    }
    let mut offsets = Vec::with_capacity(bucket_count);
    let mut acc = 0u32;
    for &c in counts.iter() {
        offsets.push(acc);
        acc += c;
    }
    let mut cursor = offsets.clone();
    let mut out = vec![0u32; data.len()];
    for (i, &id) in data.iter().enumerate() {
        let k = keybuf[i] as usize;
        out[cursor[k] as usize] = id;
        cursor[k] += 1;
    }
    data.copy_from_slice(&out);
    counts.iter().filter(|&&c| c > 0).count() as u64
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_partition.json".to_string());
    let mut cells: Vec<Cell> = Vec::new();

    for n in [10_000usize, 100_000] {
        let col: Vec<AttrValue> = (0..n).map(|i| (i % 188 + 1) as u16).collect();
        let narrow: Vec<AttrValue> = (0..n).map(|i| (i % 5 + 1) as u16).collect();
        let next: Vec<AttrValue> = (0..n).map(|i| (i * 7 % 5) as u16).collect();
        let base: Vec<u32> = (0..n as u32).map(|i| (i * 31) % n as u32).collect();

        let mut data = base.clone();
        let mut counts = Vec::new();
        let mut keybuf = Vec::new();
        cells.push(Cell {
            group: "partition",
            bench: "alloc_per_call",
            n,
            median_ns: median_ns(|| {
                data.copy_from_slice(&base);
                legacy_partition(&mut data, 189, &mut counts, &mut keybuf, &col)
            }),
        });

        let mut arena = PartitionArena::new();
        let mut data = base.clone();
        cells.push(Cell {
            group: "partition",
            bench: "arena",
            n,
            median_ns: median_ns(|| {
                data.copy_from_slice(&base);
                let frame = arena.partition_col(&mut data, 189, &col).unwrap();
                let parts = frame.len() as u64;
                arena.pop_frame(frame);
                parts
            }),
        });

        let mut arena = PartitionArena::new();
        let mut data = base.clone();
        cells.push(Cell {
            group: "partition",
            bench: "two_level_unfused",
            n,
            median_ns: median_ns(|| {
                data.copy_from_slice(&base);
                let frame = arena.partition_col(&mut data, 6, &narrow).unwrap();
                let mut total = 0u64;
                for idx in frame.indices() {
                    let part = arena.record(idx);
                    let sub = &mut data[part.range()];
                    let child = arena.partition_col(sub, 5, &next).unwrap();
                    total += child.len() as u64;
                    arena.pop_frame(child);
                }
                arena.pop_frame(frame);
                total
            }),
        });

        let mut arena = PartitionArena::new();
        let mut data = base.clone();
        cells.push(Cell {
            group: "partition",
            bench: "two_level_fused",
            n,
            median_ns: median_ns(|| {
                data.copy_from_slice(&base);
                let (frame, level) = arena
                    .partition_col_fused(&mut data, 6, &narrow, &next, 5)
                    .unwrap();
                let mut total = 0u64;
                for idx in frame.indices() {
                    let part = arena.record(idx);
                    let hist = arena.child_hist(level, part);
                    let sub = &mut data[part.range()];
                    let child = arena.partition_pre_counted(sub, 5, hist);
                    total += child.len() as u64;
                    arena.pop_frame(child);
                }
                arena.pop_frame(frame);
                arena.pop_fused(level);
                total
            }),
        });
    }

    // JSON by hand: the shape is flat and the vendored serde stub would
    // add nothing but indirection here.
    let mut json = String::from("{\n  \"schema\": \"grm-bench-partition/1\",\n  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let per_item = c.median_ns as f64 / c.n as f64;
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"bench\": \"{}\", \"n\": {}, \"median_ns\": {}, \"ns_per_item\": {:.3}}}{}\n",
            c.group,
            c.bench,
            c.n,
            c.median_ns,
            per_item,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }

    // Human-readable echo for the CI log.
    let mut table = Table::new(["group/bench", "n", "median_ns", "ns/item"]);
    for c in &cells {
        table.row([
            format!("{}/{}", c.group, c.bench),
            c.n.to_string(),
            c.median_ns.to_string(),
            format!("{:.3}", c.median_ns as f64 / c.n as f64),
        ]);
    }
    println!("{}", table.render());
    eprintln!("wrote {out_path}");
}
