//! `bench_json` — machine-readable perf numbers for the CI trajectory.
//!
//! Three cell groups, selected with `--group` (plain `Instant` timing —
//! no criterion, so the output shape is stable and trivially diffable
//! across commits):
//!
//! * `partition` (default) — the partition-engine micro cells
//!   (allocating legacy primitive vs arena pass, two-level unfused vs
//!   fused);
//! * `kernel` — the vectorized counting-kernel cells (scalar histogram
//!   vs SWAR stripes, scalar vs batched gather, and the full arena
//!   counting pass with the kernels on/off — the micro before/after of
//!   the `scalar_kernel_off` ablation);
//! * `parallel` — end-to-end thread scaling of the work-stealing miner
//!   on full-dims Pokec: sequential GRMiner(k), the work-stealing engine
//!   at 1/2/4 threads, and the static-queue 4-thread engine it replaced;
//! * `shard` — the sharded out-of-core engine on the same Pokec
//!   fixture: spill-store build cost, the sharded mine at 1/4 shards and
//!   1/4 workers, and the 4-shard mine under a whole-graph memory
//!   budget — the out-of-core overhead relative to the in-core mine.
//!
//! ```text
//! bench_json [--group partition|kernel|parallel|shard] [out.json]
//! # defaults: --group partition → BENCH_partition.json
//! #           --group kernel    → BENCH_kernel.json
//! #           --group parallel  → BENCH_parallel.json
//! #           --group shard     → BENCH_shard.json
//! ```
//!
//! Schema (`grm-bench-<group>/1`): `results[]` of
//! `{group, bench, n, median_ns, ns_per_item}`, medians over a handful
//! of timed repetitions after a warm-up (`n` is the input size the cell
//! works over — items for micro cells, edges for mining cells).
//! Consumers key on `(group, bench, n)` — append new cells, never
//! repurpose old names.

use grm_bench::{fixture, Dataset, Table};
use grm_core::parallel::{mine_parallel_with_opts, ParallelOptions};
use grm_core::{Dims, GrMiner, MinerConfig};
use grm_graph::kernel;
use grm_graph::sort::PartitionArena;
use grm_graph::AttrValue;
use std::time::Instant;

/// Timed repetitions per micro cell (median reported).
const SAMPLES: usize = 15;

/// Timed repetitions per end-to-end mining cell — each run is a full
/// mine over the Pokec fixture, so fewer samples suffice for a stable
/// median.
const MINE_SAMPLES: usize = 9;

struct Cell {
    group: &'static str,
    bench: &'static str,
    n: usize,
    median_ns: u128,
}

fn median_ns_over(samples: usize, mut f: impl FnMut() -> u64) -> u128 {
    // One warm-up (grows arenas, faults pages), then `samples` timed
    // runs.
    let mut sink = f();
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            sink = sink.wrapping_add(f());
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    // Keep the checksum observable so the work cannot be optimized away.
    if sink == u64::MAX {
        eprintln!("checksum {sink}");
    }
    times[times.len() / 2]
}

fn median_ns(f: impl FnMut() -> u64) -> u128 {
    median_ns_over(SAMPLES, f)
}

/// The pre-PR partition primitive — the baseline the arena is measured
/// against; mirrors the cell in `benches/micro.rs` and the old
/// `partition_in_place` exactly: `counts`/`keybuf` are reused scratch
/// (the old `SortScratch`), while offsets, cursor, the scatter buffer
/// and the result Vec are allocated per call.
fn legacy_partition(
    data: &mut [u32],
    bucket_count: usize,
    counts: &mut Vec<u32>,
    keybuf: &mut Vec<u32>,
    col: &[AttrValue],
) -> u64 {
    counts.clear();
    counts.resize(bucket_count, 0);
    keybuf.clear();
    keybuf.reserve(data.len());
    for &id in data.iter() {
        let k = col[id as usize];
        counts[k as usize] += 1;
        keybuf.push(k as u32);
    }
    let mut offsets = Vec::with_capacity(bucket_count);
    let mut acc = 0u32;
    for &c in counts.iter() {
        offsets.push(acc);
        acc += c;
    }
    let mut cursor = offsets.clone();
    let mut out = vec![0u32; data.len()];
    for (i, &id) in data.iter().enumerate() {
        let k = keybuf[i] as usize;
        out[cursor[k] as usize] = id;
        cursor[k] += 1;
    }
    data.copy_from_slice(&out);
    counts.iter().filter(|&&c| c > 0).count() as u64
}

fn partition_cells() -> Vec<Cell> {
    let mut cells: Vec<Cell> = Vec::new();

    for n in [10_000usize, 100_000] {
        let col: Vec<AttrValue> = (0..n).map(|i| (i % 188 + 1) as u16).collect();
        let narrow: Vec<AttrValue> = (0..n).map(|i| (i % 5 + 1) as u16).collect();
        let next: Vec<AttrValue> = (0..n).map(|i| (i * 7 % 5) as u16).collect();
        let base: Vec<u32> = (0..n as u32).map(|i| (i * 31) % n as u32).collect();

        let mut data = base.clone();
        let mut counts = Vec::new();
        let mut keybuf = Vec::new();
        cells.push(Cell {
            group: "partition",
            bench: "alloc_per_call",
            n,
            median_ns: median_ns(|| {
                data.copy_from_slice(&base);
                legacy_partition(&mut data, 189, &mut counts, &mut keybuf, &col)
            }),
        });

        let mut arena = PartitionArena::new();
        let mut data = base.clone();
        cells.push(Cell {
            group: "partition",
            bench: "arena",
            n,
            median_ns: median_ns(|| {
                data.copy_from_slice(&base);
                let frame = arena.partition_col(&mut data, 189, &col).unwrap();
                let parts = frame.len() as u64;
                arena.pop_frame(frame);
                parts
            }),
        });

        let mut arena = PartitionArena::new();
        let mut data = base.clone();
        cells.push(Cell {
            group: "partition",
            bench: "two_level_unfused",
            n,
            median_ns: median_ns(|| {
                data.copy_from_slice(&base);
                let frame = arena.partition_col(&mut data, 6, &narrow).unwrap();
                let mut total = 0u64;
                for idx in frame.indices() {
                    let part = arena.record(idx);
                    let sub = &mut data[part.range()];
                    let child = arena.partition_col(sub, 5, &next).unwrap();
                    total += child.len() as u64;
                    arena.pop_frame(child);
                }
                arena.pop_frame(frame);
                total
            }),
        });

        let mut arena = PartitionArena::new();
        let mut data = base.clone();
        cells.push(Cell {
            group: "partition",
            bench: "two_level_fused",
            n,
            median_ns: median_ns(|| {
                data.copy_from_slice(&base);
                let (frame, level) = arena
                    .partition_col_fused(&mut data, 6, &narrow, &next, 5)
                    .unwrap();
                let mut total = 0u64;
                for idx in frame.indices() {
                    let part = arena.record(idx);
                    let hist = arena.child_hist(level, part);
                    let sub = &mut data[part.range()];
                    let child = arena.partition_pre_counted(sub, 5, hist);
                    total += child.len() as u64;
                    arena.pop_frame(child);
                }
                arena.pop_frame(frame);
                arena.pop_fused(level);
                total
            }),
        });
    }
    cells
}

/// The counting-kernel micro cells: scalar histogram vs the SWAR
/// striped histogram (8- and 189-bucket domains), scalar vs batched
/// gather with the hoisted range check, and the full arena counting
/// pass with the kernels on and off.
fn kernel_cells() -> Vec<Cell> {
    let mut cells: Vec<Cell> = Vec::new();
    for n in [10_000usize, 100_000] {
        for (buckets, scalar_name, swar_name) in [
            (8usize, "hist_scalar_b8", "hist_swar_b8"),
            (189, "hist_scalar_b189", "hist_swar_b189"),
        ] {
            let keys: Vec<AttrValue> = (0..n).map(|i| ((i * 7) % buckets) as u16).collect();
            let mut counts = vec![0u32; buckets];
            cells.push(Cell {
                group: "kernel",
                bench: scalar_name,
                n,
                median_ns: median_ns(|| {
                    counts.iter_mut().for_each(|c| *c = 0);
                    for &k in &keys {
                        counts[k as usize] += 1;
                    }
                    counts[buckets / 2] as u64
                }),
            });
            let mut counts = vec![0u32; buckets];
            let mut stripes = vec![0u32; kernel::STRIPES * buckets];
            cells.push(Cell {
                group: "kernel",
                bench: swar_name,
                n,
                median_ns: median_ns(|| {
                    counts.iter_mut().for_each(|c| *c = 0);
                    kernel::histogram_u32(&keys, &mut counts, &mut stripes);
                    counts[buckets / 2] as u64
                }),
            });
        }

        let col: Vec<AttrValue> = (0..n).map(|i| (i % 188 + 1) as u16).collect();
        let data: Vec<u32> = (0..n as u32).map(|i| (i * 31) % n as u32).collect();
        let mut keys = vec![0u16; n];
        cells.push(Cell {
            group: "kernel",
            bench: "gather_scalar",
            n,
            median_ns: median_ns(|| {
                let mut max = 0u16;
                for (k, &id) in keys.iter_mut().zip(&data) {
                    let v = col[id as usize];
                    max = max.max(v);
                    *k = v;
                }
                max as u64
            }),
        });
        let mut keys = vec![0u16; n];
        cells.push(Cell {
            group: "kernel",
            bench: "gather_kernel",
            n,
            median_ns: median_ns(|| kernel::gather_keys(&data, &col, &mut keys).0 as u64),
        });

        for (bench, on) in [("count_pass_scalar", false), ("count_pass_kernel", true)] {
            let mut arena = PartitionArena::new();
            arena.set_kernel_enabled(on);
            let mut d = data.clone();
            cells.push(Cell {
                group: "kernel",
                bench,
                n,
                median_ns: median_ns(|| {
                    d.copy_from_slice(&data);
                    let frame = arena.partition_col(&mut d, 189, &col).unwrap();
                    let parts = frame.len() as u64;
                    arena.pop_frame(frame);
                    parts
                }),
            });
        }
    }
    cells
}

/// End-to-end thread scaling on full-dims Pokec (minSupp 30, k 100, nhp
/// — the ablation bench's configuration): the sequential miners, the
/// work-stealing engine at 1/2/4 threads, and the static-queue engine it
/// replaced (stealing and subtree splitting off, static threshold — the
/// PR 3 behavior) at 4 threads. `n` is the edge count.
fn parallel_cells() -> Vec<Cell> {
    let graph = fixture(Dataset::Pokec, 0.05);
    let dims = Dims::all(graph.schema());
    let base = MinerConfig::nhp(30, 0.5, 100);
    let n = graph.edge_count() as usize;
    let mut cells: Vec<Cell> = Vec::new();

    let mine_cell = |bench: &'static str, cfg: MinerConfig, opts: Option<ParallelOptions>| Cell {
        group: "parallel",
        bench,
        n,
        median_ns: median_ns_over(MINE_SAMPLES, || {
            let r = match opts {
                Some(o) => mine_parallel_with_opts(&graph, &cfg, &dims, o),
                None => GrMiner::with_dims(&graph, cfg.clone(), dims.clone()).mine(),
            };
            r.top.len() as u64 + r.stats.grs_examined
        }),
    };

    cells.push(mine_cell("seq_dynamic", base.clone(), None));
    cells.push(mine_cell(
        "seq_static",
        base.clone().without_dynamic_topk(),
        None,
    ));
    for (bench, threads) in [
        ("steal_threads_1", 1usize),
        ("steal_threads_2", 2),
        ("steal_threads_4", 4),
    ] {
        cells.push(mine_cell(
            bench,
            base.clone(),
            Some(ParallelOptions {
                threads,
                ..ParallelOptions::default()
            }),
        ));
    }
    cells.push(mine_cell(
        "static_queue_threads_4",
        base.clone().without_dynamic_topk(),
        Some(ParallelOptions {
            threads: 4,
            steal: false,
            split_depth: 0,
            ..ParallelOptions::default()
        }),
    ));
    // Low-threshold cells (minNhp 0.2): here the user threshold prunes
    // little and the restored dynamic bound carries the run — the
    // end-to-end delta between these two cells is the collect-mode
    // GRMiner(k) win the static-queue engine gave up.
    let low = MinerConfig::nhp(30, 0.2, 100);
    cells.push(mine_cell(
        "steal_threads_4_minnhp02",
        low.clone(),
        Some(ParallelOptions {
            threads: 4,
            ..ParallelOptions::default()
        }),
    ));
    cells.push(mine_cell(
        "static_queue_threads_4_minnhp02",
        low.without_dynamic_topk(),
        Some(ParallelOptions {
            threads: 4,
            steal: false,
            split_depth: 0,
            ..ParallelOptions::default()
        }),
    ));
    cells
}

/// The sharded out-of-core engine on the Pokec fixture (minSupp 30,
/// k 100, nhp — the ablation configuration): the in-core sequential
/// mine as the baseline, the one-off spill-store build, and the sharded
/// mine across shard/worker counts, including a run capped at the
/// whole-graph resident cost (every unit fits alone, so the pool must
/// juggle residency instead of erroring). `n` is the edge count.
fn shard_cells() -> Vec<Cell> {
    use grm_core::{mine_sharded, ShardedOptions};
    use grm_graph::shard::{resident_cost, ShardStore};

    let graph = fixture(Dataset::Pokec, 0.05);
    let base = MinerConfig::nhp(30, 0.5, 100);
    let n = graph.edge_count() as usize;
    let root = std::env::temp_dir().join(format!("grm-bench-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut cells: Vec<Cell> = Vec::new();

    cells.push(Cell {
        group: "shard",
        bench: "in_core_seq",
        n,
        median_ns: median_ns_over(MINE_SAMPLES, || {
            let r = GrMiner::new(&graph, base.clone()).mine();
            r.top.len() as u64 + r.stats.grs_examined
        }),
    });

    cells.push(Cell {
        group: "shard",
        bench: "store_build_4",
        n,
        median_ns: median_ns_over(MINE_SAMPLES, || {
            let d = root.join("build");
            let _ = std::fs::remove_dir_all(&d);
            let store =
                ShardStore::build_from_graph(&graph, &d, 4, grm_graph::CompactModel::MAX_EDGES)
                    .unwrap();
            store.total_edges()
        }),
    });

    let store1 = ShardStore::build_from_graph(
        &graph,
        root.join("s1"),
        1,
        grm_graph::CompactModel::MAX_EDGES,
    )
    .unwrap();
    let store4 = ShardStore::build_from_graph(
        &graph,
        root.join("s4"),
        4,
        grm_graph::CompactModel::MAX_EDGES,
    )
    .unwrap();
    let whole_graph_budget = resident_cost(graph.schema(), graph.node_count(), n);
    for (bench, store, threads, memory_budget) in [
        ("sharded_1_seq", &store1, 1usize, None),
        ("sharded_4_seq", &store4, 1, None),
        ("sharded_4_threads_4", &store4, 4, None),
        (
            "sharded_4_threads_4_budgeted",
            &store4,
            4,
            Some(whole_graph_budget),
        ),
    ] {
        cells.push(Cell {
            group: "shard",
            bench,
            n,
            median_ns: median_ns_over(MINE_SAMPLES, || {
                let opts = ShardedOptions {
                    threads,
                    memory_budget,
                };
                let r = mine_sharded(store, &base, &opts).unwrap();
                r.top.len() as u64 + r.stats.shard_loads
            }),
        });
    }
    drop(store1);
    drop(store4);
    let _ = std::fs::remove_dir_all(&root);
    cells
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().filter(|a| *a == "--group").count() > 1 {
        eprintln!("--group given more than once");
        std::process::exit(2);
    }
    let group = match args.iter().position(|a| a == "--group") {
        Some(i) => match args.get(i + 1) {
            Some(g) => g.clone(),
            None => {
                eprintln!("--group is missing its value (partition|kernel|parallel|shard)");
                std::process::exit(2);
            }
        },
        None => "partition".to_string(),
    };
    let positional: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| a != "--group" && !(i > 0 && args[i - 1] == "--group"))
        .map(|(_, a)| a)
        .collect();
    // A mistyped flag must fail, not become the output filename.
    if let Some(flagish) = positional.iter().find(|a| a.starts_with('-')) {
        eprintln!(
            "unknown flag `{flagish}` (usage: bench_json [--group partition|kernel|parallel|shard] [out.json])"
        );
        std::process::exit(2);
    }
    if positional.len() > 1 {
        eprintln!("at most one output path expected, got {positional:?}");
        std::process::exit(2);
    }
    let out_path = positional
        .first()
        .map(|a| a.to_string())
        .unwrap_or_else(|| format!("BENCH_{group}.json"));
    let cells = match group.as_str() {
        "partition" => partition_cells(),
        "kernel" => kernel_cells(),
        "parallel" => parallel_cells(),
        "shard" => shard_cells(),
        other => {
            eprintln!("unknown --group `{other}` (expected partition|kernel|parallel|shard)");
            std::process::exit(2);
        }
    };

    // JSON by hand: the shape is flat and the vendored serde stub would
    // add nothing but indirection here.
    let mut json = format!("{{\n  \"schema\": \"grm-bench-{group}/1\",\n  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let per_item = c.median_ns as f64 / c.n as f64;
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"bench\": \"{}\", \"n\": {}, \"median_ns\": {}, \"ns_per_item\": {:.3}}}{}\n",
            c.group,
            c.bench,
            c.n,
            c.median_ns,
            per_item,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }

    // Human-readable echo for the CI log.
    let mut table = Table::new(["group/bench", "n", "median_ns", "ns/item"]);
    for c in &cells {
        table.row([
            format!("{}/{}", c.group, c.bench),
            c.n.to_string(),
            c.median_ns.to_string(),
            format!("{:.3}", c.median_ns as f64 / c.n as f64),
        ]);
    }
    println!("{}", table.render());
    eprintln!("wrote {out_path}");
}
