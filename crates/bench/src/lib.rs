//! # grm-bench — experiment harness
//!
//! Shared utilities for regenerating every table and figure of the paper's
//! evaluation (§VI) on the synthetic Pokec-like / DBLP-like workloads:
//! dataset fixtures (generated once, cached on disk), wall-clock timing,
//! and plain-text table rendering. The entry points are the binaries
//!
//! * `table2` — Table IIa / IIb (top GRs by nhp vs conf);
//! * `fig4` — Fig. 4a–4d runtime sweeps plus the §VI-D DBLP runtime check;
//! * `experiments` — everything, as a markdown report for EXPERIMENTS.md;
//!
//! and the Criterion benches `fig4a_minsupp`, `fig4b_minnhp`, `fig4c_topk`,
//! `fig4d_dims`, `micro`, `ablation`.

use grm_datagen::{dblp_config_scaled, generate, pokec_config_scaled, GeneratorConfig};
use grm_graph::SocialGraph;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Which synthetic dataset a fixture uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dataset {
    /// Pokec-like friendship network.
    Pokec,
    /// DBLP-like co-authorship network.
    Dblp,
}

impl Dataset {
    /// The generator config at `scale`.
    pub fn config(self, scale: f64) -> GeneratorConfig {
        match self {
            Dataset::Pokec => pokec_config_scaled(scale),
            Dataset::Dblp => dblp_config_scaled(scale),
        }
    }

    /// Short name for cache files and table headers.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Pokec => "pokec",
            Dataset::Dblp => "dblp",
        }
    }
}

/// Generate (or load from the on-disk cache under `target/grm-fixtures/`)
/// the dataset at the given scale. Caching makes repeated harness runs and
/// Criterion warm-ups cheap; delete the directory to force regeneration.
pub fn fixture(dataset: Dataset, scale: f64) -> SocialGraph {
    let dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()))
            .join("grm-fixtures");
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join(format!("{}-{scale}.grm", dataset.name()));
    if let Ok(g) = grm_graph::io::load_graph(&path) {
        return g;
    }
    let g = generate(&dataset.config(scale)).expect("builtin configs are valid");
    grm_graph::io::save_graph(&g, &path).ok();
    g
}

/// Run `f` once and return (result, elapsed).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Minimal fixed-width table printer for harness output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render with aligned columns (markdown-compatible pipes).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a duration as fractional seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new(["metric", "value"]);
        t.row(["nhp", "0.687"]);
        t.row(["supp", "682715"]);
        let s = t.render();
        assert!(s.contains("| metric | value  |"));
        assert!(s.lines().count() == 4);
        assert!(s.lines().nth(1).unwrap().starts_with("|--"));
    }

    #[test]
    fn fixtures_cache_round_trip() {
        let a = fixture(Dataset::Dblp, 0.01);
        let b = fixture(Dataset::Dblp, 0.01);
        assert_eq!(a.edge_count(), b.edge_count());
        assert!(a.edge_count() > 0);
    }

    #[test]
    fn timed_measures() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
