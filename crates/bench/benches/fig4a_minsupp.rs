//! Criterion bench for **Fig. 4a**: runtime vs `minSupp` for GRMiner(k),
//! GRMiner, BL2 and BL1 on the Pokec-like workload (4 node attributes =
//! 8 GR dimensions, minNhp 50%, k 100 — the §VI-D defaults).
//!
//! Expected shape: as minSupp shrinks the baselines blow up while both
//! GRMiner variants stay nearly flat (their `minNhp` pruning, Theorem 3,
//! does not depend on support).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grm_bench::{fixture, Dataset};
use grm_core::baseline::{mine_baseline_with_dims, BaselineKind};
use grm_core::{Dims, GrMiner, MinerConfig};
use grm_graph::NodeAttrId;

fn bench(c: &mut Criterion) {
    let graph = fixture(Dataset::Pokec, 0.05);
    let dims = Dims::subset(
        graph.schema(),
        &[NodeAttrId(1), NodeAttrId(2), NodeAttrId(3), NodeAttrId(4)],
        &[],
    );
    let mut group = c.benchmark_group("fig4a_minsupp");
    group.sample_size(10);

    for min_supp in [5u64, 10, 30, 100, 300] {
        let cfg = MinerConfig::nhp(min_supp, 0.5, 100);
        group.bench_with_input(BenchmarkId::new("grminer_k", min_supp), &cfg, |b, cfg| {
            b.iter(|| GrMiner::with_dims(&graph, cfg.clone(), dims.clone()).mine())
        });
        let static_cfg = cfg.clone().without_dynamic_topk();
        group.bench_with_input(
            BenchmarkId::new("grminer", min_supp),
            &static_cfg,
            |b, cfg| b.iter(|| GrMiner::with_dims(&graph, cfg.clone(), dims.clone()).mine()),
        );
        group.bench_with_input(BenchmarkId::new("bl2", min_supp), &cfg, |b, cfg| {
            b.iter(|| mine_baseline_with_dims(&graph, cfg, &dims, BaselineKind::Bl2))
        });
        group.bench_with_input(BenchmarkId::new("bl1", min_supp), &cfg, |b, cfg| {
            b.iter(|| mine_baseline_with_dims(&graph, cfg, &dims, BaselineKind::Bl1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
