//! Ablations of the design choices DESIGN.md calls out:
//!
//! * dynamic top-k bound on/off (GRMiner(k) vs GRMiner);
//! * generality filter on/off;
//! * nhp pruning vs support-only (emulating a BUC-style traversal by
//!   setting min_score to 0 with a huge k);
//! * sequential vs parallel miner at 1/2/4/8 threads;
//! * lift mining, whose `supp(r)` marginals the shared context serves
//!   from one precomputed table instead of per-task rescans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grm_bench::{fixture, Dataset};
use grm_core::parallel::{mine_parallel_with_opts, ParallelOptions};
use grm_core::{Dims, GrMiner, MinerConfig, RankMetric};
use grm_graph::NodeAttrId;

fn bench(c: &mut Criterion) {
    let graph = fixture(Dataset::Pokec, 0.05);
    let dims = Dims::subset(
        graph.schema(),
        &[NodeAttrId(1), NodeAttrId(2), NodeAttrId(3), NodeAttrId(4)],
        &[],
    );
    let base = MinerConfig::nhp(30, 0.5, 100);

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    group.bench_function("dynamic_topk_on", |b| {
        b.iter(|| GrMiner::with_dims(&graph, base.clone(), dims.clone()).mine())
    });
    group.bench_function("dynamic_topk_off", |b| {
        let cfg = base.clone().without_dynamic_topk();
        b.iter(|| GrMiner::with_dims(&graph, cfg.clone(), dims.clone()).mine())
    });
    group.bench_function("fused_partition_off", |b| {
        // The fused two-level partition engine disabled: every RIGHT-chain
        // first pass re-reads its slice to count. Results bit-identical.
        let cfg = base.clone().without_fused_partitions();
        b.iter(|| GrMiner::with_dims(&graph, cfg.clone(), dims.clone()).mine())
    });
    group.bench_function("scalar_kernel_off", |b| {
        // The vectorized counting kernels disabled: every gather,
        // histogram, mask and fused-scatter loop runs its scalar
        // baseline. Results bit-identical; the delta is the kernel's
        // end-to-end win.
        let cfg = base.clone().without_kernel();
        b.iter(|| GrMiner::with_dims(&graph, cfg.clone(), dims.clone()).mine())
    });
    group.bench_function("generality_off", |b| {
        let cfg = MinerConfig {
            generality_filter: false,
            ..base.clone()
        };
        b.iter(|| GrMiner::with_dims(&graph, cfg.clone(), dims.clone()).mine())
    });
    group.bench_function("score_pruning_off", |b| {
        // Support-only pruning: what the search costs without Theorem 3.
        let cfg = MinerConfig {
            min_score: 0.0,
            k: usize::MAX >> 1,
            dynamic_topk: false,
            ..base.clone()
        };
        b.iter(|| GrMiner::with_dims(&graph, cfg.clone(), dims.clone()).mine())
    });
    // Lift needs an RHS marginal per candidate; the shared context
    // precomputes the single-attribute table once per run and shares the
    // multi-attribute memo across parallel tasks.
    let lift = MinerConfig {
        min_score: f64::NEG_INFINITY,
        dynamic_topk: false,
        ..base.clone().with_metric(RankMetric::Lift)
    };
    group.bench_function("lift_marginals_seq", |b| {
        b.iter(|| GrMiner::with_dims(&graph, lift.clone(), dims.clone()).mine())
    });
    group.bench_with_input(
        BenchmarkId::new("lift_marginals_par", 4),
        &4usize,
        |b, &t| {
            b.iter(|| {
                mine_parallel_with_opts(
                    &graph,
                    &lift,
                    &dims,
                    ParallelOptions {
                        threads: t,
                        ..ParallelOptions::default()
                    },
                )
            })
        },
    );
    // Parallel scaling, with and without dominant-task splitting: the
    // delta at high thread counts is the granularity bound the split
    // removes (Pokec's Region dominates the unsplit task list).
    for split_dominant in [false, true] {
        for threads in [1usize, 2, 4, 8] {
            if split_dominant && threads == 1 {
                // A single-threaded pool never splits; this cell would
                // duplicate parallel/1.
                continue;
            }
            let cfg = base.clone().without_dynamic_topk();
            let tag = if split_dominant {
                "parallel_split"
            } else {
                "parallel"
            };
            group.bench_with_input(BenchmarkId::new(tag, threads), &threads, |b, &t| {
                b.iter(|| {
                    mine_parallel_with_opts(
                        &graph,
                        &cfg,
                        &dims,
                        ParallelOptions {
                            threads: t,
                            split_dominant,
                            ..ParallelOptions::default()
                        },
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
