//! Criterion bench for **Fig. 4d**: runtime vs dimensionality (2·l for the
//! first l node attributes, l = 2..6).
//!
//! Expected shape: all algorithms grow with dimensionality, the baselines
//! much faster — "as more attributes can occur on RHS, there is more room
//! for minNhp pruning" (Theorem 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grm_bench::{fixture, Dataset};
use grm_core::baseline::{mine_baseline_with_dims, BaselineKind};
use grm_core::{Dims, GrMiner, MinerConfig};
use grm_graph::NodeAttrId;

fn bench(c: &mut Criterion) {
    let graph = fixture(Dataset::Pokec, 0.05);
    let all: Vec<NodeAttrId> = graph.schema().node_attr_ids().collect();
    let cfg = MinerConfig::nhp(30, 0.5, 100);
    let mut group = c.benchmark_group("fig4d_dims");
    group.sample_size(10);

    for l in 2..=6usize {
        let dims = Dims::subset(graph.schema(), &all[..l], &[]);
        group.bench_with_input(BenchmarkId::new("grminer_k", 2 * l), &dims, |b, dims| {
            b.iter(|| GrMiner::with_dims(&graph, cfg.clone(), dims.clone()).mine())
        });
        let static_cfg = cfg.clone().without_dynamic_topk();
        group.bench_with_input(BenchmarkId::new("grminer", 2 * l), &dims, |b, dims| {
            b.iter(|| GrMiner::with_dims(&graph, static_cfg.clone(), dims.clone()).mine())
        });
        group.bench_with_input(BenchmarkId::new("bl2", 2 * l), &dims, |b, dims| {
            b.iter(|| mine_baseline_with_dims(&graph, &cfg, dims, BaselineKind::Bl2))
        });
        group.bench_with_input(BenchmarkId::new("bl1", 2 * l), &dims, |b, dims| {
            b.iter(|| mine_baseline_with_dims(&graph, &cfg, dims, BaselineKind::Bl1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
