//! Thread scaling of the work-stealing parallel engine on the
//! Region-skewed Pokec workload — the scenario the engine exists for:
//!
//! * `steal/T` — the full engine (deques, steal-half, dynamic subtree
//!   splitting, shared top-k bound) at T threads;
//! * `static_queue/T` — stealing and subtree splitting off, static
//!   threshold: the PR 3 engine, whose speedup flattens at the dominant
//!   subtree;
//! * `seq` — the sequential GRMiner(k) reference.
//!
//! All cells produce bit-identical results; only the wall clock moves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grm_bench::{fixture, Dataset};
use grm_core::parallel::{mine_parallel_with_opts, ParallelOptions};
use grm_core::{Dims, GrMiner, MinerConfig};

fn bench(c: &mut Criterion) {
    let graph = fixture(Dataset::Pokec, 0.05);
    let dims = Dims::all(graph.schema());
    let base = MinerConfig::nhp(30, 0.5, 100);

    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);

    group.bench_function("seq", |b| {
        b.iter(|| GrMiner::new(&graph, base.clone()).mine())
    });

    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("steal", threads), &threads, |b, &t| {
            b.iter(|| {
                mine_parallel_with_opts(
                    &graph,
                    &base,
                    &dims,
                    ParallelOptions {
                        threads: t,
                        ..ParallelOptions::default()
                    },
                )
            })
        });
        group.bench_with_input(
            BenchmarkId::new("static_queue", threads),
            &threads,
            |b, &t| {
                let cfg = base.clone().without_dynamic_topk();
                b.iter(|| {
                    mine_parallel_with_opts(
                        &graph,
                        &cfg,
                        &dims,
                        ParallelOptions {
                            threads: t,
                            steal: false,
                            split_depth: 0,
                            ..ParallelOptions::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
