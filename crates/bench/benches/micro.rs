//! Micro-benchmarks for the substrate primitives: counting-sort
//! partitioning (§V), compact-model and single-table construction (§IV-A),
//! single-GR query evaluation (Remark 3) and dataset generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grm_bench::{fixture, Dataset};
use grm_core::beta::heff_table;
use grm_core::{query, GrBuilder};
use grm_datagen::{generate, pokec_config_scaled};
use grm_graph::kernel;
use grm_graph::sort::{partition_in_place, PartitionArena};
use grm_graph::{AttrValue, CompactModel, NodeAttrId, SingleTable};

/// The pre-PR partition primitive, reimplemented for the before/after
/// comparison: per call it allocates the offsets, cursor and scatter
/// vectors plus the returned partition `Vec` (what `partition_in_place`
/// did before the arena).
fn legacy_partition(
    data: &mut [u32],
    bucket_count: usize,
    counts: &mut Vec<u32>,
    keybuf: &mut Vec<u32>,
    col: &[AttrValue],
) -> Vec<(AttrValue, std::ops::Range<usize>)> {
    counts.clear();
    counts.resize(bucket_count, 0);
    keybuf.clear();
    keybuf.reserve(data.len());
    for &id in data.iter() {
        let k = col[id as usize];
        counts[k as usize] += 1;
        keybuf.push(k as u32);
    }
    let mut offsets = Vec::with_capacity(bucket_count);
    let mut acc = 0u32;
    for &c in counts.iter() {
        offsets.push(acc);
        acc += c;
    }
    let mut cursor = offsets.clone();
    let mut out = vec![0u32; data.len()];
    for (i, &id) in data.iter().enumerate() {
        let k = keybuf[i] as usize;
        out[cursor[k] as usize] = id;
        cursor[k] += 1;
    }
    data.copy_from_slice(&out);
    let mut parts = Vec::new();
    for (v, &c) in counts.iter().enumerate() {
        if c > 0 {
            let start = offsets[v] as usize;
            parts.push((v as AttrValue, start..start + c as usize));
        }
    }
    parts
}

/// The tentpole's before/after cells: the allocating pre-PR primitive vs
/// the arena pass (on the 188-value Pokec `Region` domain), and a
/// two-level (parent + children) partition with and without the fused
/// counting, on the narrow-parent shape the miner's cost model fuses
/// (small parent domain, so children are large and the key-cache write
/// streams are few — wide parents stay unfused, see
/// `grm_core::miner::FUSE_COST_RATIO`).
fn bench_partition_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    for n in [10_000usize, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        let col: Vec<AttrValue> = (0..n).map(|i| (i % 188 + 1) as u16).collect();
        let narrow: Vec<AttrValue> = (0..n).map(|i| (i % 5 + 1) as u16).collect();
        let next: Vec<AttrValue> = (0..n).map(|i| (i * 7 % 5) as u16).collect();
        let base: Vec<u32> = (0..n as u32).map(|i| (i * 31) % n as u32).collect();

        group.bench_with_input(BenchmarkId::new("alloc_per_call", n), &n, |b, _| {
            let mut counts = Vec::new();
            let mut keybuf = Vec::new();
            let mut data = base.clone();
            b.iter(|| {
                data.copy_from_slice(&base);
                legacy_partition(&mut data, 189, &mut counts, &mut keybuf, &col)
            });
        });
        group.bench_with_input(BenchmarkId::new("arena", n), &n, |b, _| {
            let mut arena = PartitionArena::new();
            let mut data = base.clone();
            b.iter(|| {
                data.copy_from_slice(&base);
                let frame = arena.partition_col(&mut data, 189, &col).unwrap();
                let parts = frame.len();
                arena.pop_frame(frame);
                parts
            });
        });
        // Two-level cells: partition by a narrow parent dimension, then
        // every child partition by the next dimension — the RIGHT-chain
        // shape the miner fuses.
        group.bench_with_input(BenchmarkId::new("two_level_unfused", n), &n, |b, _| {
            let mut arena = PartitionArena::new();
            let mut data = base.clone();
            b.iter(|| {
                data.copy_from_slice(&base);
                let frame = arena.partition_col(&mut data, 6, &narrow).unwrap();
                let mut total = 0usize;
                for idx in frame.indices() {
                    let part = arena.record(idx);
                    let sub = &mut data[part.range()];
                    let child = arena.partition_col(sub, 5, &next).unwrap();
                    total += child.len();
                    arena.pop_frame(child);
                }
                arena.pop_frame(frame);
                total
            });
        });
        group.bench_with_input(BenchmarkId::new("two_level_fused", n), &n, |b, _| {
            let mut arena = PartitionArena::new();
            let mut data = base.clone();
            b.iter(|| {
                data.copy_from_slice(&base);
                let (frame, level) = arena
                    .partition_col_fused(&mut data, 6, &narrow, &next, 5)
                    .unwrap();
                let mut total = 0usize;
                for idx in frame.indices() {
                    let part = arena.record(idx);
                    let hist = arena.child_hist(level, part);
                    let sub = &mut data[part.range()];
                    let child = arena.partition_pre_counted(sub, 5, hist);
                    total += child.len();
                    arena.pop_frame(child);
                }
                arena.pop_frame(frame);
                arena.pop_fused(level);
                total
            });
        });
    }
    group.finish();
}

/// The vectorized counting-kernel cells: the scalar counting loop vs
/// the SWAR primitives ([`kernel::histogram_u32`] striped counting,
/// [`kernel::gather_keys`] batched gather + hoisted range check), plus
/// the full arena counting pass with the kernels on and off — the
/// micro-level before/after of the `scalar_kernel_off` ablation.
fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    for n in [10_000usize, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        // Histogram: the 189-value Pokec Region domain and a narrow
        // RHS-chain domain.
        for buckets in [8usize, 189] {
            let keys: Vec<AttrValue> = (0..n).map(|i| ((i * 7) % buckets) as u16).collect();
            group.bench_with_input(
                BenchmarkId::new(format!("hist_scalar_b{buckets}"), n),
                &n,
                |b, _| {
                    let mut counts = vec![0u32; buckets];
                    b.iter(|| {
                        counts.iter_mut().for_each(|c| *c = 0);
                        for &k in &keys {
                            counts[k as usize] += 1;
                        }
                        counts[buckets / 2]
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("hist_swar_b{buckets}"), n),
                &n,
                |b, _| {
                    let mut counts = vec![0u32; buckets];
                    let mut stripes = vec![0u32; kernel::STRIPES * buckets];
                    b.iter(|| {
                        counts.iter_mut().for_each(|c| *c = 0);
                        kernel::histogram_u32(&keys, &mut counts, &mut stripes);
                        counts[buckets / 2]
                    });
                },
            );
        }
        // Gather + range check (the counting pass front-end).
        let col: Vec<AttrValue> = (0..n).map(|i| (i % 188 + 1) as u16).collect();
        let data: Vec<u32> = (0..n as u32).map(|i| (i * 31) % n as u32).collect();
        group.bench_with_input(BenchmarkId::new("gather_scalar", n), &n, |b, _| {
            let mut keys = vec![0u16; n];
            b.iter(|| {
                let mut max = 0u16;
                for (k, &id) in keys.iter_mut().zip(&data) {
                    let v = col[id as usize];
                    max = max.max(v);
                    *k = v;
                }
                max
            });
        });
        group.bench_with_input(BenchmarkId::new("gather_kernel", n), &n, |b, _| {
            let mut keys = vec![0u16; n];
            b.iter(|| kernel::gather_keys(&data, &col, &mut keys).0);
        });
        // The full arena counting pass, kernel on vs off.
        for (bench, on) in [("count_pass_scalar", false), ("count_pass_kernel", true)] {
            group.bench_with_input(BenchmarkId::new(bench, n), &n, |b, _| {
                let mut arena = PartitionArena::new();
                arena.set_kernel_enabled(on);
                let mut d = data.clone();
                b.iter(|| {
                    d.copy_from_slice(&data);
                    let frame = arena.partition_col(&mut d, 189, &col).unwrap();
                    let parts = frame.len();
                    arena.pop_frame(frame);
                    parts
                });
            });
        }
    }
    group.finish();
}

fn bench_counting_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting_sort");
    for n in [1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        // Partition by a 188-value key (the Pokec Region domain).
        group.bench_with_input(BenchmarkId::new("region_domain", n), &n, |b, &n| {
            let base: Vec<u32> = (0..n as u32).collect();
            let mut scratch = PartitionArena::new();
            b.iter(|| {
                let mut data = base.clone();
                partition_in_place(&mut data, 189, &mut scratch, |i| (i % 188 + 1) as u16).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_model_builds(c: &mut Criterion) {
    let graph = fixture(Dataset::Pokec, 0.05);
    let mut group = c.benchmark_group("model_build");
    group.sample_size(20);
    group.throughput(Throughput::Elements(graph.edge_count() as u64));
    group.bench_function("compact_model", |b| b.iter(|| CompactModel::build(&graph)));
    group.bench_function("single_table", |b| b.iter(|| SingleTable::build(&graph)));
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let graph = fixture(Dataset::Pokec, 0.05);
    let gr = GrBuilder::new(graph.schema())
        .l("Education", "Basic")
        .r("Education", "Secondary")
        .build()
        .unwrap();
    let mut group = c.benchmark_group("query");
    group.throughput(Throughput::Elements(graph.edge_count() as u64));
    group.bench_function("evaluate_single_gr", |b| {
        b.iter(|| query::evaluate(&graph, &gr))
    });
    group.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.sample_size(10);
    let cfg = pokec_config_scaled(0.02);
    group.throughput(Throughput::Elements(cfg.edges as u64));
    group.bench_function("pokec_scale_0_02", |b| b.iter(|| generate(&cfg).unwrap()));
    group.finish();
}

fn bench_heff_keys(c: &mut Criterion) {
    // The r_key indirection (EArray Ptr -> RArray row -> attribute cell)
    // is the hottest lookup of the RIGHT recursion.
    let graph = fixture(Dataset::Pokec, 0.05);
    let model = CompactModel::build(&graph);
    let positions = model.all_positions();
    let mut group = c.benchmark_group("key_lookup");
    group.throughput(Throughput::Elements(positions.len() as u64));
    group.bench_function("r_key_scan", |b| {
        b.iter(|| {
            positions
                .iter()
                .map(|&p| model.r_key(p, NodeAttrId(2)) as u64)
                .sum::<u64>()
        })
    });
    group.bench_function("l_key_scan", |b| {
        b.iter(|| {
            positions
                .iter()
                .map(|&p| model.l_key(p, NodeAttrId(2)) as u64)
                .sum::<u64>()
        })
    });
    group.finish();
}

fn bench_heff_supports(c: &mut Criterion) {
    // The homophily-effect supports of one l∧w node: the seed re-filtered
    // the whole snapshot once per distinct β; the shared-context miner
    // fills every β support with one counting-partition group-by pass
    // (`grm_core::beta::heff_table`). Both variants compute the supports
    // of all non-empty β over the full edge set.
    let graph = fixture(Dataset::Pokec, 0.05);
    let model = CompactModel::build(&graph);
    let schema = graph.schema();
    let pairs: Vec<(NodeAttrId, AttrValue)> = schema
        .node_attr_ids()
        .filter(|&a| schema.node_attr(a).is_homophily())
        .map(|a| (a, 1))
        .collect();
    assert!(pairs.len() >= 2, "Pokec has multiple homophily attributes");
    let snapshot = model.all_positions();
    let betas = (1u32 << pairs.len()) - 1;
    let mut group = c.benchmark_group("heff");
    group.throughput(Throughput::Elements(snapshot.len() as u64 * betas as u64));
    group.bench_function("per_beta_rescan", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for mask in 1..=betas {
                let needed: Vec<(NodeAttrId, AttrValue)> = pairs
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &p)| p)
                    .collect();
                total += snapshot
                    .iter()
                    .filter(|&&p| needed.iter().all(|&(a, v)| model.r_key(p, a) == v))
                    .count() as u64;
            }
            total
        })
    });
    group.bench_function("group_by_table", |b| {
        let mut scratch = PartitionArena::new();
        let mut snap = snapshot.clone();
        b.iter(|| {
            snap.copy_from_slice(&snapshot);
            let table = heff_table(&mut snap, &pairs, &mut scratch, |a| model.r_col(a));
            table[1..].iter().sum::<u64>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_partition_engine,
    bench_kernel,
    bench_counting_sort,
    bench_model_builds,
    bench_query,
    bench_generator,
    bench_heff_keys,
    bench_heff_supports
);
criterion_main!(benches);
