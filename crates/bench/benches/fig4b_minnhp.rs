//! Criterion bench for **Fig. 4b**: runtime vs `minNhp`.
//!
//! Expected shape: BL1/BL2 flat (support-only pruning); GRMiner falls as
//! minNhp grows; GRMiner(k) is at least as fast and pulls ahead at small
//! minNhp thanks to the dynamically upgraded bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grm_bench::{fixture, Dataset};
use grm_core::baseline::{mine_baseline_with_dims, BaselineKind};
use grm_core::{Dims, GrMiner, MinerConfig};
use grm_graph::NodeAttrId;

fn bench(c: &mut Criterion) {
    let graph = fixture(Dataset::Pokec, 0.05);
    let dims = Dims::subset(
        graph.schema(),
        &[NodeAttrId(1), NodeAttrId(2), NodeAttrId(3), NodeAttrId(4)],
        &[],
    );
    let mut group = c.benchmark_group("fig4b_minnhp");
    group.sample_size(10);

    for pct in [0u32, 25, 50, 75, 100] {
        let cfg = MinerConfig::nhp(30, pct as f64 / 100.0, 100);
        group.bench_with_input(BenchmarkId::new("grminer_k", pct), &cfg, |b, cfg| {
            b.iter(|| GrMiner::with_dims(&graph, cfg.clone(), dims.clone()).mine())
        });
        let static_cfg = cfg.clone().without_dynamic_topk();
        group.bench_with_input(BenchmarkId::new("grminer", pct), &static_cfg, |b, cfg| {
            b.iter(|| GrMiner::with_dims(&graph, cfg.clone(), dims.clone()).mine())
        });
        group.bench_with_input(BenchmarkId::new("bl2", pct), &cfg, |b, cfg| {
            b.iter(|| mine_baseline_with_dims(&graph, cfg, &dims, BaselineKind::Bl2))
        });
        group.bench_with_input(BenchmarkId::new("bl1", pct), &cfg, |b, cfg| {
            b.iter(|| mine_baseline_with_dims(&graph, cfg, &dims, BaselineKind::Bl1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
