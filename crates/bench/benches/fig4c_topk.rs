//! Criterion bench for **Fig. 4c**: GRMiner(k) runtime over the k × minNhp
//! grid.
//!
//! Expected shape: pruning is effective as long as *one* of the two
//! constraints is tight — a small k (the dynamic bound rises fast) or a
//! large minNhp.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grm_bench::{fixture, Dataset};
use grm_core::{Dims, GrMiner, MinerConfig};
use grm_graph::NodeAttrId;

fn bench(c: &mut Criterion) {
    let graph = fixture(Dataset::Pokec, 0.05);
    let dims = Dims::subset(
        graph.schema(),
        &[NodeAttrId(1), NodeAttrId(2), NodeAttrId(3), NodeAttrId(4)],
        &[],
    );
    let mut group = c.benchmark_group("fig4c_topk");
    group.sample_size(10);

    for k in [1usize, 100, 10_000] {
        for pct in [0u32, 50, 100] {
            let cfg = MinerConfig::nhp(30, pct as f64 / 100.0, k);
            group.bench_with_input(BenchmarkId::new(format!("k{k}"), pct), &cfg, |b, cfg| {
                b.iter(|| GrMiner::with_dims(&graph, cfg.clone(), dims.clone()).mine())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
