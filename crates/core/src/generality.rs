//! The generality constraint of Def. 5(2).
//!
//! A GR `g₂` is redundant when a more general `g₁` (same RHS, `l₁ ⊆ l₂`,
//! `w₁ ⊆ w₂`) already satisfies the thresholds: "g₁ is a similar tendency
//! to g₂ but covers more nodes on LHS … g₁ would make g₂ redundant."
//!
//! The SFDF order enumerates attribute subsets before supersets, so every
//! potential suppressor is seen before the GRs it suppresses (§V: "once a
//! GR passes this checking, no later GR can be more general than it").
//! The index therefore only needs to record accepted GRs and answer
//! "is there a recorded GR more general than this candidate?".

use crate::descriptor::{EdgeDescriptor, NodeDescriptor};
use crate::gr::Gr;
use std::collections::HashMap;

/// Index of threshold-satisfying GRs keyed by RHS, supporting the
/// more-general test. Generality is transitive, so recording only GRs that
/// themselves passed the generality check is sufficient.
#[derive(Debug, Default, Clone)]
pub struct GeneralityIndex {
    by_rhs: HashMap<NodeDescriptor, Vec<(NodeDescriptor, EdgeDescriptor)>>,
    len: usize,
}

impl GeneralityIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded GRs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Does a strictly-or-equally more general recorded GR exist for
    /// `candidate`? (Equality cannot occur during mining — each GR is
    /// enumerated once — but the test is inclusive for safety.)
    pub fn has_more_general(&self, candidate: &Gr) -> bool {
        match self.by_rhs.get(&candidate.r) {
            None => false,
            Some(list) => list
                .iter()
                .any(|(l, w)| l.is_subset_of(&candidate.l) && w.is_subset_of(&candidate.w)),
        }
    }

    /// Record an accepted GR as a potential suppressor of later, more
    /// special GRs.
    pub fn record(&mut self, gr: &Gr) {
        self.by_rhs
            .entry(gr.r.clone())
            .or_default()
            .push((gr.l.clone(), gr.w.clone()));
        self.len += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_graph::{EdgeAttrId, NodeAttrId};

    fn nd(pairs: &[(u8, u16)]) -> NodeDescriptor {
        NodeDescriptor::from_pairs(pairs.iter().map(|&(a, v)| (NodeAttrId(a), v)))
    }

    fn ed(pairs: &[(u8, u16)]) -> EdgeDescriptor {
        EdgeDescriptor::from_pairs(pairs.iter().map(|&(a, v)| (EdgeAttrId(a), v)))
    }

    #[test]
    fn suppresses_more_special_lhs() {
        let mut idx = GeneralityIndex::new();
        let general = Gr::new(nd(&[(0, 1)]), EdgeDescriptor::empty(), nd(&[(1, 2)]));
        idx.record(&general);

        let special = Gr::new(
            nd(&[(0, 1), (2, 3)]),
            EdgeDescriptor::empty(),
            nd(&[(1, 2)]),
        );
        assert!(idx.has_more_general(&special));

        // Different RHS: not suppressed.
        let other_rhs = Gr::new(
            nd(&[(0, 1), (2, 3)]),
            EdgeDescriptor::empty(),
            nd(&[(1, 3)]),
        );
        assert!(!idx.has_more_general(&other_rhs));
    }

    #[test]
    fn edge_descriptor_must_also_be_superset() {
        let mut idx = GeneralityIndex::new();
        let general = Gr::new(nd(&[(0, 1)]), ed(&[(0, 2)]), nd(&[(1, 2)]));
        idx.record(&general);

        // Candidate with empty w is *more* general on w: not suppressed.
        let cand = Gr::new(
            nd(&[(0, 1), (2, 2)]),
            EdgeDescriptor::empty(),
            nd(&[(1, 2)]),
        );
        assert!(!idx.has_more_general(&cand));

        // Candidate with the same w and bigger l: suppressed.
        let cand = Gr::new(nd(&[(0, 1), (2, 2)]), ed(&[(0, 2)]), nd(&[(1, 2)]));
        assert!(idx.has_more_general(&cand));
    }

    #[test]
    fn empty_lhs_suppresses_everything_with_same_rhs() {
        let mut idx = GeneralityIndex::new();
        idx.record(&Gr::new(
            NodeDescriptor::empty(),
            EdgeDescriptor::empty(),
            nd(&[(1, 1)]),
        ));
        let cand = Gr::new(nd(&[(0, 2)]), ed(&[(0, 1)]), nd(&[(1, 1)]));
        assert!(idx.has_more_general(&cand));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn same_attr_different_value_is_not_general() {
        let mut idx = GeneralityIndex::new();
        idx.record(&Gr::new(
            nd(&[(0, 1)]),
            EdgeDescriptor::empty(),
            nd(&[(1, 1)]),
        ));
        let cand = Gr::new(nd(&[(0, 2)]), EdgeDescriptor::empty(), nd(&[(1, 1)]));
        assert!(!idx.has_more_general(&cand));
    }
}
