//! The shared, read-only mining context.
//!
//! One [`MiningContext`] is built per mine call — sequential or parallel —
//! and sits between the [`CompactModel`] and the per-task
//! [`crate::miner`] recursion state. Everything in it is immutable (or
//! internally synchronized) and safe to share by reference across worker
//! threads, so the per-task costs the §IV-A model was designed to avoid
//! are paid once per run instead of once per task:
//!
//! * the **canonical position set** `0..|E|`: the sequential miner and
//!   every parallel worker fill one reusable buffer
//!   ([`MiningContext::fill_positions`]) instead of allocating a fresh
//!   `Vec` per root task;
//! * the **RHS marginal table** for lift / Piatetsky-Shapiro / conviction
//!   (§VII) is precomputed per `(attribute, value)` in one columnar pass,
//!   and multi-attribute marginals are memoized in a shared map, so a
//!   distinct descriptor is scanned at most once per *run* rather than
//!   once per parallel task.
//!
//! Sharing the marginal memo across workers cannot change results:
//! `supp(r)` is a pure function of the graph, so whichever worker computes
//! it first stores the same value every other worker would have.

use crate::descriptor::NodeDescriptor;
use grm_graph::{CompactModel, SocialGraph};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Immutable per-run state shared by every mining task (module docs).
#[derive(Debug)]
pub struct MiningContext<'g> {
    model: CompactModel<'g>,
    edges_total: u64,
    /// Per node attribute: `supp(A:v)` over all edges, indexed by value
    /// (including the never-queried null slot). Built iff the run's
    /// metric needs RHS marginals.
    r_base: Option<Vec<Vec<u64>>>,
    /// Shared memo for multi-attribute RHS marginals, keyed by
    /// descriptor. Lock-protected but cold: only lift / PS / conviction
    /// runs with multi-attribute RHS descriptors ever take it.
    r_memo: Mutex<HashMap<NodeDescriptor, u64>>,
}

impl<'g> MiningContext<'g> {
    /// Build the context for `graph`. `needs_r_marginal` opts into the
    /// eager RHS marginal table ([`crate::metrics::RankMetric`] knows —
    /// pass `metric.needs_r_marginal()`).
    pub fn build(graph: &'g SocialGraph, needs_r_marginal: bool) -> Self {
        Self::new(CompactModel::build(graph), needs_r_marginal)
    }

    /// Wrap an already-built model.
    pub fn new(model: CompactModel<'g>, needs_r_marginal: bool) -> Self {
        let edges_total = model.edge_count() as u64;
        Self::with_edges_total(model, needs_r_marginal, edges_total)
    }

    /// Wrap a model whose graph is one *shard or slice* of a larger edge
    /// set: support denominators (`supp_rel`, the empty-RHS marginal)
    /// use `edges_total` — the global edge count — while position
    /// buffers and marginal scans stay sized to the resident model.
    pub fn with_edges_total(
        model: CompactModel<'g>,
        needs_r_marginal: bool,
        edges_total: u64,
    ) -> Self {
        let r_base = needs_r_marginal.then(|| {
            let schema = model.graph().schema();
            schema
                .node_attr_ids()
                .map(|a| {
                    let mut counts = vec![0u64; schema.node_attr(a).bucket_count()];
                    for &v in model.r_col(a) {
                        counts[v as usize] += 1;
                    }
                    counts
                })
                .collect()
        });
        MiningContext {
            model,
            edges_total,
            r_base,
            r_memo: Mutex::new(HashMap::new()),
        }
    }

    /// The compact model the context wraps.
    pub fn model(&self) -> &CompactModel<'g> {
        &self.model
    }

    /// `|E|` as a support denominator.
    pub fn edges_total(&self) -> u64 {
        self.edges_total
    }

    /// Fill `buf` with the canonical position set `0..|E|`, reusing its
    /// capacity. This is the per-task replacement for
    /// `CompactModel::all_positions`: a worker fills its buffer once and
    /// keeps reusing it, because the recursion only permutes positions —
    /// it never consumes them.
    pub fn fill_positions(&self, buf: &mut Vec<u32>) {
        buf.clear();
        buf.extend(0..self.model.edge_count() as u32);
    }

    /// RHS marginal `supp(r)` over all edges (lift / PS / conviction —
    /// §VII). Single-attribute descriptors hit the precomputed table;
    /// wider ones are scanned columnar at most once per run via the
    /// shared memo.
    pub fn r_marginal(&self, r: &NodeDescriptor) -> u64 {
        match (r.pairs(), &self.r_base) {
            ([], _) => self.edges_total,
            (&[(a, v)], Some(base)) => base[a.index()][v as usize],
            (pairs, _) => {
                if let Some(&count) = self.r_memo.lock().get(r) {
                    return count;
                }
                // Scan outside the lock so concurrent workers computing
                // *different* descriptors do not serialize; a duplicated
                // scan of the same descriptor is benign (supp(r) is a
                // pure function, both workers insert the same value).
                let cols: Vec<&[u16]> = pairs.iter().map(|&(a, _)| self.model.r_col(a)).collect();
                let count = (0..self.model.edge_count())
                    .filter(|&p| cols.iter().zip(pairs).all(|(col, &(_, v))| col[p] == v))
                    .count() as u64;
                self.r_memo.lock().insert(r.clone(), count);
                count
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_graph::{GraphBuilder, NodeAttrId, SchemaBuilder};

    fn sample() -> SocialGraph {
        let schema = SchemaBuilder::new()
            .node_attr("A", 3, true)
            .node_attr("B", 2, false)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let rows = [[1, 1], [2, 2], [3, 1], [1, 2]];
        let ids: Vec<_> = rows.iter().map(|r| b.add_node(r).unwrap()).collect();
        for (s, t) in [(0, 1), (0, 2), (1, 2), (3, 0), (2, 0)] {
            b.add_edge(ids[s], ids[t], &[]).unwrap();
        }
        b.build().unwrap()
    }

    fn brute_marginal(g: &SocialGraph, r: &NodeDescriptor) -> u64 {
        g.edge_ids()
            .filter(|&e| r.pairs().iter().all(|&(a, v)| g.dst_attr(e, a) == v))
            .count() as u64
    }

    #[test]
    fn positions_and_fill() {
        let g = sample();
        let ctx = MiningContext::build(&g, false);
        assert_eq!(ctx.edges_total(), 5);
        let mut buf = vec![9, 9];
        ctx.fill_positions(&mut buf);
        assert_eq!(buf, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn r_marginals_match_brute_force() {
        let g = sample();
        for needs in [false, true] {
            let ctx = MiningContext::build(&g, needs);
            assert_eq!(ctx.r_base.is_some(), needs);
            for (a, domain) in [(0u8, 3u16), (1, 2)] {
                for v in 1..=domain {
                    let r = NodeDescriptor::from_pairs([(NodeAttrId(a), v)]);
                    assert_eq!(
                        ctx.r_marginal(&r),
                        brute_marginal(&g, &r),
                        "needs={needs} {r:?}"
                    );
                }
            }
            let wide = NodeDescriptor::from_pairs([(NodeAttrId(0), 1), (NodeAttrId(1), 2)]);
            assert_eq!(ctx.r_marginal(&wide), brute_marginal(&g, &wide));
            // Memoized second call agrees.
            assert_eq!(ctx.r_marginal(&wide), brute_marginal(&g, &wide));
            assert_eq!(ctx.r_marginal(&NodeDescriptor::empty()), 5);
        }
    }
}
