//! Fault-contained GR-mining service: the engine behind `grmined`.
//!
//! A [`Service`] wraps one loaded [`SocialGraph`] and answers
//! line-delimited JSON requests — ad-hoc GR queries ([`crate::query`]),
//! top-k mines ([`crate::GrMiner`] / [`crate::parallel`]), schema and
//! stats introspection — while keeping the overload and failure behavior
//! *typed*:
//!
//! * **Admission control.** At most `max_concurrent` mines run at once;
//!   up to `queue_depth` more wait. Beyond that a request is shed with an
//!   `Overloaded` error carrying `retry_after_ms` — never queued
//!   unboundedly, never silently dropped. The slot-accounting protocol is
//!   model-checked in `grm_analyze::model::admission` (leak / double-free
//!   / ghost-shed variants are refuted there).
//! * **Per-request deadlines and disconnect cancellation.** Every request
//!   gets a [`CancelToken::child`] of its connection token, which is
//!   itself a child of the service shutdown token; a dropped connection
//!   or an expired `timeout_ms` cancels the mine mid-flight and the
//!   engine drains partial [`MinerStats`] into the typed `Cancelled`
//!   error.
//! * **Single-flight result cache.** Identical mining configs coalesce on
//!   one leader; followers block on the published result and are counted
//!   in `cache_coalesced`. The publication protocol is model-checked in
//!   `grm_analyze::model::singleflight` (double-mine / lost-wakeup /
//!   serve-unpublished variants are refuted there).
//! * **Panic containment.** A panicking handler (or an armed
//!   `request.handle` failpoint) produces a typed `WorkerPanicked`
//!   response; RAII guards release the admission slot and abandon the
//!   in-flight cache entry during unwinding, so the daemon keeps serving.
//!
//! Locking uses `std::sync::{Mutex, Condvar}` (the vendored
//! `parking_lot` stub has no condvar) with poison-robust acquisition:
//! a panic while holding a lock must not wedge every later request.

use crate::config::MinerConfig;
use crate::error::{panic_message, MinerError};
use crate::metrics::RankMetric;
use crate::miner::{GrMiner, MineResult};
use crate::parallel::{try_mine_parallel_with_opts, ParallelOptions};
use crate::parse::parse_gr;
use crate::query;
use crate::stats::MinerStats;
use crate::tail::Dims;
use grm_graph::{failpoint, CancelToken, SocialGraph};
use serde::{to_content, Content};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How long a wait loop sleeps between re-checks of its predicate and
/// its cancellation context. Bounds how stale a disconnect observation
/// can get while parked on a condvar.
const WAIT_TICK: Duration = Duration::from_millis(25);

/// Tuning knobs of a [`Service`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Mines allowed to run concurrently (clamped to ≥ 1).
    pub max_concurrent: usize,
    /// Requests allowed to wait for a slot before new arrivals are shed.
    pub queue_depth: usize,
    /// The backoff hint attached to `Overloaded` errors.
    pub retry_after_ms: u64,
    /// Deadline applied to mines whose request carries no `timeout_ms`
    /// (`None` = unbounded).
    pub default_deadline_ms: Option<u64>,
    /// Published mine results kept for reuse (0 disables the cache and
    /// with it single-flight coalescing).
    pub cache_capacity: usize,
    /// Upper bound on the per-request `threads` parameter. 1 pins every
    /// mine to the sequential engine.
    pub threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_concurrent: 4,
            queue_depth: 16,
            retry_after_ms: 250,
            default_deadline_ms: Some(30_000),
            cache_capacity: 64,
            threads: 1,
        }
    }
}

/// Lock a mutex, recovering the data from a poisoned lock. Handlers are
/// panic-contained; a poisoned admission or cache lock must degrade to
/// "the panicking request's guards already restored the invariants",
/// not "every future request panics on `unwrap`".
//
// The daemon's intended global acquisition order, checked by
// grm-analyze's `lock-order-cycle` rule against the observed graph:
// lock-order: Admission.state < ResultCache.state < Service.agg
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

// ---------------------------------------------------------------------------
// Cancellation context
// ---------------------------------------------------------------------------

/// What a waiting request checks to decide "stop waiting": its cancel
/// token (connection drop, daemon shutdown) and the service-level mirror
/// of its deadline. The engine enforces the deadline itself via
/// [`MinerConfig::deadline_ms`]; this mirror only keeps *queued* requests
/// from outliving it.
struct RequestCtx {
    token: CancelToken,
    deadline: Option<Instant>,
}

impl RequestCtx {
    fn is_cancelled(&self) -> bool {
        self.token.is_cancelled() || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// Semaphore-style admission: `available` slots, `waiting` queued
/// requests, one condvar. The protocol (take in one critical section,
/// shed only under pressure, release exactly once via RAII) is the one
/// proved in `grm_analyze::model::admission`.
struct Admission {
    capacity: usize,
    queue_depth: usize,
    state: Mutex<AdmissionState>,
    // condvar: Admission.freed pairs Admission.state
    freed: Condvar,
}

struct AdmissionState {
    available: usize,
    waiting: usize,
}

enum AdmitOutcome<'a> {
    Admitted(SlotGuard<'a>),
    Shed,
    Cancelled,
}

/// RAII slot release: exactly one `available += 1` per admitted request,
/// on *every* exit path including panic unwinding (the model's
/// `LeakOnPanic` variant is the bug this shape rules out).
struct SlotGuard<'a> {
    adm: &'a Admission,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        let mut st = lock(&self.adm.state);
        st.available += 1;
        debug_assert!(st.available <= self.adm.capacity, "slot minted");
        self.adm.freed.notify_all();
    }
}

impl Admission {
    fn new(capacity: usize, queue_depth: usize) -> Self {
        Admission {
            capacity,
            queue_depth,
            state: Mutex::new(AdmissionState {
                available: capacity,
                waiting: 0,
            }),
            freed: Condvar::new(),
        }
    }

    /// One critical section decides the arrival's fate: take a slot,
    /// join the bounded queue, or shed. Queued waiters re-check their
    /// cancellation context every [`WAIT_TICK`] so a disconnect releases
    /// the queue position promptly.
    fn admit(&self, ctx: &RequestCtx) -> AdmitOutcome<'_> {
        let mut st = lock(&self.state);
        if st.available > 0 {
            st.available -= 1;
            return AdmitOutcome::Admitted(SlotGuard { adm: self });
        }
        if st.waiting >= self.queue_depth {
            return AdmitOutcome::Shed;
        }
        st.waiting += 1;
        loop {
            if ctx.is_cancelled() {
                st.waiting -= 1;
                return AdmitOutcome::Cancelled;
            }
            if st.available > 0 {
                st.available -= 1;
                st.waiting -= 1;
                return AdmitOutcome::Admitted(SlotGuard { adm: self });
            }
            let (guard, _) = self
                .freed
                .wait_timeout(st, WAIT_TICK)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
    }

    fn available(&self) -> usize {
        lock(&self.state).available
    }
}

// ---------------------------------------------------------------------------
// Single-flight result cache
// ---------------------------------------------------------------------------

/// A cached mine, keyed by the full normalized mining config (plus the
/// engine class — sequential dynamic and parallel dynamic are pinned to
/// different Definition-5 semantics, so they must not share entries).
enum CacheSlot {
    /// A leader is mining this key; followers wait on `published`.
    InFlight,
    /// Published result, shared by reference.
    Ready(Arc<MineResult>),
}

struct CacheState {
    entries: HashMap<String, CacheSlot>,
    /// Publication order of `Ready` keys, oldest first (FIFO eviction).
    /// `InFlight` keys are never listed here, so eviction can never
    /// drop an entry a leader still owns.
    order: Vec<String>,
}

struct ResultCache {
    capacity: usize,
    state: Mutex<CacheState>,
    // condvar: ResultCache.published pairs ResultCache.state
    published: Condvar,
}

enum CacheOutcome<'a> {
    /// A published result for this key.
    Hit(Arc<MineResult>),
    /// This request leads the mine for its key.
    Lead(LeadGuard<'a>),
    /// The request's context cancelled while waiting on a leader.
    Cancelled,
    /// Caching is disabled (`cache_capacity = 0`); mine uncached.
    Disabled,
}

/// The leader's obligation: either [`LeadGuard::publish`] a result or —
/// on any other exit, including unwinding — remove the `InFlight` entry
/// and wake the followers so one of them re-leads. Abandon-without-wake
/// is the lost-wakeup deadlock refuted as `FailLeavesInFlight` in
/// `grm_analyze::model::singleflight`.
struct LeadGuard<'a> {
    cache: &'a ResultCache,
    key: String,
    published: bool,
}

impl LeadGuard<'_> {
    fn publish(mut self, value: Arc<MineResult>) {
        let mut st = lock(&self.cache.state);
        st.entries.insert(self.key.clone(), CacheSlot::Ready(value));
        st.order.push(self.key.clone());
        if st.order.len() > self.cache.capacity {
            let evicted = st.order.remove(0);
            st.entries.remove(&evicted);
        }
        self.published = true;
        self.cache.published.notify_all();
    }
}

impl Drop for LeadGuard<'_> {
    fn drop(&mut self) {
        if self.published {
            return;
        }
        let mut st = lock(&self.cache.state);
        st.entries.remove(&self.key);
        self.cache.published.notify_all();
    }
}

impl ResultCache {
    fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                order: Vec::new(),
            }),
            published: Condvar::new(),
        }
    }

    /// Probe the cache; the boolean reports whether this request waited
    /// on an in-flight leader (it coalesced rather than hit cold).
    /// Followers always re-check the slot after waking — the condvar
    /// wait is time-bounded and the slot may have been abandoned, in
    /// which case the woken follower installs itself as the new leader
    /// (the `ServeWithoutRecheck` variant is the bug this loop avoids).
    fn acquire(&self, key: &str, ctx: &RequestCtx) -> (CacheOutcome<'_>, bool) {
        if self.capacity == 0 {
            return (CacheOutcome::Disabled, false);
        }
        let mut waited = false;
        let mut st = lock(&self.state);
        loop {
            match st.entries.get(key) {
                Some(CacheSlot::Ready(v)) => return (CacheOutcome::Hit(Arc::clone(v)), waited),
                Some(CacheSlot::InFlight) => {
                    if ctx.is_cancelled() {
                        return (CacheOutcome::Cancelled, waited);
                    }
                    waited = true;
                    let (guard, _) = self
                        .published
                        .wait_timeout(st, WAIT_TICK)
                        .unwrap_or_else(|p| p.into_inner());
                    st = guard;
                }
                None => {
                    st.entries.insert(key.to_string(), CacheSlot::InFlight);
                    return (
                        CacheOutcome::Lead(LeadGuard {
                            cache: self,
                            key: key.to_string(),
                            published: false,
                        }),
                        waited,
                    );
                }
            }
        }
    }

    fn len(&self) -> usize {
        lock(&self.state).entries.len()
    }
}

// ---------------------------------------------------------------------------
// Request / response envelope
// ---------------------------------------------------------------------------

/// A typed request failure, rendered as the `error` object of a
/// response line.
struct ErrorBody {
    code: &'static str,
    message: String,
    extra: Vec<(String, Content)>,
}

impl ErrorBody {
    fn new(code: &'static str, message: impl Into<String>) -> Self {
        ErrorBody {
            code,
            message: message.into(),
            extra: Vec::new(),
        }
    }

    fn bad_request(message: impl Into<String>) -> Self {
        Self::new("BadRequest", message)
    }

    fn with(mut self, key: &str, value: Content) -> Self {
        self.extra.push((key.to_string(), value));
        self
    }
}

type Handled = Result<Content, ErrorBody>;

fn render(id: Content, ty: &str, outcome: Handled) -> String {
    let content = match outcome {
        Ok(result) => Content::Map(vec![
            ("id".to_string(), id),
            ("ok".to_string(), Content::Bool(true)),
            ("type".to_string(), Content::Str(ty.to_string())),
            ("result".to_string(), result),
        ]),
        Err(e) => {
            let mut err = vec![
                ("code".to_string(), Content::Str(e.code.to_string())),
                ("message".to_string(), Content::Str(e.message)),
            ];
            err.extend(e.extra);
            Content::Map(vec![
                ("id".to_string(), id),
                ("ok".to_string(), Content::Bool(false)),
                ("type".to_string(), Content::Str(ty.to_string())),
                ("error".to_string(), Content::Map(err)),
            ])
        }
    };
    serde_json::to_string(&content).expect("content serialization is infallible")
}

/// Typed field extraction from a decoded request map. Every helper
/// rejects a wrong-typed value with `BadRequest` instead of guessing.
mod field {
    use super::{Content, ErrorBody};

    fn take(map: &mut Vec<(String, Content)>, key: &str) -> Option<Content> {
        serde::take_field(map, key)
    }

    pub fn u64(map: &mut Vec<(String, Content)>, key: &str) -> Result<Option<u64>, ErrorBody> {
        match take(map, key) {
            None => Ok(None),
            Some(Content::U64(v)) => Ok(Some(v)),
            Some(Content::I64(v)) if v >= 0 => Ok(Some(v as u64)),
            Some(other) => Err(ErrorBody::bad_request(format!(
                "`{key}` must be a non-negative integer, got {other:?}"
            ))),
        }
    }

    pub fn usize(map: &mut Vec<(String, Content)>, key: &str) -> Result<Option<usize>, ErrorBody> {
        Ok(u64(map, key)?.map(|v| v as usize))
    }

    pub fn f64(map: &mut Vec<(String, Content)>, key: &str) -> Result<Option<f64>, ErrorBody> {
        match take(map, key) {
            None => Ok(None),
            Some(Content::F64(v)) => Ok(Some(v)),
            Some(Content::U64(v)) => Ok(Some(v as f64)),
            Some(Content::I64(v)) => Ok(Some(v as f64)),
            Some(other) => Err(ErrorBody::bad_request(format!(
                "`{key}` must be a number, got {other:?}"
            ))),
        }
    }

    pub fn bool(map: &mut Vec<(String, Content)>, key: &str) -> Result<Option<bool>, ErrorBody> {
        match take(map, key) {
            None => Ok(None),
            Some(Content::Bool(v)) => Ok(Some(v)),
            Some(other) => Err(ErrorBody::bad_request(format!(
                "`{key}` must be a boolean, got {other:?}"
            ))),
        }
    }

    pub fn str(map: &mut Vec<(String, Content)>, key: &str) -> Result<Option<String>, ErrorBody> {
        match take(map, key) {
            None => Ok(None),
            Some(Content::Str(v)) => Ok(Some(v)),
            Some(other) => Err(ErrorBody::bad_request(format!(
                "`{key}` must be a string, got {other:?}"
            ))),
        }
    }

    /// Reject leftover keys: a typo'd parameter must fail loudly, not
    /// silently fall back to a default.
    pub fn reject_unknown(map: &[(String, Content)]) -> Result<(), ErrorBody> {
        if let Some((k, _)) = map.first() {
            return Err(ErrorBody::bad_request(format!("unknown parameter `{k}`")));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// One loaded graph plus the shared state that serves it: admission
/// slots, the single-flight result cache, aggregated counters, and the
/// shutdown token every connection token descends from.
pub struct Service {
    graph: SocialGraph,
    cfg: ServiceConfig,
    admission: Admission,
    cache: ResultCache,
    agg: Mutex<MinerStats>,
    shutdown: CancelToken,
}

impl Service {
    /// Wrap `graph` with the given tuning. `max_concurrent` is clamped
    /// to ≥ 1 (a service that can never admit anything is a misconfig,
    /// not a mode).
    pub fn new(graph: SocialGraph, cfg: ServiceConfig) -> Self {
        let capacity = cfg.max_concurrent.max(1);
        Service {
            admission: Admission::new(capacity, cfg.queue_depth),
            cache: ResultCache::new(cfg.cache_capacity),
            agg: Mutex::new(MinerStats::default()),
            shutdown: CancelToken::new(),
            graph,
            cfg,
        }
    }

    /// The root token of the service's cancellation tree. Connection
    /// tokens are children of it; request tokens are grandchildren.
    pub fn shutdown_token(&self) -> &CancelToken {
        &self.shutdown
    }

    /// Begin graceful shutdown: new requests get `ShuttingDown`,
    /// in-flight mines observe cancellation through their token chain,
    /// and [`serve`] stops accepting and drains.
    pub fn shut_down(&self) {
        self.shutdown.cancel();
    }

    /// Admission slots currently free (capacity when idle).
    pub fn slots_available(&self) -> usize {
        self.admission.available()
    }

    /// The admission capacity after clamping.
    pub fn capacity(&self) -> usize {
        self.admission.capacity
    }

    /// Snapshot of the aggregated counters: every completed mine's
    /// [`MinerStats`] merged together, plus the service counters
    /// (`requests_served`, `requests_shed`, `cache_hits`,
    /// `cache_coalesced`).
    pub fn aggregate_stats(&self) -> MinerStats {
        lock(&self.agg).clone()
    }

    /// Handle one request line and produce one response line (without a
    /// trailing newline). Panics in handlers are contained here and
    /// surface as a typed `WorkerPanicked` response — the caller's loop
    /// keeps serving.
    pub fn handle_line(&self, line: &str, conn: &CancelToken) -> String {
        let content: Content = match serde_json::from_str(line) {
            Ok(c) => c,
            Err(e) => {
                return render(
                    Content::Null,
                    "error",
                    Err(ErrorBody::bad_request(format!("invalid JSON: {e}"))),
                )
            }
        };
        let mut map = match content {
            Content::Map(m) => m,
            other => {
                return render(
                    Content::Null,
                    "error",
                    Err(ErrorBody::bad_request(format!(
                        "request must be a JSON object, got {other:?}"
                    ))),
                )
            }
        };
        let id = serde::take_field(&mut map, "id").unwrap_or(Content::Null);
        let ty = match field::str(&mut map, "type") {
            Ok(Some(t)) => t,
            Ok(None) => return render(id, "error", Err(ErrorBody::bad_request("missing `type`"))),
            Err(e) => return render(id, "error", Err(e)),
        };
        if self.shutdown.is_cancelled() {
            return render(
                id,
                &ty,
                Err(ErrorBody::new("ShuttingDown", "service is shutting down")),
            );
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| self.dispatch(&ty, map, conn)));
        let outcome = outcome.unwrap_or_else(|payload| {
            Err(ErrorBody::new("WorkerPanicked", "request handler panicked")
                .with("message", Content::Str(panic_message(payload))))
        });
        render(id, &ty, outcome)
    }

    fn dispatch(&self, ty: &str, mut map: Vec<(String, Content)>, conn: &CancelToken) -> Handled {
        match failpoint::hit("request.handle") {
            Some(failpoint::FaultKind::Panic) => panic!("injected fault at request.handle"),
            Some(failpoint::FaultKind::IoError) | Some(failpoint::FaultKind::ShortRead) => {
                return Err(ErrorBody::new(
                    "Internal",
                    "injected fault at request.handle",
                ))
            }
            Some(failpoint::FaultKind::ShrinkBudget(_)) | None => {}
        }
        match ty {
            "query" => self.handle_query(&mut map),
            "mine" => self.handle_mine(&mut map, conn),
            "schema" => self.handle_schema(&map),
            "stats" => self.handle_stats(&map),
            "shutdown" => {
                field::reject_unknown(&map)?;
                self.shut_down();
                Ok(Content::Map(vec![(
                    "stopping".to_string(),
                    Content::Bool(true),
                )]))
            }
            "failpoint" => self.handle_failpoint(&mut map),
            other => Err(ErrorBody::bad_request(format!(
                "unknown request type `{other}`"
            ))),
        }
    }

    // -- query --------------------------------------------------------------

    fn handle_query(&self, map: &mut Vec<(String, Content)>) -> Handled {
        let gr_text = field::str(map, "gr")?
            .ok_or_else(|| ErrorBody::bad_request("query needs a `gr` string"))?;
        field::reject_unknown(map)?;
        let gr = parse_gr(self.graph.schema(), &gr_text)
            .map_err(|e| ErrorBody::bad_request(format!("bad GR: {e}")))?;
        let measures = query::evaluate(&self.graph, &gr);
        Ok(Content::Map(vec![
            (
                "gr".to_string(),
                Content::Str(gr.display(self.graph.schema())),
            ),
            ("measures".to_string(), to_content(&measures)),
        ]))
    }

    // -- mine ---------------------------------------------------------------

    fn handle_mine(&self, map: &mut Vec<(String, Content)>, conn: &CancelToken) -> Handled {
        // Defaults mirror the `grmine mine` CLI so the two front-ends
        // answer identically for identical inputs.
        let edge_count = self.graph.edge_count() as u64;
        let metric_name = field::str(map, "metric")?.unwrap_or_else(|| "nhp".to_string());
        let Some(metric) = RankMetric::from_name(&metric_name) else {
            return Err(ErrorBody::new(
                "UnsupportedMetric",
                format!("unknown metric `{metric_name}`"),
            ));
        };
        let min_supp = field::u64(map, "min_supp")?.unwrap_or_else(|| (edge_count / 1000).max(1));
        let min_score = field::f64(map, "min_score")?.unwrap_or(if metric.anti_monotone() {
            0.5
        } else {
            f64::NEG_INFINITY
        });
        let k = field::usize(map, "k")?.unwrap_or(20);
        let dynamic = field::bool(map, "dynamic")?.unwrap_or(true);
        let timeout_ms = field::u64(map, "timeout_ms")?;
        let threads = field::usize(map, "threads")?
            .unwrap_or(1)
            .clamp(1, self.cfg.threads.max(1));
        let max_lhs = field::usize(map, "max_lhs")?;
        let max_rhs = field::usize(map, "max_rhs")?;
        let allow_empty_lhs = field::bool(map, "allow_empty_lhs")?.unwrap_or(false);
        field::reject_unknown(map)?;
        if k == 0 {
            return Err(ErrorBody::bad_request("k must be >= 1"));
        }
        if min_supp == 0 {
            return Err(ErrorBody::bad_request("min_supp must be >= 1"));
        }

        let deadline_ms = timeout_ms.or(self.cfg.default_deadline_ms);
        let token = conn.child();
        let mut cfg = MinerConfig {
            min_supp,
            min_score,
            k,
            dynamic_topk: dynamic,
            max_lhs,
            max_rhs,
            allow_empty_lhs,
            deadline_ms,
            ..MinerConfig::default()
        }
        .with_metric(metric);
        cfg.cancel = token.clone();

        // Cache key: engine class + the full normalized config. The
        // deadline and token are runtime state, not semantics — two
        // requests differing only there must coalesce.
        let mut norm = cfg.clone();
        norm.deadline_ms = None;
        norm.cancel = CancelToken::default();
        let engine = if threads > 1 { "par" } else { "seq" };
        let key = format!(
            "{engine}|{}",
            serde_json::to_string(&norm).expect("config serialization is infallible")
        );

        let ctx = RequestCtx {
            token,
            deadline: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
        };

        let (outcome, waited) = self.cache.acquire(&key, &ctx);
        match outcome {
            CacheOutcome::Hit(result) => {
                {
                    let mut agg = lock(&self.agg);
                    agg.requests_served += 1;
                    if waited {
                        agg.cache_coalesced += 1;
                    } else {
                        agg.cache_hits += 1;
                    }
                }
                Ok(mine_result_content(&result, true, waited))
            }
            CacheOutcome::Cancelled => Err(cancelled_error(None)),
            CacheOutcome::Disabled => self.admit_and_mine(&ctx, cfg, threads, None),
            CacheOutcome::Lead(guard) => self.admit_and_mine(&ctx, cfg, threads, Some(guard)),
        }
    }

    /// Take an admission slot, run the engine, publish on success. The
    /// `LeadGuard` (when caching) abandons its entry on every error
    /// path simply by being dropped.
    fn admit_and_mine(
        &self,
        ctx: &RequestCtx,
        cfg: MinerConfig,
        threads: usize,
        lead: Option<LeadGuard<'_>>,
    ) -> Handled {
        let slot = match self.admission.admit(ctx) {
            AdmitOutcome::Admitted(slot) => slot,
            AdmitOutcome::Shed => {
                lock(&self.agg).requests_shed += 1;
                return Err(ErrorBody::new(
                    "Overloaded",
                    format!(
                        "no admission slot free and {} requests already queued",
                        self.admission.queue_depth
                    ),
                )
                .with("retry_after_ms", Content::U64(self.cfg.retry_after_ms)));
            }
            AdmitOutcome::Cancelled => return Err(cancelled_error(None)),
        };
        let outcome = if threads > 1 {
            try_mine_parallel_with_opts(
                &self.graph,
                &cfg,
                &Dims::all(self.graph.schema()),
                ParallelOptions {
                    threads,
                    ..ParallelOptions::default()
                },
            )
        } else {
            GrMiner::new(&self.graph, cfg).try_mine()
        };
        drop(slot);
        match outcome {
            Ok(result) => {
                let result = Arc::new(result);
                if let Some(guard) = lead {
                    guard.publish(Arc::clone(&result));
                }
                let mut agg = lock(&self.agg);
                agg.merge(&result.stats);
                agg.requests_served += 1;
                drop(agg);
                Ok(mine_result_content(&result, false, false))
            }
            Err(e) => {
                if let Some(partial) = e.partial_stats() {
                    lock(&self.agg).merge(partial);
                }
                Err(miner_error_body(e))
            }
        }
    }

    // -- introspection ------------------------------------------------------

    fn handle_schema(&self, map: &[(String, Content)]) -> Handled {
        field::reject_unknown(map)?;
        let schema = self.graph.schema();
        let node_attrs: Vec<Content> = schema
            .node_attr_ids()
            .map(|a| {
                let def = schema.node_attr(a);
                Content::Map(vec![
                    ("name".to_string(), Content::Str(def.name().to_string())),
                    (
                        "domain_size".to_string(),
                        Content::U64(u64::from(def.domain_size())),
                    ),
                    ("homophily".to_string(), Content::Bool(def.is_homophily())),
                ])
            })
            .collect();
        let edge_attrs: Vec<Content> = schema
            .edge_attr_ids()
            .map(|a| {
                let def = schema.edge_attr(a);
                Content::Map(vec![
                    ("name".to_string(), Content::Str(def.name().to_string())),
                    (
                        "domain_size".to_string(),
                        Content::U64(u64::from(def.domain_size())),
                    ),
                ])
            })
            .collect();
        Ok(Content::Map(vec![
            (
                "nodes".to_string(),
                Content::U64(self.graph.node_count() as u64),
            ),
            (
                "edges".to_string(),
                Content::U64(self.graph.edge_count() as u64),
            ),
            ("node_attrs".to_string(), Content::Seq(node_attrs)),
            ("edge_attrs".to_string(), Content::Seq(edge_attrs)),
        ]))
    }

    fn handle_stats(&self, map: &[(String, Content)]) -> Handled {
        field::reject_unknown(map)?;
        Ok(Content::Map(vec![
            ("counters".to_string(), to_content(&self.aggregate_stats())),
            (
                "max_concurrent".to_string(),
                Content::U64(self.admission.capacity as u64),
            ),
            (
                "queue_depth".to_string(),
                Content::U64(self.admission.queue_depth as u64),
            ),
            (
                "slots_available".to_string(),
                Content::U64(self.slots_available() as u64),
            ),
            (
                "cache_entries".to_string(),
                Content::U64(self.cache.len() as u64),
            ),
        ]))
    }

    // -- fault injection ----------------------------------------------------

    fn handle_failpoint(&self, map: &mut Vec<(String, Content)>) -> Handled {
        if !cfg!(feature = "fault-inject") {
            return Err(ErrorBody::bad_request(
                "fault injection is not compiled in (build with --features fault-inject)",
            ));
        }
        let action = field::str(map, "action")?
            .ok_or_else(|| ErrorBody::bad_request("failpoint needs an `action`"))?;
        match action.as_str() {
            "disarm" => {
                field::reject_unknown(map)?;
                failpoint::disarm_all();
                Ok(Content::Map(vec![
                    ("disarmed".to_string(), Content::Bool(true)),
                    (
                        "fired_total".to_string(),
                        Content::U64(failpoint::fired_total()),
                    ),
                ]))
            }
            "arm" => {
                let site_name = field::str(map, "site")?
                    .ok_or_else(|| ErrorBody::bad_request("arm needs a `site`"))?;
                let after = field::u64(map, "after")?.unwrap_or(0);
                let times = field::u64(map, "times")?.unwrap_or(1);
                let kind_name = field::str(map, "kind")?
                    .ok_or_else(|| ErrorBody::bad_request("arm needs a `kind`"))?;
                let bytes = field::u64(map, "bytes")?;
                field::reject_unknown(map)?;
                // The registry takes `&'static str`; resolve through the
                // published site table rather than leaking request strings.
                let Some(site) = failpoint::SITES.iter().copied().find(|s| *s == site_name) else {
                    return Err(ErrorBody::bad_request(format!(
                        "unknown failpoint site `{site_name}` (known: {})",
                        failpoint::SITES.join(", ")
                    )));
                };
                let kind = match kind_name.as_str() {
                    "io-error" => failpoint::FaultKind::IoError,
                    "short-read" => failpoint::FaultKind::ShortRead,
                    "panic" => failpoint::FaultKind::Panic,
                    "shrink-budget" => failpoint::FaultKind::ShrinkBudget(
                        bytes
                            .ok_or_else(|| ErrorBody::bad_request("shrink-budget needs `bytes`"))?,
                    ),
                    other => {
                        return Err(ErrorBody::bad_request(format!(
                            "unknown fault kind `{other}`"
                        )))
                    }
                };
                failpoint::arm(site, after, times, kind);
                Ok(Content::Map(vec![
                    ("armed".to_string(), Content::Bool(true)),
                    ("site".to_string(), Content::Str(site.to_string())),
                ]))
            }
            other => Err(ErrorBody::bad_request(format!(
                "unknown failpoint action `{other}`"
            ))),
        }
    }
}

fn cancelled_error(partial: Option<&MinerStats>) -> ErrorBody {
    let mut e = ErrorBody::new("Cancelled", "request cancelled before completion");
    if let Some(stats) = partial {
        e = e.with("partial_stats", to_content(stats));
    }
    e
}

fn miner_error_body(e: MinerError) -> ErrorBody {
    match e {
        MinerError::Cancelled { partial_stats } => cancelled_error(Some(&partial_stats)),
        MinerError::WorkerPanicked {
            message,
            partial_stats,
        } => ErrorBody::new("WorkerPanicked", "a mining worker panicked")
            .with("message", Content::Str(message))
            .with("partial_stats", to_content(&*partial_stats)),
        MinerError::UnsupportedMetric(m) => {
            ErrorBody::new("UnsupportedMetric", format!("metric {m} unsupported here"))
        }
        MinerError::Graph(g) => ErrorBody::new("Internal", g.to_string()),
    }
}

/// Render a mine result with the pinned `--json` GR schema
/// ([`crate::ScoredGr`]'s serialization) and the pinned `--stats-json`
/// counter schema ([`MinerStats`]'s serialization).
fn mine_result_content(result: &MineResult, cached: bool, coalesced: bool) -> Content {
    Content::Map(vec![
        ("top".to_string(), to_content(&result.top)),
        ("stats".to_string(), to_content(&result.stats)),
        ("edge_count".to_string(), Content::U64(result.edge_count)),
        ("cached".to_string(), Content::Bool(cached)),
        ("coalesced".to_string(), Content::Bool(coalesced)),
    ])
}

// ---------------------------------------------------------------------------
// Connection plumbing
// ---------------------------------------------------------------------------

/// Serve one TCP connection until it disconnects or the service shuts
/// down. A dedicated reader thread detects disconnect *while a request
/// is being handled* and cancels the connection token, which cancels
/// every in-flight request token derived from it.
pub fn serve_connection(service: &Service, stream: TcpStream) {
    let conn = service.shutdown_token().child();
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let _ = reader_stream.set_read_timeout(Some(Duration::from_millis(50)));
    let (tx, rx) = mpsc::channel::<String>();
    let reader_conn = conn.clone();
    let reader = std::thread::spawn(move || read_lines(reader_stream, &tx, &reader_conn));
    let mut out = stream;
    loop {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(line) => {
                let response = service.handle_line(&line, &conn);
                let write = out
                    .write_all(response.as_bytes())
                    .and_then(|()| out.write_all(b"\n"));
                if write.is_err() {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if conn.is_cancelled() {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    conn.cancel();
    let _ = reader.join();
}

/// Feed complete lines from the socket into the channel; on EOF or a
/// hard read error, cancel the connection token so in-flight requests
/// stop mining for a peer that is gone.
fn read_lines(mut stream: TcpStream, tx: &mpsc::Sender<String>, conn: &CancelToken) {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if conn.is_cancelled() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                conn.cancel();
                return;
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line[..pos]).into_owned();
                    if !line.trim().is_empty() && tx.send(line).is_err() {
                        return;
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => {
                conn.cancel();
                return;
            }
        }
    }
}

/// Accept connections until the service shuts down, then drain every
/// connection thread and return. The accept loop polls so it can
/// observe shutdown without a wakeup socket.
pub fn serve(listener: TcpListener, service: &Arc<Service>) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !service.shutdown_token().is_cancelled() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let svc = Arc::clone(service);
                handles.push(std::thread::spawn(move || serve_connection(&svc, stream)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(WAIT_TICK);
            }
            Err(_) => std::thread::sleep(WAIT_TICK),
        }
        handles.retain(|h| !h.is_finished());
    }
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_service(cfg: ServiceConfig) -> Service {
        let schema = grm_graph::SchemaBuilder::new()
            .node_attr_named("SEX", false, ["F", "M"])
            .node_attr_named("EDU", true, ["HS", "College", "Grad"])
            .build()
            .unwrap();
        let mut b = grm_graph::GraphBuilder::new(schema);
        let f_grad = b.add_node(&[1, 3]).unwrap();
        let m_grad = b.add_node(&[2, 3]).unwrap();
        let m_coll = b.add_node(&[2, 2]).unwrap();
        b.add_edge(f_grad, m_grad, &[]).unwrap();
        b.add_edge(f_grad, m_coll, &[]).unwrap();
        Service::new(b.build().unwrap(), cfg)
    }

    #[test]
    fn admission_sheds_beyond_queue_and_releases_on_drop() {
        let adm = Admission::new(1, 1);
        let ctx = RequestCtx {
            token: CancelToken::default(),
            deadline: None,
        };
        let slot = match adm.admit(&ctx) {
            AdmitOutcome::Admitted(s) => s,
            _ => panic!("first arrival takes the slot"),
        };
        assert_eq!(adm.available(), 0);
        // Queue is empty; an already-expired deadline cancels out of it.
        let expired = RequestCtx {
            token: CancelToken::default(),
            deadline: Some(Instant::now()),
        };
        assert!(matches!(adm.admit(&expired), AdmitOutcome::Cancelled));
        drop(slot);
        assert_eq!(adm.available(), 1, "RAII release restores the slot");
    }

    #[test]
    fn cache_leads_then_hits_and_abandon_wakes() {
        let cache = ResultCache::new(4);
        let ctx = RequestCtx {
            token: CancelToken::default(),
            deadline: None,
        };
        let (outcome, waited) = cache.acquire("k", &ctx);
        assert!(!waited);
        let guard = match outcome {
            CacheOutcome::Lead(g) => g,
            _ => panic!("cold cache leads"),
        };
        // Abandon: the entry disappears, the next probe leads again.
        drop(guard);
        let (outcome, _) = cache.acquire("k", &ctx);
        let guard = match outcome {
            CacheOutcome::Lead(g) => g,
            _ => panic!("abandoned entry re-leads"),
        };
        let result = Arc::new(MineResult {
            top: Vec::new(),
            stats: MinerStats::default(),
            edge_count: 7,
        });
        guard.publish(Arc::clone(&result));
        let (outcome, _) = cache.acquire("k", &ctx);
        match outcome {
            CacheOutcome::Hit(hit) => assert_eq!(hit.edge_count, 7),
            _ => panic!("published entry hits"),
        }
    }

    #[test]
    fn cache_eviction_is_fifo_and_skips_inflight() {
        let cache = ResultCache::new(1);
        let ctx = RequestCtx {
            token: CancelToken::default(),
            deadline: None,
        };
        let publish = |key: &str| {
            let (outcome, _) = cache.acquire(key, &ctx);
            match outcome {
                CacheOutcome::Lead(g) => g.publish(Arc::new(MineResult {
                    top: Vec::new(),
                    stats: MinerStats::default(),
                    edge_count: 0,
                })),
                _ => panic!("expected lead for {key}"),
            }
        };
        publish("a");
        publish("b");
        assert_eq!(cache.len(), 1, "capacity 1 evicted the older entry");
        let (outcome, _) = cache.acquire("b", &ctx);
        match outcome {
            CacheOutcome::Hit(_) => {}
            _ => panic!("newest entry survives"),
        }
    }

    #[test]
    fn handle_line_rejects_garbage_with_typed_errors() {
        let svc = toy_service(ServiceConfig::default());
        let conn = CancelToken::default();
        for (line, expect) in [
            ("not json", "BadRequest"),
            ("[1,2]", "BadRequest"),
            ("{\"id\":1}", "BadRequest"),
            ("{\"id\":1,\"type\":\"nope\"}", "BadRequest"),
            ("{\"id\":1,\"type\":\"mine\",\"k\":0}", "BadRequest"),
            ("{\"id\":1,\"type\":\"mine\",\"bogus\":1}", "BadRequest"),
            (
                "{\"id\":1,\"type\":\"mine\",\"metric\":\"zzz\"}",
                "UnsupportedMetric",
            ),
        ] {
            let resp = svc.handle_line(line, &conn);
            assert!(resp.contains("\"ok\":false"), "{line} -> {resp}");
            assert!(resp.contains(expect), "{line} -> {resp}");
        }
    }

    #[test]
    fn shutdown_gates_new_requests() {
        let svc = toy_service(ServiceConfig::default());
        let conn = CancelToken::default();
        svc.shut_down();
        let resp = svc.handle_line("{\"id\":9,\"type\":\"schema\"}", &conn);
        assert!(resp.contains("ShuttingDown"), "{resp}");
        assert!(resp.contains("\"id\":9"), "{resp}");
    }
}
