//! Typed failure modes of the mining engines.
//!
//! Every fallible entry point (`GrMiner::try_mine`,
//! `parallel::try_mine_parallel_with_opts`, `sharded::mine_sharded`)
//! returns [`MinerError`]. Cancellation and worker panics are *not*
//! silent: both variants carry the partial [`MinerStats`] drained from
//! every worker that exited cleanly, so an operator can see how far the
//! mine got before it stopped.

use crate::metrics::RankMetric;
use crate::stats::MinerStats;
use grm_graph::GraphError;

/// Why a mine did not produce a result.
#[derive(Debug)]
pub enum MinerError {
    /// The run's [`CancelToken`](grm_graph::CancelToken) was tripped —
    /// by a caller, or by an expired
    /// [`deadline_ms`](crate::MinerConfig::deadline_ms). Workers
    /// drained their counters before exiting; the merge is in
    /// `partial_stats`.
    Cancelled {
        /// Counters merged from every worker that observed the flag and
        /// exited cleanly (the drain-exactly-once protocol proved in
        /// `grm_analyze::model::cancel`).
        partial_stats: Box<MinerStats>,
    },
    /// A worker panicked. The panic was contained (`catch_unwind`), the
    /// siblings were cancelled through the shared token, and their
    /// drained counters were merged — the process never aborts and no
    /// result is silently incomplete.
    WorkerPanicked {
        /// The panic payload, stringified (`&str` / `String` payloads
        /// verbatim, anything else a placeholder).
        message: String,
        /// Counters drained from the surviving workers.
        partial_stats: Box<MinerStats>,
    },
    /// The configured metric needs global RHS marginals, which the
    /// out-of-core engine does not maintain — use nhp, conf, laplace or
    /// gain, or mine in-core.
    UnsupportedMetric(RankMetric),
    /// Storage-layer failure (I/O, capacity, memory budget, spill
    /// corruption).
    Graph(GraphError),
}

impl MinerError {
    /// The partial counters a cancelled or panicked mine drained, when
    /// this error carries them.
    pub fn partial_stats(&self) -> Option<&MinerStats> {
        match self {
            MinerError::Cancelled { partial_stats }
            | MinerError::WorkerPanicked { partial_stats, .. } => Some(partial_stats),
            _ => None,
        }
    }
}

impl std::fmt::Display for MinerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinerError::Cancelled { partial_stats } => write!(
                f,
                "mine cancelled after {:?} ({} GRs examined, {} cancel checks)",
                partial_stats.elapsed, partial_stats.grs_examined, partial_stats.cancel_checks
            ),
            MinerError::WorkerPanicked {
                message,
                partial_stats,
            } => write!(
                f,
                "mining worker panicked: {message} (siblings drained after {:?})",
                partial_stats.elapsed
            ),
            MinerError::UnsupportedMetric(m) => write!(
                f,
                "metric {m:?} needs global RHS marginals, which sharded \
                 out-of-core mining does not maintain; use nhp, conf, \
                 laplace or gain, or mine in-core"
            ),
            MinerError::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MinerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MinerError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for MinerError {
    fn from(e: GraphError) -> Self {
        MinerError::Graph(e)
    }
}

/// Stringify a `catch_unwind` payload: `&str` / `String` panics (the
/// overwhelmingly common kinds) verbatim, anything else a placeholder.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_operator_facing_context() {
        let stats = MinerStats {
            grs_examined: 7,
            cancel_checks: 41,
            ..MinerStats::default()
        };
        let e = MinerError::Cancelled {
            partial_stats: Box::new(stats),
        };
        let s = e.to_string();
        assert!(s.contains("cancelled"), "{s}");
        assert!(s.contains("7 GRs examined"), "{s}");
        assert!(s.contains("41 cancel checks"), "{s}");
        assert!(e.partial_stats().is_some());

        let e = MinerError::WorkerPanicked {
            message: "boom".into(),
            partial_stats: Box::new(MinerStats::default()),
        };
        assert!(e.to_string().contains("boom"));
        assert!(e.partial_stats().is_some());

        let e = MinerError::UnsupportedMetric(RankMetric::Lift);
        assert!(e.to_string().contains("global RHS marginals"));
        assert!(e.partial_stats().is_none());
    }

    #[test]
    fn panic_payloads_stringify() {
        let p: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(p), "static str");
        let p: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(p), "owned");
        let p: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert_eq!(panic_message(p), "non-string panic payload");
    }
}
