//! # grm-core — mining social ties beyond homophily
//!
//! Rust implementation of **GRMiner** (Liang, Wang, Zhu: "Mining Social
//! Ties Beyond Homophily", ICDE 2016): mining the top-k group relationships
//! `l -w-> r` of an attributed social network, ranked by **non-homophily
//! preference** — the conditional probability of a tie once the homophily
//! effect is excluded (Def. 4).
//!
//! ## Quick start
//!
//! ```
//! use grm_graph::{SchemaBuilder, GraphBuilder};
//! use grm_core::{GrMiner, MinerConfig};
//!
//! // A dating network: EDU is a homophily attribute, SEX is not.
//! let schema = SchemaBuilder::new()
//!     .node_attr_named("SEX", false, ["F", "M"])
//!     .node_attr_named("EDU", true, ["HS", "College", "Grad"])
//!     .build().unwrap();
//! let mut b = GraphBuilder::new(schema);
//! let f_grad = b.add_node(&[1, 3]).unwrap();
//! let m_grad = b.add_node(&[2, 3]).unwrap();
//! let m_coll = b.add_node(&[2, 2]).unwrap();
//! b.add_edge(f_grad, m_grad, &[]).unwrap();
//! b.add_edge(f_grad, m_coll, &[]).unwrap();
//! let graph = b.build().unwrap();
//!
//! let result = GrMiner::new(&graph, MinerConfig::nhp(1, 0.5, 10)).mine();
//! for gr in &result.top {
//!     println!("{}", gr.display(graph.schema()));
//! }
//! ```
//!
//! ## Module map
//!
//! | paper concept | module |
//! |---|---|
//! | descriptors & GRs (Def. 1) | [`descriptor`], [`gr`] |
//! | supp / conf / nhp (Defs. 2–4) and §VII alternatives | [`metrics`] |
//! | β and the homophily effect (Eqns. 4–5) | [`beta`] |
//! | shared read-only run context | [`context`] |
//! | SFDF & dynamic tail ordering (§IV-C) | [`tail`], [`enumerate`] |
//! | GRMiner, Algorithm 1 (§V) | [`miner`] |
//! | top-k & generality (Def. 5) | [`topk`], [`generality`] |
//! | baselines BL1 / BL2 (§VI-D) | [`baseline`] |
//! | brute-force oracle | [`reference`](mod@reference) |
//! | ad-hoc GR queries (Remark 3) | [`query`] |
//! | GR text parsing | [`parse`] |
//! | influence matrices (§II, class propagation) | [`influence`] |
//! | parallel extension | [`parallel`] |
//! | sharded out-of-core extension | [`sharded`] |

#![warn(missing_docs)]

pub mod baseline;
pub mod beta;
pub mod config;
pub mod context;
pub mod descriptor;
pub mod enumerate;
pub mod error;
pub mod generality;
pub mod gr;
pub mod influence;
pub mod metrics;
pub mod miner;
pub mod parallel;
pub mod parse;
pub mod query;
pub mod reference;
pub mod service;
pub mod sharded;
pub mod stats;
pub mod tail;
pub mod topk;

pub use config::MinerConfig;
pub use context::MiningContext;
pub use descriptor::{EdgeDescriptor, NodeDescriptor};
pub use error::MinerError;
pub use gr::{Gr, GrBuilder, ScoredGr};
pub use metrics::{MetricInputs, RankMetric};
pub use miner::{GrMiner, MineResult};
pub use parse::parse_gr;
pub use service::{Service, ServiceConfig};
pub use sharded::{mine_sharded, ShardedError, ShardedOptions};
pub use stats::MinerStats;
pub use tail::Dims;
pub use topk::TopK;
