//! GR-derived influence matrices.
//!
//! §II of the paper positions GRs as input to class-propagation methods:
//! "\[18\] focuses on class propagation in a social network using a given
//! influence matrix. Our GRs can serve as the assumed influence matrix. In
//! fact, GRs capture a more general type of influences between
//! sub-populations." This module materializes that use: for a chosen node
//! attribute `A` it measures, for every ordered value pair `(i, j)`, the
//! strength of the tie `(A:i) -> (A:j)` and assembles a row-stochastic
//! **influence matrix** suitable for propagation methods such as
//! linearized belief propagation.
//!
//! Two flavours:
//! * [`InfluenceKind::Confidence`] — raw `P(A_dst = j | A_src = i)`, which
//!   is dominated by the homophily diagonal;
//! * [`InfluenceKind::Nhp`] — the paper's beyond-homophily reading: for a
//!   homophily attribute, off-diagonal mass is measured *conditioned on
//!   leaving the diagonal* (Def. 4 with β = {A}), exposing the secondary
//!   bonds that the diagonal otherwise drowns.

use crate::descriptor::{EdgeDescriptor, NodeDescriptor};
use grm_graph::{AttrValue, NodeAttrId, SocialGraph};
use serde::{Deserialize, Serialize};

/// Which measure fills the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InfluenceKind {
    /// `M[i][j] = conf((A:i) -> (A:j))`.
    Confidence,
    /// `M[i][j] = nhp((A:i) -> (A:j))` — off-diagonal entries conditioned
    /// on non-homophilous ties; the diagonal keeps its confidence.
    Nhp,
}

/// A value-by-value influence matrix over one node attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfluenceMatrix {
    /// The attribute the matrix is over.
    pub attr: NodeAttrId,
    /// The measure used.
    pub kind: InfluenceKind,
    /// `rows[i-1][j-1]` = influence of value `i` on value `j`
    /// (1-based attribute values; null is excluded).
    pub rows: Vec<Vec<f64>>,
    /// `supports[i-1]` = number of edges whose source carries value `i`.
    pub supports: Vec<u64>,
}

impl InfluenceMatrix {
    /// Entry for value pair `(i, j)` (1-based, as attribute values).
    pub fn get(&self, i: AttrValue, j: AttrValue) -> f64 {
        self.rows[i as usize - 1][j as usize - 1]
    }

    /// Row-normalize into a stochastic matrix (rows with zero mass stay
    /// zero), the form propagation methods consume.
    pub fn row_stochastic(&self) -> Vec<Vec<f64>> {
        self.rows
            .iter()
            .map(|row| {
                let total: f64 = row.iter().sum();
                if total <= 0.0 {
                    row.clone()
                } else {
                    row.iter().map(|v| v / total).collect()
                }
            })
            .collect()
    }

    /// Render as an aligned table with value names from `schema`.
    pub fn display(&self, schema: &grm_graph::Schema) -> String {
        let def = schema.node_attr(self.attr);
        let names: Vec<String> = (1..=def.domain_size()).map(|v| def.value_name(v)).collect();
        let width = names.iter().map(String::len).max().unwrap_or(4).max(6);
        let mut out = format!("{:>width$} |", "");
        for n in &names {
            out.push_str(&format!(" {n:>width$}"));
        }
        out.push('\n');
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!("{:>width$} |", names[i]));
            for v in row {
                out.push_str(&format!(" {v:>width$.3}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Measure the influence matrix of `attr` over all edges in one pass.
pub fn influence_matrix(
    graph: &SocialGraph,
    attr: NodeAttrId,
    kind: InfluenceKind,
) -> InfluenceMatrix {
    let domain = graph.schema().node_attr(attr).domain_size() as usize;
    // counts[i][j] over non-null value pairs.
    let mut counts = vec![vec![0u64; domain]; domain];
    let mut row_totals = vec![0u64; domain];
    for e in graph.edge_ids() {
        let i = graph.src_attr(e, attr);
        let j = graph.dst_attr(e, attr);
        if i == 0 || j == 0 {
            continue;
        }
        counts[i as usize - 1][j as usize - 1] += 1;
        row_totals[i as usize - 1] += 1;
    }

    let homophilous = graph.schema().node_attr(attr).is_homophily();
    let rows = (0..domain)
        .map(|i| {
            (0..domain)
                .map(|j| {
                    let supp = counts[i][j] as f64;
                    let total = row_totals[i] as f64;
                    if total == 0.0 {
                        return 0.0;
                    }
                    match kind {
                        InfluenceKind::Confidence => supp / total,
                        InfluenceKind::Nhp => {
                            if i == j || !homophilous {
                                // β = ∅: nhp degenerates to confidence
                                // (Remark 1) — on the diagonal, and for
                                // non-homophily attributes everywhere.
                                supp / total
                            } else {
                                // β = {A}: exclude the homophily effect
                                // (the diagonal mass of row i).
                                let heff = counts[i][i] as f64;
                                if total - heff <= 0.0 {
                                    0.0
                                } else {
                                    supp / (total - heff)
                                }
                            }
                        }
                    }
                })
                .collect()
        })
        .collect();

    InfluenceMatrix {
        attr,
        kind,
        rows,
        supports: row_totals,
    }
}

/// The GR corresponding to matrix entry `(i, j)` — handy for drilling from
/// a matrix cell back into the mining/query APIs.
pub fn entry_gr(attr: NodeAttrId, i: AttrValue, j: AttrValue) -> crate::gr::Gr {
    crate::gr::Gr::new(
        NodeDescriptor::from_pairs([(attr, i)]),
        EdgeDescriptor::empty(),
        NodeDescriptor::from_pairs([(attr, j)]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query;
    use grm_graph::{GraphBuilder, SchemaBuilder};

    /// 3-value homophily attribute; edges: 1->1 ×4, 1->2 ×2, 2->3 ×3.
    fn graph() -> SocialGraph {
        let schema = SchemaBuilder::new()
            .node_attr("A", 3, true)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let n1 = b.add_node(&[1]).unwrap();
        let n1b = b.add_node(&[1]).unwrap();
        let n2 = b.add_node(&[2]).unwrap();
        let n3 = b.add_node(&[3]).unwrap();
        for _ in 0..4 {
            b.add_edge(n1, n1b, &[]).unwrap();
        }
        for _ in 0..2 {
            b.add_edge(n1, n2, &[]).unwrap();
        }
        for _ in 0..3 {
            b.add_edge(n2, n3, &[]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn confidence_matrix_matches_queries() {
        let g = graph();
        let m = influence_matrix(&g, NodeAttrId(0), InfluenceKind::Confidence);
        for i in 1..=3u16 {
            for j in 1..=3u16 {
                let gr = entry_gr(NodeAttrId(0), i, j);
                let q = query::evaluate(&g, &gr);
                let expected = q.conf.unwrap_or(0.0);
                assert!(
                    (m.get(i, j) - expected).abs() < 1e-12,
                    "conf mismatch at ({i},{j}): {} vs {expected}",
                    m.get(i, j)
                );
            }
        }
        assert_eq!(m.supports, vec![6, 3, 0]);
    }

    #[test]
    fn nhp_matrix_boosts_off_diagonal() {
        let g = graph();
        let conf = influence_matrix(&g, NodeAttrId(0), InfluenceKind::Confidence);
        let nhp = influence_matrix(&g, NodeAttrId(0), InfluenceKind::Nhp);
        // (1 -> 2): conf = 2/6, nhp = 2/(6-4) = 1.0 — the GR4 computation.
        assert!((conf.get(1, 2) - 2.0 / 6.0).abs() < 1e-12);
        assert!((nhp.get(1, 2) - 1.0).abs() < 1e-12);
        // Diagonal keeps its confidence.
        assert_eq!(conf.get(1, 1), nhp.get(1, 1));
        // Matches the query API's nhp too.
        let q = query::evaluate(&g, &entry_gr(NodeAttrId(0), 1, 2));
        assert!((nhp.get(1, 2) - q.nhp.unwrap()).abs() < 1e-12);
    }

    #[test]
    fn non_homophily_attribute_has_no_exclusion() {
        let schema = SchemaBuilder::new()
            .node_attr("A", 2, false)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let x = b.add_node(&[1]).unwrap();
        let y = b.add_node(&[2]).unwrap();
        b.add_edge(x, y, &[]).unwrap();
        b.add_edge(x, x, &[]).unwrap_err(); // sanity: no self loops
        let g = b.build().unwrap();
        let conf = influence_matrix(&g, NodeAttrId(0), InfluenceKind::Confidence);
        let nhp = influence_matrix(&g, NodeAttrId(0), InfluenceKind::Nhp);
        assert_eq!(conf.rows, nhp.rows, "β is never non-empty here");
    }

    #[test]
    fn row_stochastic_rows_sum_to_one_or_zero() {
        let g = graph();
        let m = influence_matrix(&g, NodeAttrId(0), InfluenceKind::Nhp);
        for (i, row) in m.row_stochastic().iter().enumerate() {
            let sum: f64 = row.iter().sum();
            if m.supports[i] == 0 {
                assert_eq!(sum, 0.0);
            } else {
                assert!((sum - 1.0).abs() < 1e-12, "row {i} sums to {sum}");
            }
        }
    }

    #[test]
    fn display_renders_names() {
        let schema = SchemaBuilder::new()
            .node_attr_named("Area", true, ["DB", "DM"])
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let x = b.add_node(&[1]).unwrap();
        let y = b.add_node(&[2]).unwrap();
        b.add_edge(x, y, &[]).unwrap();
        let g = b.build().unwrap();
        let m = influence_matrix(&g, NodeAttrId(0), InfluenceKind::Confidence);
        let text = m.display(g.schema());
        assert!(text.contains("DB") && text.contains("DM"));
    }
}
