//! Interestingness metrics: support, confidence, non-homophily preference
//! (Defs. 2–4) and the alternative metrics of §VII.
//!
//! Every metric here is a function of at most four counts, all of which the
//! miner has on hand when it examines a GR (§VII: "all the above
//! alternative metrics are defined using three supports … and these
//! supports are easily computed"):
//!
//! * `supp`    = |E(l ∧ w ∧ r)|
//! * `supp_lw` = |E(l ∧ w)|
//! * `heff`    = `|E(l -w-> l[β])|`, the homophily effect (nhp only)
//! * `supp_r`  = |E(r)|, the RHS marginal (lift / PS / conviction only)
//! * `edges`   = |E|

use serde::{Deserialize, Serialize};

/// The counts a metric is evaluated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricInputs {
    /// `|E(l ∧ w ∧ r)|`.
    pub supp: u64,
    /// `|E(l ∧ w)|`.
    pub supp_lw: u64,
    /// `|E(l -w-> l[β])|`; 0 when β = ∅.
    pub heff: u64,
    /// `|E(r)|`. Only consulted by lift / Piatetsky-Shapiro / conviction;
    /// miners fill it lazily for those metrics and leave 0 otherwise.
    pub supp_r: u64,
    /// `|E|`.
    pub edges: u64,
}

/// Confidence `P(r | l ∧ w)` (Def. 3, Eqn. 3).
#[inline]
pub fn confidence(supp: u64, supp_lw: u64) -> f64 {
    debug_assert!(supp <= supp_lw);
    supp as f64 / supp_lw as f64
}

/// Non-homophily preference `P(r | l ∧ w ∧ ¬l[β])` (Def. 4, Eqn. 6).
///
/// With `β = ∅` (`heff = 0`) this degenerates to confidence (Remark 1).
/// Theorem 1 guarantees the denominator is positive whenever `supp > 0`;
/// the `debug_assert`s encode exactly the theorem's claims.
#[inline]
pub fn nhp(supp: u64, supp_lw: u64, heff: u64) -> f64 {
    debug_assert!(supp > 0, "nhp is defined for supported GRs (Theorem 1)");
    debug_assert!(
        supp_lw > heff,
        "Theorem 1(i): denominator nonzero when supp > 0"
    );
    let v = supp as f64 / (supp_lw - heff) as f64;
    debug_assert!(
        (0.0..=1.0 + 1e-12).contains(&v),
        "Theorem 1(ii): nhp ∈ [0,1]"
    );
    v
}

/// The ranking metric a miner scores GRs with.
///
/// `Nhp` is the paper's contribution; `Conf` reproduces the standard
/// support/confidence mining the paper compares against in Table II; the
/// rest are the §VII alternatives (Eqns. 10–14).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RankMetric {
    /// Non-homophily preference (Def. 4) — the default.
    Nhp,
    /// Plain confidence (Def. 3); homophily effect *not* excluded.
    Conf,
    /// Laplace-corrected confidence `(supp+1)/(supp_lw+k)` (Eqn. 10),
    /// `k ≥ 2`.
    Laplace {
        /// The additive-smoothing constant (an integer > 1 in Eqn. 10).
        k: u32,
    },
    /// `gain = supp − θ·supp_lw` (Eqn. 11), `0 < θ < 1`. Reported in
    /// *relative* form (divided by `|E|`) so thresholds stay in [−1, 1].
    Gain {
        /// The fractional constant θ.
        theta: f64,
    },
    /// Piatetsky-Shapiro leverage `supp − supp_lw·supp(r)/|E|` (Eqn. 12),
    /// reported in relative form.
    PiatetskyShapiro,
    /// `conviction = (|E| − supp(r)) / (|E|·(1 − conf))` (Eqn. 13).
    Conviction,
    /// `lift = |E|·conf / supp(r)` (Eqn. 14) — corrects for RHS-population
    /// skew (the paper's D1 discussion).
    Lift,
}

impl RankMetric {
    /// Evaluate the metric.
    pub fn evaluate(self, m: MetricInputs) -> f64 {
        match self {
            RankMetric::Nhp => nhp(m.supp, m.supp_lw, m.heff),
            RankMetric::Conf => confidence(m.supp, m.supp_lw),
            RankMetric::Laplace { k } => (m.supp as f64 + 1.0) / (m.supp_lw as f64 + k as f64),
            RankMetric::Gain { theta } => {
                (m.supp as f64 - theta * m.supp_lw as f64) / m.edges as f64
            }
            RankMetric::PiatetskyShapiro => {
                (m.supp as f64 - m.supp_lw as f64 * m.supp_r as f64 / m.edges as f64)
                    / m.edges as f64
            }
            RankMetric::Conviction => {
                let conf = confidence(m.supp, m.supp_lw);
                let denom = m.edges as f64 * (1.0 - conf);
                if denom == 0.0 {
                    // conf = 1: conviction diverges; report +inf so such
                    // GRs rank first, matching the metric's intent.
                    f64::INFINITY
                } else {
                    (m.edges - m.supp_r) as f64 / denom
                }
            }
            RankMetric::Lift => m.edges as f64 * confidence(m.supp, m.supp_lw) / m.supp_r as f64,
        }
    }

    /// Whether the metric is anti-monotone under RHS extension, enabling
    /// threshold pruning in the SFDF enumeration. §VII: laplace and gain
    /// keep the anti-monotonicity; Piatetsky-Shapiro, conviction and lift
    /// do not, so for those "the top-k GRs have to be found in a
    /// post-processing step" with support-based pruning only.
    ///
    /// `Nhp` is anti-monotone *only under the dynamic tail ordering*
    /// (Theorem 3), which the miner always applies.
    pub fn anti_monotone(self) -> bool {
        matches!(
            self,
            RankMetric::Nhp
                | RankMetric::Conf
                | RankMetric::Laplace { .. }
                | RankMetric::Gain { .. }
        )
    }

    /// Whether evaluating the metric requires the RHS marginal `supp(r)`.
    pub fn needs_r_marginal(self) -> bool {
        matches!(
            self,
            RankMetric::PiatetskyShapiro | RankMetric::Conviction | RankMetric::Lift
        )
    }

    /// Whether the metric excludes the homophily effect. Only nhp does;
    /// this also controls whether miners suppress trivial GRs by default
    /// (under plain confidence the paper's Table II *shows* the trivial
    /// GRs that dominate the top of the list).
    pub fn excludes_homophily(self) -> bool {
        matches!(self, RankMetric::Nhp)
    }

    /// Parse the user-facing metric name shared by the `grmine` CLI and
    /// the `grmined` request protocol (`None` for an unknown name).
    /// Parameterized metrics get the paper's constants (`laplace` k=2,
    /// `gain` θ=0.5).
    pub fn from_name(name: &str) -> Option<RankMetric> {
        Some(match name {
            "nhp" => RankMetric::Nhp,
            "conf" => RankMetric::Conf,
            "laplace" => RankMetric::Laplace { k: 2 },
            "gain" => RankMetric::Gain { theta: 0.5 },
            "ps" => RankMetric::PiatetskyShapiro,
            "conviction" => RankMetric::Conviction,
            "lift" => RankMetric::Lift,
            _ => return None,
        })
    }
}

impl std::fmt::Display for RankMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankMetric::Nhp => write!(f, "nhp"),
            RankMetric::Conf => write!(f, "conf"),
            RankMetric::Laplace { k } => write!(f, "laplace(k={k})"),
            RankMetric::Gain { theta } => write!(f, "gain(theta={theta})"),
            RankMetric::PiatetskyShapiro => write!(f, "piatetsky-shapiro"),
            RankMetric::Conviction => write!(f, "conviction"),
            RankMetric::Lift => write!(f, "lift"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example1_gr1_support_confidence() {
        // GR1: supp = 7/15, conf = 7/14 (Example 1).
        assert!((confidence(7, 14) - 0.5).abs() < 1e-12);
        assert!((7.0_f64 / 15.0 - 0.4667).abs() < 1e-3);
    }

    #[test]
    fn example2_gr4_nhp_is_one() {
        // GR4: supp(l∧w)=6, supp=2, homophily effect supp=4 (GR3).
        // nhp = 2/(6-4) = 100% (§III-B).
        assert!((nhp(2, 6, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nhp_degenerates_to_conf_when_beta_empty() {
        // Remark 1.
        for (s, lw) in [(1u64, 4u64), (3, 7), (10, 10)] {
            assert_eq!(nhp(s, lw, 0), confidence(s, lw));
        }
    }

    #[test]
    fn nhp_geq_conf_always() {
        // Remark 1: β ≠ ∅ implies nhp ≥ conf.
        for heff in 0..5u64 {
            assert!(nhp(2, 8, heff) >= confidence(2, 8));
        }
    }

    #[test]
    fn laplace_and_gain() {
        let m = MetricInputs {
            supp: 9,
            supp_lw: 18,
            heff: 0,
            supp_r: 0,
            edges: 100,
        };
        let lap = RankMetric::Laplace { k: 2 }.evaluate(m);
        assert!((lap - 10.0 / 20.0).abs() < 1e-12);
        let gain = RankMetric::Gain { theta: 0.25 }.evaluate(m);
        assert!((gain - (9.0 - 0.25 * 18.0) / 100.0).abs() < 1e-12);
    }

    #[test]
    fn lift_corrects_population_skew() {
        // RHS covering 90% of edges: conf 0.9 is unimpressive, lift = 1.
        let skewed = MetricInputs {
            supp: 9,
            supp_lw: 10,
            heff: 0,
            supp_r: 90,
            edges: 100,
        };
        assert!((RankMetric::Lift.evaluate(skewed) - 1.0).abs() < 1e-12);
        // Rare RHS hit far above its base rate: lift >> 1.
        let sharp = MetricInputs {
            supp: 5,
            supp_lw: 10,
            heff: 0,
            supp_r: 5,
            edges: 100,
        };
        assert!(RankMetric::Lift.evaluate(sharp) > 9.0);
    }

    #[test]
    fn piatetsky_shapiro_zero_at_independence() {
        let m = MetricInputs {
            supp: 6,
            supp_lw: 20,
            heff: 0,
            supp_r: 30,
            edges: 100,
        };
        assert!(RankMetric::PiatetskyShapiro.evaluate(m).abs() < 1e-12);
    }

    #[test]
    fn conviction_diverges_at_full_confidence() {
        let m = MetricInputs {
            supp: 10,
            supp_lw: 10,
            heff: 0,
            supp_r: 50,
            edges: 100,
        };
        assert!(RankMetric::Conviction.evaluate(m).is_infinite());
        let m2 = MetricInputs { supp: 5, ..m };
        let v = RankMetric::Conviction.evaluate(m2);
        assert!((v - 50.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn pruning_capabilities() {
        assert!(RankMetric::Nhp.anti_monotone());
        assert!(RankMetric::Conf.anti_monotone());
        assert!(RankMetric::Laplace { k: 2 }.anti_monotone());
        assert!(RankMetric::Gain { theta: 0.5 }.anti_monotone());
        assert!(!RankMetric::Lift.anti_monotone());
        assert!(!RankMetric::PiatetskyShapiro.anti_monotone());
        assert!(!RankMetric::Conviction.anti_monotone());

        assert!(RankMetric::Lift.needs_r_marginal());
        assert!(!RankMetric::Nhp.needs_r_marginal());
        assert!(RankMetric::Nhp.excludes_homophily());
        assert!(!RankMetric::Conf.excludes_homophily());
    }

    #[test]
    fn display_names() {
        assert_eq!(RankMetric::Nhp.to_string(), "nhp");
        assert_eq!(RankMetric::Laplace { k: 3 }.to_string(), "laplace(k=3)");
    }
}
