//! Brute-force reference miner: Definition 5, implemented literally.
//!
//! This module exists as a correctness oracle for GRMiner. It enumerates
//! *every* candidate GR by exhaustive product over attribute subsets and
//! value assignments, counts supports by scanning the raw edge list (no
//! compact model, no counting sort, no pruning — a completely independent
//! code path), and then applies Def. 5's three conditions verbatim.
//!
//! Complexity is exponential in the number of attributes and linear in
//! `|E|` per candidate; use only on small graphs/schemas (the differential
//! tests do).

use crate::config::MinerConfig;
use crate::descriptor::{EdgeDescriptor, NodeDescriptor};
use crate::gr::{Gr, ScoredGr};
use crate::metrics::MetricInputs;
use crate::tail::Dims;
use grm_graph::{EdgeId, SocialGraph};

/// Exhaustively mine the top-k GRs per Definition 5.
pub fn mine_reference(graph: &SocialGraph, config: &MinerConfig) -> Vec<ScoredGr> {
    mine_reference_with_dims(graph, config, &Dims::all(graph.schema()))
}

/// Exhaustive mining over a restricted dimension set.
pub fn mine_reference_with_dims(
    graph: &SocialGraph,
    config: &MinerConfig,
    dims: &Dims,
) -> Vec<ScoredGr> {
    let schema = graph.schema();
    let edges: Vec<EdgeId> = graph.edge_ids().collect();
    if edges.is_empty() {
        return Vec::new();
    }

    // All candidate descriptors (including the empty ones for l and w).
    let mut node_attrs = dims.l.clone();
    node_attrs.sort_unstable();
    let lhs_descs = all_node_descriptors(graph, &node_attrs);
    let rhs_descs = lhs_descs.clone();
    let w_descs = all_edge_descriptors(graph, &dims.w);

    let matches_l =
        |e: EdgeId, d: &NodeDescriptor| d.pairs().iter().all(|&(a, v)| graph.src_attr(e, a) == v);
    let matches_r =
        |e: EdgeId, d: &NodeDescriptor| d.pairs().iter().all(|&(a, v)| graph.dst_attr(e, a) == v);
    let matches_w =
        |e: EdgeId, d: &EdgeDescriptor| d.pairs().iter().all(|&(a, v)| graph.edge_attr(e, a) == v);

    // Condition (1): thresholds (plus the trivial-GR policy).
    let mut satisfying: Vec<ScoredGr> = Vec::new();
    for l in &lhs_descs {
        if l.is_empty() && !config.allow_empty_lhs {
            continue;
        }
        if config.max_lhs.is_some_and(|m| l.len() > m) {
            continue;
        }
        for w in &w_descs {
            let lw: Vec<EdgeId> = edges
                .iter()
                .copied()
                .filter(|&e| matches_l(e, l) && matches_w(e, w))
                .collect();
            if lw.is_empty() {
                continue;
            }
            let supp_lw = lw.len() as u64;
            for r in &rhs_descs {
                if r.is_empty() || config.max_rhs.is_some_and(|m| r.len() > m) {
                    continue;
                }
                let supp = lw.iter().filter(|&&e| matches_r(e, r)).count() as u64;
                if supp == 0 || supp < config.min_supp {
                    continue;
                }
                let gr = Gr::new(l.clone(), w.clone(), r.clone());
                if config.suppress_trivial && gr.is_trivial(schema) {
                    continue;
                }
                let b = crate::beta::beta(schema, l, r);
                let heff = if b.is_empty() {
                    0
                } else {
                    let pairs = crate::beta::l_beta(l, b);
                    lw.iter()
                        .filter(|&&e| pairs.iter().all(|&(a, v)| graph.dst_attr(e, a) == v))
                        .count() as u64
                };
                let supp_r = if config.metric.needs_r_marginal() {
                    edges.iter().filter(|&&e| matches_r(e, r)).count() as u64
                } else {
                    0
                };
                let score = config.metric.evaluate(MetricInputs {
                    supp,
                    supp_lw,
                    heff,
                    supp_r,
                    edges: edges.len() as u64,
                });
                if score < config.min_score {
                    continue;
                }
                satisfying.push(ScoredGr {
                    gr,
                    supp,
                    supp_lw,
                    heff,
                    score,
                });
            }
        }
    }

    // Condition (2): remove GRs with a strictly more general GR in the
    // satisfying set.
    let mut kept: Vec<ScoredGr> = satisfying
        .iter()
        .filter(|cand| {
            !config.generality_filter
                || !satisfying
                    .iter()
                    .any(|other| other.gr != cand.gr && other.gr.is_more_general_than(&cand.gr))
        })
        .cloned()
        .collect();

    // Condition (3): rank and truncate to k.
    kept.sort_by(|a, b| a.rank_cmp(b));
    kept.truncate(config.k);
    kept
}

fn all_node_descriptors(
    graph: &SocialGraph,
    attrs: &[grm_graph::NodeAttrId],
) -> Vec<NodeDescriptor> {
    let mut out = vec![NodeDescriptor::empty()];
    for &a in attrs {
        let domain = graph.schema().node_attr(a).domain_size();
        let mut next = out.clone();
        for d in &out {
            for v in 1..=domain {
                next.push(d.with(a, v));
            }
        }
        out = next;
    }
    out
}

fn all_edge_descriptors(
    graph: &SocialGraph,
    attrs: &[grm_graph::EdgeAttrId],
) -> Vec<EdgeDescriptor> {
    let mut out = vec![EdgeDescriptor::empty()];
    for &a in attrs {
        let domain = graph.schema().edge_attr(a).domain_size();
        let mut next = out.clone();
        for d in &out {
            for v in 1..=domain {
                next.push(d.with(a, v));
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::GrMiner;
    use grm_graph::{GraphBuilder, SchemaBuilder};

    fn small_graph(seedish: u32) -> SocialGraph {
        // Deterministic pseudo-random small graph without external RNG.
        let schema = SchemaBuilder::new()
            .node_attr("A", 2, true)
            .node_attr("B", 2, false)
            .edge_attr("W", 2)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let mut state = seedish.wrapping_mul(2654435761).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        let n = 8;
        for _ in 0..n {
            let a = (next() % 3) as u16; // includes null
            let bb = (next() % 3) as u16;
            b.add_node(&[a, bb]).unwrap();
        }
        for _ in 0..20 {
            let s = next() % n;
            let mut t = next() % n;
            if t == s {
                t = (t + 1) % n;
            }
            let w = (next() % 3) as u16;
            b.add_edge(s, t, &[w]).unwrap();
        }
        b.build().unwrap()
    }

    fn keys(v: &[ScoredGr]) -> Vec<(Gr, u64)> {
        v.iter().map(|s| (s.gr.clone(), s.supp)).collect()
    }

    #[test]
    fn grminer_matches_reference_across_seeds_and_configs() {
        for seed in 0..12u32 {
            let g = small_graph(seed);
            for cfg in [
                MinerConfig::nhp(1, 0.5, 10),
                MinerConfig::nhp(2, 0.3, 5),
                MinerConfig::nhp(1, 0.0, 50),
                MinerConfig::conf(1, 0.5, 10),
            ] {
                // Static-threshold GRMiner is exact w.r.t. Definition 5.
                let cfg = cfg.without_dynamic_topk();
                let fast = GrMiner::new(&g, cfg.clone()).mine();
                let slow = mine_reference(&g, &cfg);
                assert_eq!(keys(&fast.top), keys(&slow), "seed {seed}, cfg {cfg:?}");
                // Scores agree too.
                for (a, b) in fast.top.iter().zip(&slow) {
                    assert!((a.score - b.score).abs() < 1e-12);
                    assert_eq!(a.supp_lw, b.supp_lw);
                    assert_eq!(a.heff, b.heff);
                }
            }
        }
    }

    #[test]
    fn dynamic_topk_is_subset_consistent_with_reference_ranks() {
        // GRMiner(k) may in rare corner cases differ from Definition 5 on
        // generality (see DESIGN.md); on these small graphs it should
        // coincide. Treat a mismatch here as a signal, not merely a bug.
        for seed in 0..12u32 {
            let g = small_graph(seed);
            let cfg = MinerConfig::nhp(1, 0.4, 8);
            let fast = GrMiner::new(&g, cfg.clone()).mine();
            let slow = mine_reference(&g, &cfg);
            assert_eq!(keys(&fast.top), keys(&slow), "seed {seed}");
        }
    }

    #[test]
    fn reference_empty_graph() {
        let schema = SchemaBuilder::new()
            .node_attr("A", 2, true)
            .build()
            .unwrap();
        let g = GraphBuilder::new(schema).build().unwrap();
        assert!(mine_reference(&g, &MinerConfig::default()).is_empty());
    }
}
