//! Group relationships `l -w-> r` (Def. 1) and their scored form.

use crate::descriptor::{EdgeDescriptor, NodeDescriptor};
use grm_graph::Schema;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// A group relationship `l -w-> r`: the social tie from the group of nodes
/// matching `l` to the group matching `r`, over edges matching `w` (Def. 1).
///
/// The derived `Ord` is the canonical deterministic order used as the final
/// tie-break of the rank (Def. 5(3) breaks ties "by the alphabetical order
/// of GRs"; we use the equivalent lexicographic order on the numeric
/// `(attribute, value)` encoding, which is stable across runs and
/// independent of display names).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Gr {
    /// LHS node descriptor.
    pub l: NodeDescriptor,
    /// Edge descriptor.
    pub w: EdgeDescriptor,
    /// RHS node descriptor.
    pub r: NodeDescriptor,
}

impl Gr {
    /// Construct from parts.
    pub fn new(l: NodeDescriptor, w: EdgeDescriptor, r: NodeDescriptor) -> Self {
        Gr { l, w, r }
    }

    /// Whether this GR is *trivial* (§III-B): every value in `r` is on a
    /// homophily attribute and `r ⊆ l`. A trivial GR merely restates the
    /// homophily principle and is never reported (under the nhp metric).
    pub fn is_trivial(&self, schema: &Schema) -> bool {
        Self::parts_are_trivial(schema, &self.l, &self.r)
    }

    /// [`Gr::is_trivial`] on loose descriptor parts — lets the miner test
    /// triviality for every examined partition without assembling (and
    /// allocating) a `Gr` it will usually throw away.
    pub fn parts_are_trivial(schema: &Schema, l: &NodeDescriptor, r: &NodeDescriptor) -> bool {
        !r.is_empty()
            && r.pairs()
                .iter()
                .all(|&(a, _)| schema.node_attr(a).is_homophily())
            && r.is_subset_of(l)
    }

    /// Generality test (Def. 5): `self` is more general than `other` when
    /// `self.l ⊆ other.l`, `self.w ⊆ other.w` and `self.r == other.r`.
    /// Intuitively the more general GR states the same tendency while
    /// covering at least as many nodes on the LHS.
    pub fn is_more_general_than(&self, other: &Gr) -> bool {
        self.r == other.r && self.l.is_subset_of(&other.l) && self.w.is_subset_of(&other.w)
    }

    /// Render with schema names: `(SEX:F, EDU:Grad) -> (EDU:College)` or,
    /// with edge conditions, `(A:DB) -[S:often]-> (A:DM)`.
    pub fn display(&self, schema: &Schema) -> String {
        if self.w.is_empty() {
            format!("{} -> {}", self.l.display(schema), self.r.display(schema))
        } else {
            format!(
                "{} -{}-> {}",
                self.l.display(schema),
                self.w.display(schema),
                self.r.display(schema)
            )
        }
    }
}

/// A GR with its measured statistics, as returned by miners and queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredGr {
    /// The relationship.
    pub gr: Gr,
    /// Absolute support `|E(l ∧ w ∧ r)|` (Def. 2, numerator).
    pub supp: u64,
    /// Absolute support of the antecedent, `|E(l ∧ w)|`.
    pub supp_lw: u64,
    /// Absolute support of the homophily effect `|E(l -w-> l[β])|`
    /// (Eqn. 5); zero when `β = ∅`.
    pub heff: u64,
    /// The ranking-metric value this GR was scored with (nhp under the
    /// default configuration — see [`crate::RankMetric`]).
    pub score: f64,
}

impl ScoredGr {
    /// Relative support `supp / |E|` (Def. 2).
    pub fn relative_supp(&self, edge_count: u64) -> f64 {
        self.supp as f64 / edge_count as f64
    }

    /// Confidence `P(r | l ∧ w)` (Def. 3).
    pub fn conf(&self) -> f64 {
        self.supp as f64 / self.supp_lw as f64
    }

    /// Non-homophily preference `P(r | l ∧ w ∧ ¬l[β])` (Def. 4, Eqn. 6).
    /// Equals [`ScoredGr::conf`] when the homophily effect is empty.
    pub fn nhp(&self) -> f64 {
        self.supp as f64 / (self.supp_lw - self.heff) as f64
    }

    /// Rank comparison per Def. 5(3): higher score first, then higher
    /// support, then the canonical GR order. Returns `Ordering::Less` when
    /// `self` ranks *better* (earlier) than `other`, so sorting ascending
    /// by this comparator lists the best GR first.
    pub fn rank_cmp(&self, other: &ScoredGr) -> Ordering {
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| other.supp.cmp(&self.supp))
            .then_with(|| self.gr.cmp(&other.gr))
    }

    /// One-line report: `GR  [score=…, supp=…, conf=…]`.
    pub fn display(&self, schema: &Schema) -> String {
        format!(
            "{}  [score={:.4}, supp={}, conf={:.4}]",
            self.gr.display(schema),
            self.score,
            self.supp,
            self.conf()
        )
    }
}

/// Builder for assembling a [`Gr`] by attribute/value *names*, resolving
/// them against a schema — the ergonomic entry point for the hypothesis
/// cycle of Remark 3 (start from a mined GR, vary it, re-query).
///
/// ```
/// # use grm_graph::SchemaBuilder;
/// # use grm_core::GrBuilder;
/// let schema = SchemaBuilder::new()
///     .node_attr_named("SEX", false, ["F", "M"])
///     .node_attr_named("EDU", true, ["HS", "College", "Grad"])
///     .edge_attr_named("TYPE", ["dates"])
///     .build().unwrap();
/// let gr = GrBuilder::new(&schema)
///     .l("SEX", "F").l("EDU", "Grad")
///     .w("TYPE", "dates")
///     .r("EDU", "College")
///     .build().unwrap();
/// assert_eq!(gr.display(&schema), "(SEX:F, EDU:Grad) -[TYPE:dates]-> (EDU:College)");
/// ```
#[derive(Debug)]
pub struct GrBuilder<'s> {
    schema: &'s Schema,
    l: Vec<(grm_graph::NodeAttrId, grm_graph::AttrValue)>,
    w: Vec<(grm_graph::EdgeAttrId, grm_graph::AttrValue)>,
    r: Vec<(grm_graph::NodeAttrId, grm_graph::AttrValue)>,
    error: Option<grm_graph::GraphError>,
}

impl<'s> GrBuilder<'s> {
    /// Start building against `schema`.
    pub fn new(schema: &'s Schema) -> Self {
        GrBuilder {
            schema,
            l: Vec::new(),
            w: Vec::new(),
            r: Vec::new(),
            error: None,
        }
    }

    fn resolve_node(
        &mut self,
        attr: &str,
        value: &str,
    ) -> Option<(grm_graph::NodeAttrId, grm_graph::AttrValue)> {
        match self.schema.node_attr_by_name(attr) {
            Ok(a) => {
                let def = self.schema.node_attr(a);
                match def.value_by_name(value).or_else(|| value.parse().ok()) {
                    Some(v) if v != grm_graph::NULL && v <= def.domain_size() => Some((a, v)),
                    _ => {
                        self.error = Some(grm_graph::GraphError::UnknownName {
                            name: format!("{attr}:{value}"),
                        });
                        None
                    }
                }
            }
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }

    /// Add an LHS condition by names (numeric values accepted for
    /// dictionary-less attributes).
    pub fn l(mut self, attr: &str, value: &str) -> Self {
        if let Some(p) = self.resolve_node(attr, value) {
            self.l.push(p);
        }
        self
    }

    /// Add an RHS condition by names.
    pub fn r(mut self, attr: &str, value: &str) -> Self {
        if let Some(p) = self.resolve_node(attr, value) {
            self.r.push(p);
        }
        self
    }

    /// Add an edge condition by names.
    pub fn w(mut self, attr: &str, value: &str) -> Self {
        match self.schema.edge_attr_by_name(attr) {
            Ok(a) => {
                let def = self.schema.edge_attr(a);
                match def.value_by_name(value).or_else(|| value.parse().ok()) {
                    Some(v) if v != grm_graph::NULL && v <= def.domain_size() => {
                        self.w.push((a, v));
                    }
                    _ => {
                        self.error = Some(grm_graph::GraphError::UnknownName {
                            name: format!("{attr}:{value}"),
                        });
                    }
                }
            }
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Finish; errors if any name failed to resolve.
    pub fn build(self) -> grm_graph::Result<Gr> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(Gr::new(
            NodeDescriptor::from_pairs(self.l),
            EdgeDescriptor::from_pairs(self.w),
            NodeDescriptor::from_pairs(self.r),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_graph::{NodeAttrId, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new()
            .node_attr_named("SEX", false, ["F", "M"])
            .node_attr_named("RACE", true, ["Asian", "Latino", "White"])
            .node_attr_named("EDU", true, ["HS", "College", "Grad"])
            .edge_attr_named("TYPE", ["dates"])
            .build()
            .unwrap()
    }

    fn nd(pairs: &[(u8, u16)]) -> NodeDescriptor {
        NodeDescriptor::from_pairs(pairs.iter().map(|&(a, v)| (NodeAttrId(a), v)))
    }

    #[test]
    fn trivial_detection() {
        let s = schema();
        // (EDU:Grad) -> (EDU:Grad): homophily attr, r ⊆ l => trivial.
        let g = Gr::new(nd(&[(2, 3)]), EdgeDescriptor::empty(), nd(&[(2, 3)]));
        assert!(g.is_trivial(&s));
        // Different value on RHS: not trivial.
        let g = Gr::new(nd(&[(2, 3)]), EdgeDescriptor::empty(), nd(&[(2, 2)]));
        assert!(!g.is_trivial(&s));
        // SEX is non-homophily: (SEX:F) -> (SEX:F) is not trivial.
        let g = Gr::new(nd(&[(0, 1)]), EdgeDescriptor::empty(), nd(&[(0, 1)]));
        assert!(!g.is_trivial(&s));
        // Mixed RHS with one non-homophily attr: not trivial.
        let g = Gr::new(
            nd(&[(0, 1), (2, 3)]),
            EdgeDescriptor::empty(),
            nd(&[(0, 1), (2, 3)]),
        );
        assert!(!g.is_trivial(&s));
        // RHS homophily value not contained in LHS: not trivial.
        let g = Gr::new(nd(&[(0, 1)]), EdgeDescriptor::empty(), nd(&[(2, 3)]));
        assert!(!g.is_trivial(&s));
    }

    #[test]
    fn generality() {
        let g1 = Gr::new(nd(&[(0, 1)]), EdgeDescriptor::empty(), nd(&[(2, 2)]));
        let g2 = Gr::new(
            nd(&[(0, 1), (2, 3)]),
            EdgeDescriptor::empty(),
            nd(&[(2, 2)]),
        );
        assert!(g1.is_more_general_than(&g2));
        assert!(g1.is_more_general_than(&g1), "reflexive");
        assert!(!g2.is_more_general_than(&g1));
        // Different RHS: incomparable.
        let g3 = Gr::new(nd(&[(0, 1)]), EdgeDescriptor::empty(), nd(&[(2, 3)]));
        assert!(!g1.is_more_general_than(&g3));
    }

    #[test]
    fn scored_math() {
        let s = ScoredGr {
            gr: Gr::default(),
            supp: 2,
            supp_lw: 6,
            heff: 4,
            score: 1.0,
        };
        assert!((s.conf() - 2.0 / 6.0).abs() < 1e-12);
        assert!((s.nhp() - 1.0).abs() < 1e-12, "Example 2: 2/(6-4) = 100%");
        assert!((s.relative_supp(15) - 2.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn rank_order() {
        let mk = |supp, score, lval| ScoredGr {
            gr: Gr::new(nd(&[(0, lval)]), EdgeDescriptor::empty(), nd(&[(1, 1)])),
            supp,
            supp_lw: 100,
            heff: 0,
            score,
        };
        let a = mk(10, 0.9, 1);
        let b = mk(50, 0.8, 1);
        let c = mk(50, 0.8, 2);
        let d = mk(60, 0.8, 1);
        let mut v = vec![c.clone(), d.clone(), b.clone(), a.clone()];
        v.sort_by(|x, y| x.rank_cmp(y));
        // Highest score first; then higher supp; then canonical GR order.
        assert_eq!(v, vec![a, d, b, c]);
    }

    #[test]
    fn builder_resolves_names() {
        let s = schema();
        let gr = GrBuilder::new(&s)
            .l("SEX", "M")
            .r("SEX", "F")
            .r("RACE", "Asian")
            .build()
            .unwrap();
        assert_eq!(gr.display(&s), "(SEX:M) -> (SEX:F, RACE:Asian)");
        assert!(GrBuilder::new(&s).l("NOPE", "x").build().is_err());
        assert!(GrBuilder::new(&s).l("SEX", "Alien").build().is_err());
        assert!(GrBuilder::new(&s).w("TYPE", "marries").build().is_err());
    }

    #[test]
    fn builder_accepts_numeric_values() {
        let s = SchemaBuilder::new()
            .node_attr("Region", 188, true)
            .build()
            .unwrap();
        let gr = GrBuilder::new(&s)
            .l("Region", "27")
            .r("Region", "27")
            .build()
            .unwrap();
        assert_eq!(gr.display(&s), "(Region:27) -> (Region:27)");
        assert!(
            GrBuilder::new(&s).l("Region", "999").build().is_err(),
            "out of domain"
        );
        assert!(
            GrBuilder::new(&s).l("Region", "0").build().is_err(),
            "null rejected"
        );
    }
}
