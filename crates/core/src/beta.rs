//! The β set and the homophily effect (Eqns. 4–5).
//!
//! For a GR `l -w-> r`, β is the set of **homophily attributes** that occur
//! in both sides *with different values*:
//!
//! ```text
//! β = { Aʳ ∈ R  |  Aˡ ∈ L,  r[Aʳ] ≠ l[Aˡ] }          (Eqn. 4)
//! ```
//!
//! The *homophily effect* is the trivial GR `l -w-> l[β]` (Eqn. 5): the
//! portion of `l ∧ w`'s edges that merely follow homophily on β. Its support
//! is subtracted from the confidence denominator to obtain the
//! non-homophily preference (Def. 4).
//!
//! β sets are represented as bitmasks over node-attribute ids, which keeps
//! the per-`l∧w` memoization of homophily-effect supports allocation-free.
//!
//! ### The β group-by ([`heff_table`])
//!
//! Every β reachable at an `l ∧ w` enumeration node is a subset of
//! `H_l` — the homophily attributes `l` constrains ([`homophily_pairs`]).
//! Instead of re-filtering the `l ∧ w` snapshot once per distinct β, a
//! single counting-partition pass groups the snapshot by its **match
//! mask** (bit `i` set iff position `p` agrees with `l` on `H_l[i]`), and
//! a subset-sum sweep turns the mask histogram into `supp(l -w-> l[β])`
//! for *every* β at once: `heff(β) = Σ_{mask ⊇ β} hist[mask]`. The masks
//! are built one group-by dimension at a time from the compact model's
//! key *columns* through the vectorized mask kernel
//! ([`PartitionArena::partition_mask_cols`]), so the pass shares the
//! miner's batched gather/count machinery.

use crate::descriptor::NodeDescriptor;
use grm_graph::sort::PartitionArena;
use grm_graph::{AttrValue, NodeAttrId, Schema};

/// Maximum number of node attributes supported by the bitmask
/// representation. Far above any realistic schema (the paper's widest has
/// 6); enforced at miner construction.
pub const MAX_NODE_ATTRS: usize = 64;

/// A set of node attributes encoded as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BetaSet(pub u64);

impl BetaSet {
    /// The empty set.
    pub fn empty() -> Self {
        BetaSet(0)
    }

    /// Whether β = ∅ (the homophily effect is empty and nhp degenerates to
    /// confidence — Remark 1).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of attributes in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Insert an attribute.
    pub fn insert(&mut self, a: NodeAttrId) {
        self.0 |= 1u64 << a.0;
    }

    /// Membership test.
    pub fn contains(self, a: NodeAttrId) -> bool {
        self.0 & (1u64 << a.0) != 0
    }

    /// Iterate members in increasing attribute order.
    pub fn iter(self) -> impl Iterator<Item = NodeAttrId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                // cast: trailing_zeros of a nonzero u16 mask is < 16
                let i = bits.trailing_zeros() as u8;
                bits &= bits - 1;
                Some(NodeAttrId(i))
            }
        })
    }
}

/// Widest LHS homophily set the group-by table handles: the table holds
/// `2^|H_l|` counters, so the miner falls back to per-β snapshot scans
/// beyond this width (no realistic schema comes close — the paper's
/// widest has 6 node attributes total).
pub const MAX_GROUPBY_ATTRS: usize = 12;

impl BetaSet {
    /// Compress this set into a bitmask over `pairs` (sorted by attribute
    /// id, as produced by [`homophily_pairs`]): bit `i` is set iff
    /// `pairs[i]`'s attribute is a member. Returns `None` when some
    /// member does not occur in `pairs` — for the miner that would mean a
    /// β outside the LHS homophily set, which Eqn. 4 rules out.
    pub fn local_mask(self, pairs: &[(NodeAttrId, AttrValue)]) -> Option<usize> {
        let mut mask = 0usize;
        'member: for a in self.iter() {
            for (i, &(pa, _)) in pairs.iter().enumerate() {
                if pa == a {
                    mask |= 1 << i;
                    continue 'member;
                }
            }
            return None;
        }
        Some(mask)
    }
}

/// The homophily conditions of `l` in attribute order — the group-by
/// dimensions of [`heff_table`]. Every β of a GR with LHS `l` is a subset
/// of these attributes, and `l[β]`'s values are their values.
pub fn homophily_pairs(
    l: &NodeDescriptor,
    mut is_homophily: impl FnMut(NodeAttrId) -> bool,
) -> Vec<(NodeAttrId, AttrValue)> {
    l.pairs()
        .iter()
        .copied()
        .filter(|&(a, _)| is_homophily(a))
        .collect()
}

/// One counting-partition group-by pass over `snapshot` (module docs):
/// returns `table` of length `2^pairs.len()` where `table[m]` is the
/// number of positions agreeing with `l` on every attribute in local mask
/// `m` — i.e. `supp(l -w-> l[β])` for the β that `m` encodes
/// ([`BetaSet::local_mask`]).
///
/// Reuses the miner's counting-sort machinery: `r_col` resolves each
/// group-by attribute to its RHS key *column* (indexed by edge
/// position — `CompactModel::r_col`), the snapshot is partitioned in
/// place by match mask through the vectorized mask pass (its order
/// afterwards is mask-grouped, which no caller depends on), the
/// partition sizes are the mask histogram, and a superset-sum sweep
/// (`O(k·2^k)`) completes the table. `pairs.len()` must be at most
/// [`MAX_GROUPBY_ATTRS`].
pub fn heff_table<'c>(
    snapshot: &mut [u32],
    pairs: &[(NodeAttrId, AttrValue)],
    arena: &mut PartitionArena,
    r_col: impl FnMut(NodeAttrId) -> &'c [AttrValue],
) -> Vec<u64> {
    let mut table = Vec::new();
    heff_table_into(snapshot, pairs, arena, &mut table, r_col);
    table
}

/// [`heff_table`] into a caller-provided (pooled) buffer, so steady-state
/// mining fills the β supports of an `l ∧ w` node without allocating.
pub fn heff_table_into<'c>(
    snapshot: &mut [u32],
    pairs: &[(NodeAttrId, AttrValue)],
    arena: &mut PartitionArena,
    table: &mut Vec<u64>,
    mut r_col: impl FnMut(NodeAttrId) -> &'c [AttrValue],
) {
    let k = pairs.len();
    assert!(
        k <= MAX_GROUPBY_ATTRS,
        "group-by over {k} homophily attributes exceeds {MAX_GROUPBY_ATTRS}"
    );
    let buckets = 1usize << k;
    // Resolve the group-by dimensions to their columns once (a stack
    // array — steady-state mining allocates nothing here); the match
    // masks are then built one dimension at a time by the mask kernel.
    let mut cols: [(&[AttrValue], AttrValue); MAX_GROUPBY_ATTRS] = [(&[], 0); MAX_GROUPBY_ATTRS];
    for (slot, &(a, v)) in cols.iter_mut().zip(pairs) {
        *slot = (r_col(a), v);
    }
    let frame = arena.partition_mask_cols(snapshot, &cols[..k]);
    table.clear();
    table.resize(buckets, 0);
    for part in arena.records(&frame) {
        table[part.value as usize] = part.len() as u64;
    }
    arena.pop_frame(frame);
    // Superset sum: after sweeping bit i, table[m] counts positions whose
    // mask restricted to bits ≥ processed agrees with a superset of m.
    for i in 0..k {
        let bit = 1usize << i;
        for m in 0..buckets {
            if m & bit == 0 {
                table[m] += table[m | bit];
            }
        }
    }
}

/// Compute β for the GR `l -w-> r` (Eqn. 4): homophily attributes
/// constrained on both sides with differing values.
pub fn beta(schema: &Schema, l: &NodeDescriptor, r: &NodeDescriptor) -> BetaSet {
    let mut set = BetaSet::empty();
    for &(a, rv) in r.pairs() {
        if !schema.node_attr(a).is_homophily() {
            continue;
        }
        if let Some(lv) = l.get(a) {
            if lv != rv {
                set.insert(a);
            }
        }
    }
    set
}

/// The RHS condition `l[β]` of the homophily effect (Eqn. 5): `l`'s values
/// restricted to the attributes of β. Returns `(attr, value)` pairs in
/// attribute order. A β attribute absent from `l` — impossible for a β
/// built by [`beta`], which only inserts attributes constrained on both
/// sides — is skipped rather than panicking on a hand-built pair.
pub fn l_beta(l: &NodeDescriptor, beta: BetaSet) -> Vec<(NodeAttrId, AttrValue)> {
    beta.iter()
        .filter_map(|a| {
            let v = l.get(a);
            debug_assert!(v.is_some(), "β attrs occur in l by construction (Eqn. 4)");
            v.map(|v| (a, v))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_graph::SchemaBuilder;

    fn schema() -> Schema {
        // SEX non-homophily; RACE, EDU homophily.
        SchemaBuilder::new()
            .node_attr("SEX", 2, false)
            .node_attr("RACE", 3, true)
            .node_attr("EDU", 3, true)
            .build()
            .unwrap()
    }

    fn nd(pairs: &[(u8, u16)]) -> NodeDescriptor {
        NodeDescriptor::from_pairs(pairs.iter().map(|&(a, v)| (NodeAttrId(a), v)))
    }

    #[test]
    fn beta_of_example_gr4() {
        // GR4: (SEX:F, EDU:Grad) -> (SEX:M, EDU:College); EDU homophily.
        // β = {EDU} because EDU occurs on both sides with different values;
        // SEX is non-homophily so it never enters β.
        let s = schema();
        let l = nd(&[(0, 1), (2, 3)]);
        let r = nd(&[(0, 2), (2, 2)]);
        let b = beta(&s, &l, &r);
        assert_eq!(b.len(), 1);
        assert!(b.contains(NodeAttrId(2)));
        assert_eq!(l_beta(&l, b), vec![(NodeAttrId(2), 3)]);
    }

    #[test]
    fn beta_empty_when_values_agree() {
        // Same EDU value on both sides: not in β (that is the trivial case).
        let s = schema();
        let l = nd(&[(2, 3)]);
        let r = nd(&[(2, 3)]);
        assert!(beta(&s, &l, &r).is_empty());
    }

    #[test]
    fn beta_empty_when_attr_missing_from_lhs() {
        // EDU on RHS only: Aˡ ∉ L, so not in β.
        let s = schema();
        let l = nd(&[(0, 1)]);
        let r = nd(&[(2, 2)]);
        assert!(beta(&s, &l, &r).is_empty());
    }

    #[test]
    fn beta_multiple_attrs() {
        let s = schema();
        let l = nd(&[(1, 1), (2, 1)]);
        let r = nd(&[(1, 2), (2, 3)]);
        let b = beta(&s, &l, &r);
        assert_eq!(b.len(), 2);
        assert_eq!(l_beta(&l, b), vec![(NodeAttrId(1), 1), (NodeAttrId(2), 1)]);
    }

    #[test]
    fn local_mask_compresses_into_pair_order() {
        let pairs = vec![(NodeAttrId(1), 3), (NodeAttrId(4), 2), (NodeAttrId(9), 1)];
        let mut b = BetaSet::empty();
        b.insert(NodeAttrId(1));
        b.insert(NodeAttrId(9));
        assert_eq!(b.local_mask(&pairs), Some(0b101));
        assert_eq!(BetaSet::empty().local_mask(&pairs), Some(0));
        let mut stray = BetaSet::empty();
        stray.insert(NodeAttrId(7));
        assert_eq!(stray.local_mask(&pairs), None, "β outside the LHS set");
    }

    #[test]
    fn homophily_pairs_filters_and_keeps_order() {
        let s = schema();
        let l = nd(&[(0, 1), (1, 2), (2, 3)]);
        let pairs = homophily_pairs(&l, |a| s.node_attr(a).is_homophily());
        assert_eq!(pairs, vec![(NodeAttrId(1), 2), (NodeAttrId(2), 3)]);
    }

    #[test]
    fn heff_table_matches_per_beta_filters() {
        // Synthetic snapshot: positions 0..12, r_key(p, a) derived from p
        // so every mask combination occurs. Compare the single-pass table
        // against a naive per-β filter for every β ⊆ pairs.
        let pairs = vec![(NodeAttrId(1), 1), (NodeAttrId(2), 2)];
        let r_key = |p: u32, a: NodeAttrId| match a.0 {
            1 => (p % 2) as AttrValue + 1, // matches value 1 on even p
            2 => (p % 3) as AttrValue,     // matches value 2 on p ≡ 2 (mod 3)
            _ => 0,
        };
        // The columnar form the group-by pass consumes.
        let col1: Vec<AttrValue> = (0..12).map(|p| r_key(p, NodeAttrId(1))).collect();
        let col2: Vec<AttrValue> = (0..12).map(|p| r_key(p, NodeAttrId(2))).collect();
        let mut snapshot: Vec<u32> = (0..12).collect();
        let mut arena = PartitionArena::new();
        let table = heff_table(&mut snapshot, &pairs, &mut arena, |a| match a.0 {
            1 => col1.as_slice(),
            2 => col2.as_slice(),
            _ => unreachable!("only the group-by attributes are resolved"),
        });
        assert_eq!(table.len(), 4);
        for (mask, &got) in table.iter().enumerate() {
            let expected = (0..12u32)
                .filter(|&p| {
                    pairs
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| mask & (1 << i) != 0)
                        .all(|(_, &(a, v))| r_key(p, a) == v)
                })
                .count() as u64;
            assert_eq!(got, expected, "mask {mask:#b}");
        }
        // The pass only permutes the snapshot.
        let mut sorted = snapshot.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>());
        // β = ∅ maps to the full snapshot size.
        assert_eq!(table[0], 12);
    }

    #[test]
    fn bitset_iteration_order() {
        let mut b = BetaSet::empty();
        b.insert(NodeAttrId(5));
        b.insert(NodeAttrId(1));
        let v: Vec<_> = b.iter().collect();
        assert_eq!(v, vec![NodeAttrId(1), NodeAttrId(5)]);
        assert!(b.contains(NodeAttrId(5)));
        assert!(!b.contains(NodeAttrId(0)));
        assert_eq!(b.len(), 2);
    }
}
