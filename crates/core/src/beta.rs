//! The β set and the homophily effect (Eqns. 4–5).
//!
//! For a GR `l -w-> r`, β is the set of **homophily attributes** that occur
//! in both sides *with different values*:
//!
//! ```text
//! β = { Aʳ ∈ R  |  Aˡ ∈ L,  r[Aʳ] ≠ l[Aˡ] }          (Eqn. 4)
//! ```
//!
//! The *homophily effect* is the trivial GR `l -w-> l[β]` (Eqn. 5): the
//! portion of `l ∧ w`'s edges that merely follow homophily on β. Its support
//! is subtracted from the confidence denominator to obtain the
//! non-homophily preference (Def. 4).
//!
//! β sets are represented as bitmasks over node-attribute ids, which keeps
//! the per-`l∧w` memoization of homophily-effect supports allocation-free.

use crate::descriptor::NodeDescriptor;
use grm_graph::{AttrValue, NodeAttrId, Schema};

/// Maximum number of node attributes supported by the bitmask
/// representation. Far above any realistic schema (the paper's widest has
/// 6); enforced at miner construction.
pub const MAX_NODE_ATTRS: usize = 64;

/// A set of node attributes encoded as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BetaSet(pub u64);

impl BetaSet {
    /// The empty set.
    pub fn empty() -> Self {
        BetaSet(0)
    }

    /// Whether β = ∅ (the homophily effect is empty and nhp degenerates to
    /// confidence — Remark 1).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of attributes in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Insert an attribute.
    pub fn insert(&mut self, a: NodeAttrId) {
        self.0 |= 1u64 << a.0;
    }

    /// Membership test.
    pub fn contains(self, a: NodeAttrId) -> bool {
        self.0 & (1u64 << a.0) != 0
    }

    /// Iterate members in increasing attribute order.
    pub fn iter(self) -> impl Iterator<Item = NodeAttrId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as u8;
                bits &= bits - 1;
                Some(NodeAttrId(i))
            }
        })
    }
}

/// Compute β for the GR `l -w-> r` (Eqn. 4): homophily attributes
/// constrained on both sides with differing values.
pub fn beta(schema: &Schema, l: &NodeDescriptor, r: &NodeDescriptor) -> BetaSet {
    let mut set = BetaSet::empty();
    for &(a, rv) in r.pairs() {
        if !schema.node_attr(a).is_homophily() {
            continue;
        }
        if let Some(lv) = l.get(a) {
            if lv != rv {
                set.insert(a);
            }
        }
    }
    set
}

/// The RHS condition `l[β]` of the homophily effect (Eqn. 5): `l`'s values
/// restricted to the attributes of β. Returns `(attr, value)` pairs in
/// attribute order.
pub fn l_beta(l: &NodeDescriptor, beta: BetaSet) -> Vec<(NodeAttrId, AttrValue)> {
    beta.iter()
        .map(|a| (a, l.get(a).expect("β attrs occur in l by construction")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_graph::SchemaBuilder;

    fn schema() -> Schema {
        // SEX non-homophily; RACE, EDU homophily.
        SchemaBuilder::new()
            .node_attr("SEX", 2, false)
            .node_attr("RACE", 3, true)
            .node_attr("EDU", 3, true)
            .build()
            .unwrap()
    }

    fn nd(pairs: &[(u8, u16)]) -> NodeDescriptor {
        NodeDescriptor::from_pairs(pairs.iter().map(|&(a, v)| (NodeAttrId(a), v)))
    }

    #[test]
    fn beta_of_example_gr4() {
        // GR4: (SEX:F, EDU:Grad) -> (SEX:M, EDU:College); EDU homophily.
        // β = {EDU} because EDU occurs on both sides with different values;
        // SEX is non-homophily so it never enters β.
        let s = schema();
        let l = nd(&[(0, 1), (2, 3)]);
        let r = nd(&[(0, 2), (2, 2)]);
        let b = beta(&s, &l, &r);
        assert_eq!(b.len(), 1);
        assert!(b.contains(NodeAttrId(2)));
        assert_eq!(l_beta(&l, b), vec![(NodeAttrId(2), 3)]);
    }

    #[test]
    fn beta_empty_when_values_agree() {
        // Same EDU value on both sides: not in β (that is the trivial case).
        let s = schema();
        let l = nd(&[(2, 3)]);
        let r = nd(&[(2, 3)]);
        assert!(beta(&s, &l, &r).is_empty());
    }

    #[test]
    fn beta_empty_when_attr_missing_from_lhs() {
        // EDU on RHS only: Aˡ ∉ L, so not in β.
        let s = schema();
        let l = nd(&[(0, 1)]);
        let r = nd(&[(2, 2)]);
        assert!(beta(&s, &l, &r).is_empty());
    }

    #[test]
    fn beta_multiple_attrs() {
        let s = schema();
        let l = nd(&[(1, 1), (2, 1)]);
        let r = nd(&[(1, 2), (2, 3)]);
        let b = beta(&s, &l, &r);
        assert_eq!(b.len(), 2);
        assert_eq!(l_beta(&l, b), vec![(NodeAttrId(1), 1), (NodeAttrId(2), 1)]);
    }

    #[test]
    fn bitset_iteration_order() {
        let mut b = BetaSet::empty();
        b.insert(NodeAttrId(5));
        b.insert(NodeAttrId(1));
        let v: Vec<_> = b.iter().collect();
        assert_eq!(v, vec![NodeAttrId(1), NodeAttrId(5)]);
        assert!(b.contains(NodeAttrId(5)));
        assert!(!b.contains(NodeAttrId(0)));
        assert_eq!(b.len(), 2);
    }
}
