//! Parallel GRMiner — a work-stealing, depth-adaptive multi-core engine.
//!
//! The SFDF enumeration tree decomposes at the root: Algorithm 1's Main
//! loop issues one `RIGHT` task plus one task per top-level edge and LHS
//! dimension, and the subtrees are disjoint. Those root tasks seed a
//! shared [`Injector`]; each worker then runs a classic work-stealing
//! loop over per-worker deques — pop local work LIFO (depth-first, cache
//! warm), refill from the injector, and *steal half* of a sibling's
//! deque when idle ([`Stealer::steal_batch_and_pop`]). All read-only run
//! state — the compact model, the canonical position set, the RHS
//! marginal table — lives in one shared [`MiningContext`]; each worker
//! owns a reusable edge-position buffer and a warm
//! [`crate::miner::MinerScratch`] carried across its tasks.
//!
//! **Depth-adaptive splitting.** Static root tasks bound speedup by the
//! largest subtree, so workers *detach oversized recursion frames* as
//! they descend: a LEFT or EDGE partition whose subtree root is shallow
//! (`|l| + |w| ≤ split_depth`) and whose edge set is large
//! (`≥ split_min`) becomes a stealable [`SubtreeTask`] — an owned copy
//! of the partition's positions plus the descriptors — instead of being
//! descended inline. The detached subtree performs exactly the recursive
//! calls the spawner skipped (the recursion is invariant under input
//! permutation), so the collect-mode merge and every semantic counter
//! are independent of where the subtree runs. The historical *static*
//! split of the dominant LHS dimension by partition value
//! ([`RootTask::LeftValues`], [`ParallelOptions::split_dominant`]) is
//! kept for fast start-up: it seeds the pool with balanced chunks before
//! the first dynamic split can happen.
//!
//! **The shared dynamic top-k bound.** Workers run in *collect* mode
//! (generality is order-sensitive across subtrees, so Def. 5(2) and the
//! top-k rank run in a sequential post-pass), which historically meant
//! giving up GRMiner(k)'s dynamic threshold upgrade (line 28). The
//! engine restores it with a [`SharedBound`]: an `AtomicU64`-published,
//! monotonically tightening lower bound on the final k-th score, fed
//! only with candidates *guaranteed to survive* the post-pass (every
//! collected candidate when the generality filter is off; otherwise
//! exactly the candidates whose strictly more general forms are excluded
//! from collection by construction — empty edge descriptor, minimal
//! reportable LHS width). Those candidates are a subset of the static
//! run's survivor stream, and a k-th best score over a subset never
//! exceeds the k-th best over the whole, so the published bound `B`
//! satisfies `B ≤ F`, the k-th score of the static result. Combined with
//! anti-monotonicity (a pruned subtree's candidates all score below the
//! candidate that was cut, hence below `B ≤ F`) this gives the exactness
//! backbone: **no candidate scoring ≥ F is ever lost**, at any timing.
//!
//! **Exact generality under pruning.** What bound pruning *can* lose are
//! below-bound candidates that Def. 5(2) would have used as suppressors
//! — the documented nuance that makes the *sequential* GRMiner(k)
//! deviate from the static GRMiner on adversarial inputs, and which
//! would additionally be timing-dependent here. The engine closes that
//! hole instead of inheriting it. Workers record the `l ∧ w` chains in
//! which the bound cut a subtree at a threshold-passing score — the only
//! places a suppressor can have been lost (LEFT/EDGE descent is never
//! score-pruned, and losses below `min_supp`/`min_score` cannot hide a
//! valid suppressor). When the bound activated, the post-pass then
//! verifies each would-be top-k member's generality **exactly**: a
//! collected strict generalization suppresses outright (the classic
//! merge), and an uncollected one is a suppressor only if its `l ∧ w`
//! sits on a recorded pruned frontier *and* a direct graph evaluation
//! ([`query::evaluate`], memoized) passes the thresholds. Verification
//! touches only the ranked prefix of the survivors against the
//! (typically near-empty) frontier set, so the exactness repair costs a
//! vanishing post-pass supplement while every mined subtree still
//! benefits from the bound. The result: parallel dynamic mode is
//! **bit-identical to the static Definition-5 semantics** — stronger
//! than the sequential dynamic miner — and deterministic across runs,
//! thread counts, stealing, and splitting.

use crate::config::MinerConfig;
use crate::context::MiningContext;
use crate::descriptor::{EdgeDescriptor, NodeDescriptor};
use crate::error::{panic_message, MinerError};
use crate::generality::GeneralityIndex;
use crate::gr::{Gr, ScoredGr};
use crate::metrics::MetricInputs;
use crate::miner::{MineResult, MinerScratch, RootTask, Run, SplitPolicy, SubtreeTask};
use crate::query;
use crate::stats::MinerStats;
use crate::tail::Dims;
use crate::topk::{SharedBound, TopK};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use grm_graph::{failpoint, Schema, SocialGraph};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Default [`ParallelOptions::split_depth`]: subtrees rooted at most this
/// many descriptor conditions deep may be detached. Depth 2 covers the
/// skew observed in practice (a dominant LHS partition, optionally
/// refined once) while keeping the number of position copies small.
pub const DEFAULT_SPLIT_DEPTH: usize = 2;

/// Floor of the automatic [`ParallelOptions::split_min`] heuristic: below
/// this many positions a subtree is cheaper to mine than to copy and
/// schedule.
const SPLIT_MIN_FLOOR: usize = 4096;

/// Tuning knobs for [`mine_parallel_with_opts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelOptions {
    /// Worker count (0 = available parallelism, with a warning-and-one
    /// fallback when detection fails).
    pub threads: usize,
    /// Statically split the dominant root task — the LHS dimension with
    /// the largest domain — into one task per chunk of partition values,
    /// seeding the pool with balanced work before dynamic splitting can
    /// kick in. Costs one duplicated top-level counting-sort pass per
    /// extra chunk. Results are bit-identical either way.
    pub split_dominant: bool,
    /// Work stealing between workers. Off, the engine degrades to
    /// injector-only distribution (the pre-steal static queue) and never
    /// splits subtrees. Results are bit-identical either way.
    pub steal: bool,
    /// Maximum descriptor size (`|l| + |w|`) of a recursion subtree that
    /// may be detached as a stealable task; 0 disables dynamic
    /// splitting. Results are bit-identical at any value.
    pub split_depth: usize,
    /// Minimum edge-position count for a subtree to be worth detaching;
    /// 0 picks a heuristic from `|E|` and the thread count. (Tests pin
    /// this to 1 to force splitting on small fixtures.)
    pub split_min: usize,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            threads: 0,
            split_dominant: true,
            steal: true,
            split_depth: DEFAULT_SPLIT_DEPTH,
            split_min: 0,
        }
    }
}

/// Parallel top-k GR mining with `threads` workers (0 = available
/// parallelism) and default stealing/splitting.
pub fn mine_parallel(graph: &SocialGraph, config: &MinerConfig, threads: usize) -> MineResult {
    mine_parallel_with_dims(graph, config, &Dims::all(graph.schema()), threads)
}

/// Parallel mining over a restricted dimension set (default options).
pub fn mine_parallel_with_dims(
    graph: &SocialGraph,
    config: &MinerConfig,
    dims: &Dims,
    threads: usize,
) -> MineResult {
    mine_parallel_with_opts(
        graph,
        config,
        dims,
        ParallelOptions {
            threads,
            ..ParallelOptions::default()
        },
    )
}

/// Resolve the worker count: `requested` when non-zero, otherwise the
/// detected available parallelism — degrading to **one worker with a
/// warning** (never an abort) when detection fails, since a mining run
/// on a restricted platform should fall back to the sequential plan.
pub(crate) fn resolve_threads(requested: usize) -> usize {
    resolve_threads_from(
        requested,
        std::thread::available_parallelism().map(|n| n.get()),
    )
    .0
}

/// Testable core of [`resolve_threads`]; returns `(threads, warned)`.
fn resolve_threads_from(requested: usize, detected: std::io::Result<usize>) -> (usize, bool) {
    if requested != 0 {
        return (requested, false);
    }
    match detected {
        Ok(n) => (n.max(1), false),
        Err(e) => {
            eprintln!(
                "grm_core::parallel: cannot detect available parallelism ({e}); \
                 falling back to 1 worker"
            );
            (1, true)
        }
    }
}

/// The root task list, with the dominant LHS task optionally split into
/// value chunks. The dominant dimension is the one with the largest
/// domain — the best static proxy for subtree size at the root, where
/// partition cardinality (Pokec's `Region`) is what concentrates work.
///
/// Every chunk repeats the top-level `O(|E|)` counting-sort pass, so the
/// chunk count is bounded at `2 × threads` (enough slack for the pool to
/// rebalance around a skewed chunk) rather than one task per value, and
/// a single-threaded pool never splits.
fn root_tasks(dims: &Dims, schema: &Schema, split_dominant: bool, threads: usize) -> Vec<RootTask> {
    let tasks = RootTask::all(dims);
    if !split_dominant || threads <= 1 {
        return tasks;
    }
    let dominant = dims
        .l
        .iter()
        .enumerate()
        .max_by_key(|&(i, &a)| (schema.node_attr(a).bucket_count(), usize::MAX - i));
    let Some((idx, &attr)) = dominant else {
        return tasks;
    };
    let values = schema.node_attr(attr).bucket_count().saturating_sub(1);
    if values < 2 {
        // One non-null value: splitting would change nothing.
        return tasks;
    }
    let chunks = values.min(2 * threads);
    // Replace `Left(idx)` in place with its chunk tasks, preserving the
    // surrounding order (the queue drains front-to-back, so the heavy
    // chunk tasks start as early as the unsplit task would have).
    tasks
        .into_iter()
        .flat_map(|t| {
            if t == RootTask::Left(idx) {
                // Tile the non-null values 1..=values into `chunks`
                // near-equal ranges.
                (0..chunks)
                    .map(|c| RootTask::LeftValues {
                        dim: idx,
                        lo: (1 + c * values / chunks) as u16, // cast: c < chunks, so ≤ values = domain_size(), a u16
                        hi: ((c + 1) * values / chunks) as u16, // cast: ≤ values = domain_size(), a u16
                    })
                    .collect()
            } else {
                vec![t]
            }
        })
        .collect()
}

/// One unit of pool work: a static root task or a dynamically detached
/// recursion subtree.
enum PoolTask {
    Root(RootTask),
    Subtree(SubtreeTask),
}

/// Take the next task: local deque first (LIFO), then the injector, then
/// — when stealing is enabled — half of a sibling's deque. Counts
/// successful sibling steals into `stolen`.
fn next_task(
    local: &Worker<PoolTask>,
    injector: &Injector<PoolTask>,
    stealers: &[Stealer<PoolTask>],
    wid: usize,
    steal_enabled: bool,
    stolen: &mut u64,
) -> Option<PoolTask> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    loop {
        let mut retry = false;
        let injected = if steal_enabled {
            injector.steal_batch_and_pop(local)
        } else {
            // Without stealing, tasks taken from the injector can never
            // be rebalanced, so take them one at a time — the static
            // queue discipline of the pre-steal engine.
            injector.steal()
        };
        match injected {
            Steal::Success(t) => return Some(t),
            Steal::Retry => retry = true,
            Steal::Empty => {}
        }
        if steal_enabled {
            for (i, s) in stealers.iter().enumerate() {
                if i == wid {
                    continue;
                }
                match s.steal_batch_and_pop(local) {
                    Steal::Success(t) => {
                        *stolen += 1;
                        return Some(t);
                    }
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
        }
        if !retry {
            return None;
        }
    }
}

/// Parallel mining with explicit [`ParallelOptions`].
///
/// The infallible entry: a cancellable config (token, deadline) that
/// actually stops the mine — or a worker panic — is a caller contract
/// violation here; use [`try_mine_parallel_with_opts`] for those.
pub fn mine_parallel_with_opts(
    graph: &SocialGraph,
    config: &MinerConfig,
    dims: &Dims,
    opts: ParallelOptions,
) -> MineResult {
    match try_mine_parallel_traced(graph, config, dims, opts) {
        Ok((r, _)) => r,
        // lint: allow(panic-in-hot-path) — the infallible entry cannot
        // report a cancelled or panicked mine; swallowing it would
        // return a silently partial result.
        Err(e) => panic!("mine_parallel cannot report {e}; use try_mine_parallel_with_opts"),
    }
}

/// Fallible parallel mining: observes the config's cancellation token
/// and deadline, and contains worker panics. A mine stopped early
/// returns [`MinerError::Cancelled`] / [`MinerError::WorkerPanicked`]
/// carrying the counters every cleanly-exited worker drained; an
/// undisturbed run is identical to [`mine_parallel_with_opts`].
pub fn try_mine_parallel_with_opts(
    graph: &SocialGraph,
    config: &MinerConfig,
    dims: &Dims,
    opts: ParallelOptions,
) -> Result<MineResult, MinerError> {
    try_mine_parallel_traced(graph, config, dims, opts).map(|(r, _)| r)
}

/// [`mine_parallel_with_opts`] that also reports the final value of the
/// shared dynamic bound (`None` when it never filled or `dynamic_topk`
/// is off). Exists so tests can assert the bound-soundness invariant —
/// the published bound never exceeds the true k-th score — from outside
/// the crate; not part of the stable API.
#[doc(hidden)]
pub fn mine_parallel_traced(
    graph: &SocialGraph,
    config: &MinerConfig,
    dims: &Dims,
    opts: ParallelOptions,
) -> (MineResult, Option<f64>) {
    match try_mine_parallel_traced(graph, config, dims, opts) {
        Ok(out) => out,
        // lint: allow(panic-in-hot-path) — same contract as
        // `mine_parallel_with_opts`.
        Err(e) => panic!("mine_parallel cannot report {e}; use try_mine_parallel_with_opts"),
    }
}

/// The one worker-pool implementation behind every parallel entry.
fn try_mine_parallel_traced(
    graph: &SocialGraph,
    config: &MinerConfig,
    dims: &Dims,
    opts: ParallelOptions,
) -> Result<(MineResult, Option<f64>), MinerError> {
    let start = Instant::now();
    let threads = resolve_threads(opts.threads);
    // Materialized so an expired deadline or a panicking worker always
    // has a real flag to trip for its siblings, even when the caller
    // passed the inert default token.
    let token = config.cancel.materialize();
    let deadline = config
        .deadline_ms
        .map(|ms| start + Duration::from_millis(ms));
    let faults_before = failpoint::fired_total();

    let ctx = MiningContext::build(graph, config.metric.needs_r_marginal());
    let schema = graph.schema();
    let edge_count = graph.edge_count() as u64;

    let mut candidates: Vec<ScoredGr> = Vec::new();
    let mut stats = MinerStats::default();
    let mut pruned_frontiers: HashSet<(NodeDescriptor, EdgeDescriptor)> = HashSet::new();
    let shared_bound = SharedBound::new(config.k);
    // First worker panic message; its writer also trips `token` so the
    // siblings drain and exit (the Release in `CancelToken::cancel`
    // publishes this write to every observer of the flag).
    let panicked: Mutex<Option<String>> = Mutex::new(None);
    // Worker loop-top flag probes, merged into `stats.cancel_checks`
    // after the join so a cancelled mine always reports a non-zero
    // drained probe count even when no task body ran.
    let loop_probes = AtomicU64::new(0);

    if edge_count > 0 {
        let tasks = root_tasks(dims, schema, opts.split_dominant, threads);
        let task_count = tasks.len();
        let injector: Injector<PoolTask> = Injector::new();
        let pending = AtomicUsize::new(task_count);
        for t in tasks {
            injector.push(PoolTask::Root(t));
        }

        let split_policy =
            (opts.steal && threads > 1 && opts.split_depth > 0).then(|| SplitPolicy {
                max_frame: opts.split_depth,
                min_len: if opts.split_min > 0 {
                    opts.split_min
                } else {
                    (edge_count as usize / (8 * threads)).max(SPLIT_MIN_FLOOR)
                },
            });
        // Without dynamic splitting no new tasks ever appear, so workers
        // beyond the root task count could only ever spin.
        let spawned = if split_policy.is_some() {
            threads
        } else {
            threads.min(task_count)
        };

        let deques: Vec<Worker<PoolTask>> = (0..spawned).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<PoolTask>> = deques.iter().map(|d| d.stealer()).collect();
        let results: Mutex<Vec<(Vec<ScoredGr>, MinerStats)>> = Mutex::new(Vec::new());
        let frontiers: Mutex<Vec<(NodeDescriptor, EdgeDescriptor)>> = Mutex::new(Vec::new());

        crossbeam::thread::scope(|scope| {
            for (wid, local) in deques.into_iter().enumerate() {
                let stealers = &stealers;
                let injector = &injector;
                let pending = &pending;
                let results = &results;
                let frontiers = &frontiers;
                let ctx = &ctx;
                let shared = &shared_bound;
                let token = &token;
                let panicked = &panicked;
                let loop_probes = &loop_probes;
                scope.spawn(move |_| {
                    // One reusable position buffer per worker, filled
                    // from the shared context on the first root task and
                    // *not* refilled between tasks: root tasks only
                    // permute the buffer, and the recursion is invariant
                    // under input permutation. The scratch (arena,
                    // buffer pools) likewise persists across the
                    // worker's tasks.
                    let mut data: Vec<u32> = Vec::new();
                    let mut scratch = MinerScratch::default();
                    let mut out: Vec<(Vec<ScoredGr>, MinerStats)> = Vec::new();
                    let mut pruned_lw: Vec<(NodeDescriptor, EdgeDescriptor)> = Vec::new();
                    let mut stolen = 0u64;
                    // New tasks are registered with `pending` *before*
                    // they are pushed, and a task's own registration
                    // outlives everything it spawns, so `pending == 0`
                    // is a stable "all work done" signal.
                    let spawn_task = |t: SubtreeTask| {
                        // ordering: SeqCst. The registration must be
                        // visible before the task can be stolen (the
                        // push), and the termination check below reasons
                        // about one total order of registrations,
                        // completions, and zero-reads. Release here +
                        // Acquire on the zero-read is the minimum;
                        // SeqCst keeps all three operations in a single
                        // total order so the exit argument needs no
                        // per-edge pairing, and it costs nothing
                        // measurable at per-subtree-task frequency. The
                        // protocol (register-before-push, complete-
                        // before-decrement) is exhaustively checked by
                        // `grm_analyze::model::term`.
                        pending.fetch_add(1, Ordering::SeqCst);
                        local.push(PoolTask::Subtree(t));
                    };
                    // Idle backoff: a few yields for the race-y case,
                    // then short sleeps — a spinning thief on an
                    // oversubscribed (or single-core) host would
                    // otherwise steal cycles from the workers doing
                    // real work.
                    let mut idle_rounds = 0u32;
                    loop {
                        // The model's loop-top flag check (see
                        // grm_analyze::model::cancel): at most one stale
                        // task starts after the flag is set, and the
                        // drain below runs exactly once on every exit
                        // path.
                        // ordering: Release — a pure work counter the
                        // scope join already orders before the merge
                        // reads it; Release (over Relaxed) because the
                        // atomics audit treats any Relaxed RMW as a
                        // protocol smell, and this runs once per
                        // loop iteration — off any hot inner path.
                        loop_probes.fetch_add(1, Ordering::Release);
                        if token.is_cancelled() {
                            break;
                        }
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            token.cancel();
                            break;
                        }
                        let Some(task) =
                            next_task(&local, injector, stealers, wid, opts.steal, &mut stolen)
                        else {
                            // ordering: SeqCst zero-read of the
                            // termination protocol. Needs at least
                            // Acquire (pairing with the Release half of
                            // every completion decrement) so that a
                            // zero read happens-after all completions;
                            // SeqCst matches the registration and
                            // decrement sites for one total order. A
                            // zero here proves no registered task is
                            // unfinished, and register-before-push
                            // proves no unregistered task is visible.
                            if pending.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            // Without a split policy no task is ever
                            // spawned, so an empty sweep means every
                            // remaining task is owned by the worker that
                            // will run it — waiting could never yield
                            // work.
                            if split_policy.is_none() {
                                break;
                            }
                            idle_rounds += 1;
                            if idle_rounds < 16 {
                                std::thread::yield_now();
                            } else {
                                std::thread::sleep(std::time::Duration::from_micros(100));
                            }
                            continue;
                        };
                        idle_rounds = 0;
                        // Containment envelope: a panic inside the task
                        // body (the miner, or an injected "worker.body"
                        // fault) is caught, latched, and converted into
                        // a cancellation of the siblings — never a
                        // process abort, never a silently incomplete
                        // merge. AssertUnwindSafe is sound because on
                        // the Err path this worker publishes only `out`
                        // (completed tasks) and exits; the possibly
                        // inconsistent run/scratch of the panicked task
                        // are dropped.
                        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            if let Some(failpoint::FaultKind::Panic) = failpoint::hit("worker.body")
                            {
                                // lint: allow(panic-in-hot-path) — deliberate injected fault, caught by this very envelope.
                                panic!("injected panic at worker.body");
                            }
                            let task_start = Instant::now();
                            let mut run = Run::new(ctx, schema, dims, config, Some(Vec::new()))
                                .with_scratch(std::mem::take(&mut scratch))
                                .with_cancellation(token.clone(), deadline);
                            if let Some(policy) = split_policy {
                                run = run.with_spawner(policy, &spawn_task);
                            }
                            if config.dynamic_topk {
                                run = run.with_shared_bound(shared);
                            }
                            match task {
                                PoolTask::Root(t) => {
                                    if data.is_empty() {
                                        ctx.fill_positions(&mut data);
                                    }
                                    run.run_root(&mut data, t);
                                }
                                PoolTask::Subtree(st) => {
                                    let SubtreeTask {
                                        data: mut sub,
                                        l,
                                        w,
                                        kind,
                                    } = st;
                                    run.run_subtree(&mut sub, &l, &w, kind);
                                }
                            }
                            let mut s = std::mem::take(&mut run.stats);
                            s.elapsed = task_start.elapsed();
                            pruned_lw.append(&mut run.pruned_lw);
                            let (collected, warm) = run.into_collected_and_scratch();
                            scratch = warm;
                            out.push((collected, s));
                            // ordering: SeqCst completion decrement.
                            // Needs at least Release so the task's
                            // effects (and the registrations of
                            // everything it spawned — a task's own
                            // registration outlives its spawns)
                            // happen-before any zero-read; SeqCst
                            // for the same single-total-order
                            // reasoning as the registration above.
                            pending.fetch_sub(1, Ordering::SeqCst);
                        }));
                        if let Err(payload) = caught {
                            // Latch the first message *before* tripping
                            // the flag (`cancel`'s Release publishes
                            // it), then exit through the normal drain.
                            let mut first = panicked.lock();
                            if first.is_none() {
                                *first = Some(panic_message(payload));
                            }
                            drop(first);
                            token.cancel();
                            break;
                        }
                    }
                    if stolen > 0 {
                        out.push((
                            Vec::new(),
                            MinerStats {
                                tasks_stolen: stolen,
                                ..MinerStats::default()
                            },
                        ));
                    }
                    results.lock().append(&mut out);
                    if !pruned_lw.is_empty() {
                        frontiers.lock().append(&mut pruned_lw);
                    }
                });
            }
        })
        // lint: allow(panic-in-hot-path) — task panics are contained by
        // the catch_unwind envelope above, so this fires only if the
        // containment bookkeeping itself panicked; re-raising that is
        // the only correct move.
        .expect("worker panicked outside the containment envelope");

        for (mut grs, s) in results.into_inner() {
            stats.merge(&s);
            candidates.append(&mut grs);
        }
        pruned_frontiers.extend(frontiers.into_inner());
        stats.faults_injected += failpoint::fired_total().saturating_sub(faults_before);
        // ordering: Relaxed — all workers joined above; see the bump.
        stats.cancel_checks += loop_probes.load(Ordering::Relaxed);

        // Typed exits, after the drain: every worker that exited
        // cleanly has published its counters into `stats`.
        if let Some(message) = panicked.into_inner() {
            stats.elapsed = start.elapsed();
            return Err(MinerError::WorkerPanicked {
                message,
                partial_stats: Box::new(stats),
            });
        }
        if token.is_cancelled() {
            stats.elapsed = start.elapsed();
            return Err(MinerError::Cancelled {
                partial_stats: Box::new(stats),
            });
        }
    }

    // Sequential post-pass. When the shared bound never published (or
    // the generality filter is off, where pruning is trivially exact),
    // the collected set is complete and the classic merge applies:
    // generality most-general-first, then top-k. A proper generalization
    // has strictly fewer l∧w conditions, so size order suffices; the
    // remaining ordering freedom cannot change the outcome (equal-size
    // GRs never generalize one another). When the bound *did* activate
    // with generality on, below-bound suppressors may be missing from
    // the collected set, so the top-k selection verifies generality
    // exactly instead (see module docs).
    let final_bound = shared_bound.get();
    let top = if config.generality_filter && final_bound.is_some() {
        select_topk_verified(
            graph.schema(),
            &mut |g| query::evaluate(graph, g),
            config,
            candidates,
            &pruned_frontiers,
            &mut stats,
        )
    } else {
        classic_select_topk(config, candidates, &mut stats)
    };

    stats.elapsed = start.elapsed();
    Ok((
        MineResult {
            top,
            stats,
            edge_count,
        },
        final_bound,
    ))
}

/// The classic collect-mode merge: generality most-general-first (size
/// order suffices — a proper generalization has strictly fewer `l ∧ w`
/// conditions, and equal-size GRs never generalize one another), then
/// the top-k rank. Exact whenever the collected candidate set is
/// complete (no shared bound published, or the generality filter is
/// off). Shared with the sharded engine ([`crate::sharded`]).
pub(crate) fn classic_select_topk(
    config: &MinerConfig,
    mut candidates: Vec<ScoredGr>,
    stats: &mut MinerStats,
) -> Vec<ScoredGr> {
    candidates.sort_by_key(|c| c.gr.l.len() + c.gr.w.len());
    let mut index = GeneralityIndex::new();
    let mut topk = TopK::new(config.k);
    for cand in candidates {
        if config.generality_filter {
            if index.has_more_general(&cand.gr) {
                stats.rejected_generality += 1;
                continue;
            }
            index.record(&cand.gr);
        }
        topk.offer(cand);
    }
    topk.into_sorted()
}

/// Top-k selection with **exact** Def. 5(2) generality for runs whose
/// collected candidate set may be missing below-bound suppressors.
///
/// Two stages. First the classic most-general-first merge over the
/// collected candidates — its rejections are *sound* (a collected
/// suppressor passed the thresholds at collection, so the complete run
/// rejects too, and suppression is transitive), it just may fail to
/// reject. Then the survivors are walked in rank order and each
/// would-be top-k member is verified against the *complete* lattice: a
/// stage-one survivor has no collected generalization at all (any
/// collected one — recorded or transitively covered — would have
/// rejected it), and an absent generalization can only have been *lost*
/// (rather than failed) if the shared bound cut inside its `l ∧ w`
/// chain at a threshold-passing score — the recorded `pruned_frontiers`
/// — every LEFT/EDGE node itself being reached unconditionally (only
/// `min_supp` prunes those, and an anti-monotone loss below `min_supp`
/// cannot hide a threshold-passing suppressor). So only generalizations
/// whose `l ∧ w` appears in the frontier set are evaluated against the
/// graph (memoized); all other absent ones provably fail the
/// thresholds. Equivalent to the classic merge over the complete
/// candidate set: a candidate is suppressed there iff some
/// threshold-passing strict generalization exists (take a minimal one —
/// nothing suppresses it, so it is recorded first), which is precisely
/// the predicate decided here.
///
/// `evaluate` measures a GR against the *complete* edge set — the
/// in-core engine passes [`query::evaluate`] over the graph, the
/// sharded engine ([`crate::sharded`]) a closure that sums
/// [`query::counts`] over every shard — so the same exactness argument
/// covers both.
pub(crate) fn select_topk_verified(
    schema: &Schema,
    evaluate: &mut dyn FnMut(&Gr) -> query::GrMeasures,
    config: &MinerConfig,
    mut candidates: Vec<ScoredGr>,
    pruned_frontiers: &HashSet<(NodeDescriptor, EdgeDescriptor)>,
    stats: &mut MinerStats,
) -> Vec<ScoredGr> {
    // Stage 1: the classic merge, keeping every survivor.
    candidates.sort_by_key(|c| c.gr.l.len() + c.gr.w.len());
    let mut index = GeneralityIndex::new();
    let mut survivors: Vec<ScoredGr> = Vec::with_capacity(candidates.len());
    for cand in candidates {
        if index.has_more_general(&cand.gr) {
            stats.rejected_generality += 1;
            continue;
        }
        index.record(&cand.gr);
        survivors.push(cand);
    }
    // Stage 2: exactness verification of the ranked prefix. Nothing to
    // verify when no threshold-passing subtree was ever cut.
    survivors.sort_by(|a, b| a.rank_cmp(b));
    let mut memo: HashMap<Gr, bool> = HashMap::new();
    let mut out: Vec<ScoredGr> = Vec::with_capacity(config.k);
    for cand in survivors {
        if out.len() == config.k {
            break;
        }
        if !pruned_frontiers.is_empty()
            && has_lost_passing_generalization(
                schema,
                evaluate,
                config,
                &cand.gr,
                pruned_frontiers,
                &mut memo,
            )
        {
            stats.rejected_generality += 1;
            continue;
        }
        out.push(cand);
    }
    out
}

/// Does any strict generalization of `gr` (same RHS, `l' ⊆ l`, `w' ⊆ w`,
/// `(l', w') ≠ (l, w)`) that may have been *lost to bound pruning* — its
/// `l ∧ w` chain is in `pruned_frontiers` — satisfy the run's thresholds
/// and reporting gates? Caller guarantees none of `gr`'s generalizations
/// were collected (stage-one survivors), so frontier hits are evaluated
/// against the graph, memoized across candidates. A chain absent from
/// the frontier set was enumerated in full above the user threshold, so
/// an uncollected candidate there failed the thresholds and cannot
/// suppress — which is why scanning the (typically near-empty) frontier
/// set suffices and the candidate's own generalization lattice is never
/// enumerated.
fn has_lost_passing_generalization(
    schema: &Schema,
    evaluate: &mut dyn FnMut(&Gr) -> query::GrMeasures,
    config: &MinerConfig,
    gr: &Gr,
    pruned_frontiers: &HashSet<(NodeDescriptor, EdgeDescriptor)>,
    memo: &mut HashMap<Gr, bool>,
) -> bool {
    for (l2, w2) in pruned_frontiers {
        if l2.is_empty() && !config.allow_empty_lhs {
            // Empty-LHS GRs are never reported, hence never suppress.
            continue;
        }
        if !l2.is_subset_of(&gr.l) || !w2.is_subset_of(&gr.w) {
            continue;
        }
        if l2.len() == gr.l.len() && w2.len() == gr.w.len() {
            // Equal condition sets: gr itself, not a *strict*
            // generalization (equal-size subsets are equal descriptors).
            continue;
        }
        let g2 = Gr::new(l2.clone(), w2.clone(), gr.r.clone());
        let passes = *memo
            .entry(g2.clone())
            .or_insert_with(|| generalization_passes(schema, evaluate, config, &g2));
        if passes {
            return true;
        }
    }
    false
}

/// Direct threshold evaluation of a candidate suppressor that was not
/// collected (its score is below the final bound, but Def. 5(2) only
/// requires it to pass the *user* thresholds).
fn generalization_passes(
    schema: &Schema,
    evaluate: &mut dyn FnMut(&Gr) -> query::GrMeasures,
    config: &MinerConfig,
    g: &Gr,
) -> bool {
    if config.suppress_trivial && g.is_trivial(schema) {
        return false;
    }
    let m = evaluate(g);
    if m.supp < config.min_supp {
        return false;
    }
    let score = config.metric.evaluate(MetricInputs {
        supp: m.supp,
        supp_lw: m.supp_lw,
        heff: m.heff,
        supp_r: m.supp_r,
        edges: m.edges,
    });
    score >= config.min_score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gr::Gr;
    use crate::miner::GrMiner;
    use grm_graph::{GraphBuilder, SchemaBuilder};

    fn sample(seedish: u32, n: u32, m: u32) -> SocialGraph {
        let schema = SchemaBuilder::new()
            .node_attr("A", 3, true)
            .node_attr("B", 2, false)
            .node_attr("C", 4, true)
            .edge_attr("W", 2)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let mut state = seedish.wrapping_mul(0x9E3779B9) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        for _ in 0..n {
            b.add_node(&[
                (next() % 4) as u16,
                (next() % 3) as u16,
                (next() % 5) as u16,
            ])
            .unwrap();
        }
        for _ in 0..m {
            let s = next() % n;
            let mut t = next() % n;
            if t == s {
                t = (t + 1) % n;
            }
            b.add_edge(s, t, &[(next() % 3) as u16]).unwrap();
        }
        b.build().unwrap()
    }

    fn keys(r: &MineResult) -> Vec<(Gr, u64)> {
        r.top.iter().map(|s| (s.gr.clone(), s.supp)).collect()
    }

    /// Options that force the dynamic-splitting path even on tiny test
    /// graphs (`split_min: 1` — every surviving shallow partition is
    /// detached).
    fn forced_split(threads: usize) -> ParallelOptions {
        ParallelOptions {
            threads,
            split_min: 1,
            ..ParallelOptions::default()
        }
    }

    #[test]
    fn parallel_matches_sequential_static() {
        for seed in 0..4u32 {
            let g = sample(seed, 30, 200);
            for cfg in [
                MinerConfig::nhp(2, 0.4, 10),
                MinerConfig::nhp(1, 0.0, 25),
                MinerConfig::conf(2, 0.5, 10),
            ] {
                let cfg = cfg.without_dynamic_topk();
                let seq = GrMiner::new(&g, cfg.clone()).mine();
                for threads in [1, 2, 4] {
                    let par = mine_parallel(&g, &cfg, threads);
                    assert_eq!(
                        keys(&seq),
                        keys(&par),
                        "seed {seed} threads {threads} cfg {cfg:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn steal_and_split_matrix_is_bit_identical_with_invariant_counters() {
        // The tentpole guarantee at unit scale: every engine
        // configuration — stealing on/off, dynamic splitting off /
        // default / forced-everywhere — returns bit-identical `top` and
        // identical semantic counters under the static threshold.
        for seed in [3u32, 8] {
            let g = sample(seed, 40, 300);
            let cfg = MinerConfig::nhp(2, 0.3, 20).without_dynamic_topk();
            let seq = GrMiner::new(&g, cfg.clone()).mine();
            let dims = Dims::all(g.schema());
            let mut counters: Option<MinerStats> = None;
            for threads in [1usize, 2, 4, 8] {
                for steal in [false, true] {
                    for (split_depth, split_min) in [(0, 0), (DEFAULT_SPLIT_DEPTH, 1)] {
                        let par = mine_parallel_with_opts(
                            &g,
                            &cfg,
                            &dims,
                            ParallelOptions {
                                threads,
                                steal,
                                split_depth,
                                split_min,
                                ..ParallelOptions::default()
                            },
                        );
                        assert_eq!(
                            seq.top, par.top,
                            "seed {seed} threads {threads} steal {steal} depth {split_depth}"
                        );
                        let sem = par.stats.semantic();
                        match &counters {
                            None => counters = Some(sem),
                            Some(c) => assert_eq!(
                                c, &sem,
                                "seed {seed} threads {threads} steal {steal} depth {split_depth}"
                            ),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn forced_splitting_actually_detaches_subtrees() {
        let g = sample(5, 40, 300);
        let cfg = MinerConfig::nhp(1, 0.3, 20).without_dynamic_topk();
        let par = mine_parallel_with_opts(&g, &cfg, &Dims::all(g.schema()), forced_split(4));
        assert!(
            par.stats.subtree_splits > 0,
            "split_min = 1 must detach shallow subtrees"
        );
        let seq = GrMiner::new(&g, cfg).mine();
        assert_eq!(seq.top, par.top);
    }

    #[test]
    fn split_tasks_tile_the_unsplit_left_task() {
        let g = sample(11, 30, 200);
        let dims = Dims::all(g.schema());
        let split = root_tasks(&dims, g.schema(), true, 4);
        let unsplit = root_tasks(&dims, g.schema(), false, 4);
        // The dominant dimension is C (domain 4, the largest); its Left
        // task is replaced by value-chunk tasks tiling 1..=4.
        let dominant = dims
            .l
            .iter()
            .position(|&a| g.schema().node_attr(a).name() == "C")
            .expect("C is an LHS dimension");
        assert!(!split.contains(&RootTask::Left(dominant)));
        let chunks: Vec<(u16, u16)> = split
            .iter()
            .filter_map(|t| match t {
                RootTask::LeftValues { dim, lo, hi } if *dim == dominant => Some((*lo, *hi)),
                _ => None,
            })
            .collect();
        assert!(!chunks.is_empty());
        assert!(chunks.len() <= 8, "chunk count is bounded by 2 × threads");
        assert_eq!(chunks.first().unwrap().0, 1, "chunks start after NULL");
        assert_eq!(chunks.last().unwrap().1, 4, "chunks cover the domain");
        for w in chunks.windows(2) {
            assert_eq!(w[0].1 + 1, w[1].0, "chunks tile without gap or overlap");
        }
        assert_eq!(split.len(), unsplit.len() + chunks.len() - 1);
        // Every other task is preserved.
        for t in unsplit {
            if t != RootTask::Left(dominant) {
                assert!(split.contains(&t), "{t:?} lost by splitting");
            }
        }
        // A single-threaded pool never splits.
        assert_eq!(root_tasks(&dims, g.schema(), true, 1), RootTask::all(&dims));
    }

    #[test]
    fn split_and_unsplit_are_bit_identical_to_sequential() {
        for seed in 0..4u32 {
            let g = sample(seed.wrapping_add(100), 40, 300);
            let cfg = MinerConfig::nhp(2, 0.3, 20).without_dynamic_topk();
            let seq = GrMiner::new(&g, cfg.clone()).mine();
            let dims = Dims::all(g.schema());
            for threads in [1, 2, 4] {
                for split_dominant in [false, true] {
                    let par = mine_parallel_with_opts(
                        &g,
                        &cfg,
                        &dims,
                        ParallelOptions {
                            threads,
                            split_dominant,
                            ..ParallelOptions::default()
                        },
                    );
                    assert_eq!(
                        seq.top, par.top,
                        "seed {seed} threads {threads} split {split_dominant}"
                    );
                }
            }
        }
    }

    #[test]
    fn split_does_not_change_counters() {
        // Each split task counts only its own partition, so the merged
        // *semantic* counters equal the unsplit run's. (The work counters
        // — elapsed, partition passes, scratch peak, steals, splits —
        // legitimately vary with the execution strategy.)
        let g = sample(5, 40, 300);
        let cfg = MinerConfig::nhp(1, 0.4, 10).without_dynamic_topk();
        let dims = Dims::all(g.schema());
        let run = |split_dominant| {
            mine_parallel_with_opts(
                &g,
                &cfg,
                &dims,
                ParallelOptions {
                    threads: 4,
                    split_dominant,
                    ..ParallelOptions::default()
                },
            )
            .stats
        };
        let (unsplit, split) = (run(false), run(true));
        assert_eq!(unsplit.semantic(), split.semantic());
        // Splitting repeats top-level passes; it never removes any.
        assert!(split.partition_passes >= unsplit.partition_passes);
    }

    #[test]
    fn split_respects_zero_max_lhs() {
        // max_lhs = 0 forbids any LHS condition; the split tasks fix one
        // LHS value each and must mirror `left_range`'s guard, or the
        // parallel miner invents GRs the sequential miner never emits.
        let g = sample(2, 30, 200);
        let mut cfg = MinerConfig::nhp(1, 0.0, 100).without_dynamic_topk();
        cfg.max_lhs = Some(0);
        cfg.allow_empty_lhs = true;
        let seq = GrMiner::new(&g, cfg.clone()).mine();
        let par = mine_parallel_with_opts(
            &g,
            &cfg,
            &Dims::all(g.schema()),
            ParallelOptions {
                threads: 2,
                ..ParallelOptions::default()
            },
        );
        assert_eq!(seq.top, par.top);
    }

    #[test]
    fn oversubscribed_and_degenerate_pools_stay_identical() {
        // threads > task_count (64), a single-thread pool, and both
        // split settings must all return bit-identical `top` and — since
        // the value-chunk filter runs before any counter increments —
        // identical merged *semantic* counters, under the shared context
        // (the work counters vary with splitting by design).
        let g = sample(9, 40, 300);
        let cfg = MinerConfig::nhp(2, 0.3, 15).without_dynamic_topk();
        let seq = GrMiner::new(&g, cfg.clone()).mine();
        let dims = Dims::all(g.schema());
        let mut counters: Option<MinerStats> = None;
        for threads in [1usize, 2, 64] {
            for split_dominant in [false, true] {
                let par = mine_parallel_with_opts(
                    &g,
                    &cfg,
                    &dims,
                    ParallelOptions {
                        threads,
                        split_dominant,
                        ..ParallelOptions::default()
                    },
                );
                assert_eq!(seq.top, par.top, "threads {threads} split {split_dominant}");
                let sem = par.stats.semantic();
                match &counters {
                    None => counters = Some(sem),
                    Some(c) => assert_eq!(
                        c, &sem,
                        "counters diverged at threads {threads} split {split_dominant}"
                    ),
                }
            }
        }
    }

    #[test]
    fn parallel_is_deterministic_across_runs() {
        let g = sample(7, 40, 300);
        let cfg = MinerConfig::nhp(2, 0.3, 15);
        let a = mine_parallel(&g, &cfg, 4);
        let b = mine_parallel(&g, &cfg, 4);
        assert_eq!(keys(&a), keys(&b));
    }

    #[test]
    fn dynamic_topk_parallel_matches_static_results_here() {
        // With `dynamic_topk` on, workers prune against the shared
        // bound. Results must still equal the static-threshold output on
        // these fixtures (the same empirical agreement the sequential
        // dynamic miner asserts), under stealing and forced splitting.
        for seed in [1u32, 6, 13] {
            let g = sample(seed, 40, 300);
            for k in [3usize, 10] {
                let cfg = MinerConfig::nhp(2, 0.2, k);
                let seq_static = GrMiner::new(&g, cfg.clone().without_dynamic_topk()).mine();
                for threads in [2usize, 4] {
                    let (par, bound) = mine_parallel_traced(
                        &g,
                        &cfg,
                        &Dims::all(g.schema()),
                        forced_split(threads),
                    );
                    assert_eq!(
                        seq_static.top, par.top,
                        "seed {seed} k {k} threads {threads}"
                    );
                    // Soundness: a published bound never exceeds the
                    // true k-th score of the final result.
                    if let Some(b) = bound {
                        assert_eq!(par.top.len(), k, "bound implies a full top-k");
                        assert!(
                            b <= par.top.last().unwrap().score + 1e-12,
                            "bound {b} exceeds final k-th {}",
                            par.top.last().unwrap().score
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shared_bound_prunes_work_in_collect_mode() {
        // The restored dynamic bound must actually cut work: with a tiny
        // k, the dynamic parallel run examines no more GRs than the
        // static one, and strictly fewer when the bound ever tightens.
        let g = sample(4, 60, 600);
        let dims = Dims::all(g.schema());
        let run = |dynamic: bool| {
            let cfg = MinerConfig::nhp(1, 0.0, 2);
            let cfg = if dynamic {
                cfg
            } else {
                cfg.without_dynamic_topk()
            };
            mine_parallel_with_opts(
                &g,
                &cfg,
                &dims,
                ParallelOptions {
                    threads: 2,
                    ..ParallelOptions::default()
                },
            )
        };
        let (dynamic, stat) = (run(true), run(false));
        assert_eq!(dynamic.top, stat.top, "pruning must not change results");
        assert!(dynamic.stats.grs_examined <= stat.stats.grs_examined);
        if dynamic.stats.bound_tightenings > 0 {
            assert!(dynamic.stats.pruned_by_score >= stat.stats.pruned_by_score);
        }
    }

    #[test]
    fn cancelled_parallel_mine_returns_typed_error_with_drained_counters() {
        use grm_graph::CancelToken;
        let g = sample(6, 40, 300);
        let dims = Dims::all(g.schema());
        let opts = ParallelOptions {
            threads: 4,
            ..ParallelOptions::default()
        };
        let cfg = MinerConfig::nhp(1, 0.0, 50).with_cancel(CancelToken::tripping_after(5));
        let err = try_mine_parallel_with_opts(&g, &cfg, &dims, opts).unwrap_err();
        match err {
            MinerError::Cancelled { partial_stats } => {
                assert!(partial_stats.cancel_checks > 0, "{partial_stats:?}");
            }
            other => panic!("expected Cancelled, got {other}"),
        }
        // The same mine without the token completes and matches the
        // sequential oracle — cancellation left no residue.
        let cfg = MinerConfig::nhp(1, 0.0, 50).without_dynamic_topk();
        let par = try_mine_parallel_with_opts(&g, &cfg, &dims, opts).unwrap();
        let seq = GrMiner::new(&g, cfg).mine();
        assert_eq!(keys(&seq), keys(&par));
    }

    #[test]
    fn an_expired_deadline_cancels_every_worker() {
        let g = sample(2, 40, 300);
        let cfg = MinerConfig::nhp(1, 0.0, 50).with_deadline_ms(0);
        let err = try_mine_parallel_with_opts(
            &g,
            &cfg,
            &Dims::all(g.schema()),
            ParallelOptions {
                threads: 4,
                ..ParallelOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, MinerError::Cancelled { .. }), "{err}");
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let g = sample(3, 20, 100);
        let cfg = MinerConfig::nhp(1, 0.5, 5).without_dynamic_topk();
        let r = mine_parallel(&g, &cfg, 0);
        let seq = GrMiner::new(&g, cfg).mine();
        assert_eq!(keys(&r), keys(&seq));
    }

    #[test]
    fn thread_resolution_falls_back_to_one_worker_on_detection_failure() {
        // Satellite regression: `threads: 0` with an unavailable
        // `available_parallelism` must degrade to 1 worker (warning),
        // never panic or abort.
        let err = || std::io::Error::new(std::io::ErrorKind::Unsupported, "no sysinfo");
        assert_eq!(resolve_threads_from(0, Err(err())), (1, true));
        assert_eq!(resolve_threads_from(0, Ok(8)), (8, false));
        assert_eq!(resolve_threads_from(3, Err(err())), (3, false));
        assert_eq!(resolve_threads_from(3, Ok(8)), (3, false));
    }

    #[test]
    fn empty_graph() {
        let schema = SchemaBuilder::new()
            .node_attr("A", 2, true)
            .build()
            .unwrap();
        let g = GraphBuilder::new(schema).build().unwrap();
        let r = mine_parallel(&g, &MinerConfig::default(), 2);
        assert!(r.top.is_empty());
    }
}
