//! Parallel GRMiner — a multi-core extension beyond the paper.
//!
//! The SFDF enumeration tree decomposes naturally at the root: Algorithm
//! 1's Main loop issues one `RIGHT` task plus one task per top-level edge
//! and LHS dimension, and the subtrees are disjoint (every attribute
//! subset lives under exactly one root task). The parallel miner
//! distributes these root tasks (`RootTask`, crate-internal) over a crossbeam scoped
//! thread pool; each worker owns a private copy of the edge-position
//! buffer and a private [`crate::stats::MinerStats`].
//!
//! **Determinism over dynamic pruning.** The generality constraint
//! (Def. 5(2)) is order-sensitive across subtrees — a suppressor found in
//! one subtree must silence specializations in another — so workers run in
//! *collect* mode (thresholds and trivial filtering only) and a sequential
//! post-pass applies generality (most-general-first) and the top-k rank.
//! The result is bit-identical to the static-threshold `GrMiner`
//! (and therefore exact w.r.t. Definition 5); what is given up is the
//! dynamic top-k bound of GRMiner(k), whose benefit shrinks as workers
//! would race to tighten it. The `ablation` bench quantifies the trade.
//!
//! **Granularity bound.** Speedup is limited by the largest root task: on
//! workloads dominated by one high-cardinality LHS dimension (Pokec's
//! `Region`), that task's subtree holds most of the work and extra
//! threads idle once the small tasks drain (measured in EXPERIMENTS.md).
//! Splitting the dominant task by partition value would lift the bound
//! at the cost of duplicating its counting-sort pass per worker — left
//! as the natural next extension.

use crate::config::MinerConfig;
use crate::generality::GeneralityIndex;
use crate::gr::ScoredGr;
use crate::miner::{MineResult, RootTask, Run};
use crate::stats::MinerStats;
use crate::tail::Dims;
use crate::topk::TopK;
use grm_graph::{CompactModel, SocialGraph};
use parking_lot::Mutex;
use std::time::Instant;

/// Parallel top-k GR mining with `threads` workers (0 = available
/// parallelism).
pub fn mine_parallel(graph: &SocialGraph, config: &MinerConfig, threads: usize) -> MineResult {
    mine_parallel_with_dims(graph, config, &Dims::all(graph.schema()), threads)
}

/// Parallel mining over a restricted dimension set.
pub fn mine_parallel_with_dims(
    graph: &SocialGraph,
    config: &MinerConfig,
    dims: &Dims,
    threads: usize,
) -> MineResult {
    let start = Instant::now();
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };

    let model = CompactModel::build(graph);
    let schema = graph.schema();
    let edge_count = graph.edge_count() as u64;

    let mut candidates: Vec<ScoredGr> = Vec::new();
    let mut stats = MinerStats::default();

    if edge_count > 0 {
        let tasks = RootTask::all(dims);
        let queue = Mutex::new(tasks.into_iter());
        let results: Mutex<Vec<(Vec<ScoredGr>, MinerStats)>> = Mutex::new(Vec::new());

        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(1 + dims.l.len() + dims.w.len()) {
                scope.spawn(|_| {
                    let mut local: Vec<(Vec<ScoredGr>, MinerStats)> = Vec::new();
                    loop {
                        let task = { queue.lock().next() };
                        let Some(task) = task else { break };
                        let task_start = Instant::now();
                        let mut run =
                            Run::new(&model, schema, dims, config, Some(Vec::new()));
                        let mut data = model.all_positions();
                        run.run_root(&mut data, task);
                        let mut s = std::mem::take(&mut run.stats);
                        s.elapsed = task_start.elapsed();
                        local.push((run.into_collected(), s));
                    }
                    results.lock().append(&mut local);
                });
            }
        })
        .expect("worker panicked");

        for (mut grs, s) in results.into_inner() {
            stats.merge(&s);
            candidates.append(&mut grs);
        }
    }

    // Sequential post-pass: generality most-general-first, then top-k.
    // A proper generalization has strictly fewer l∧w conditions, so size
    // order suffices; the remaining ordering freedom cannot change the
    // outcome (equal-size GRs never generalize one another).
    candidates.sort_by_key(|c| c.gr.l.len() + c.gr.w.len());
    let mut index = GeneralityIndex::new();
    let mut topk = TopK::new(config.k);
    for cand in candidates {
        if config.generality_filter {
            if index.has_more_general(&cand.gr) {
                stats.rejected_generality += 1;
                continue;
            }
            index.record(&cand.gr);
        }
        topk.offer(cand);
    }

    stats.elapsed = start.elapsed();
    MineResult {
        top: topk.into_sorted(),
        stats,
        edge_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gr::Gr;
    use crate::miner::GrMiner;
    use grm_graph::{GraphBuilder, SchemaBuilder};

    fn sample(seedish: u32, n: u32, m: u32) -> SocialGraph {
        let schema = SchemaBuilder::new()
            .node_attr("A", 3, true)
            .node_attr("B", 2, false)
            .node_attr("C", 4, true)
            .edge_attr("W", 2)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let mut state = seedish.wrapping_mul(0x9E3779B9) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        for _ in 0..n {
            b.add_node(&[
                (next() % 4) as u16,
                (next() % 3) as u16,
                (next() % 5) as u16,
            ])
            .unwrap();
        }
        for _ in 0..m {
            let s = next() % n;
            let mut t = next() % n;
            if t == s {
                t = (t + 1) % n;
            }
            b.add_edge(s, t, &[(next() % 3) as u16]).unwrap();
        }
        b.build().unwrap()
    }

    fn keys(r: &MineResult) -> Vec<(Gr, u64)> {
        r.top.iter().map(|s| (s.gr.clone(), s.supp)).collect()
    }

    #[test]
    fn parallel_matches_sequential_static() {
        for seed in 0..4u32 {
            let g = sample(seed, 30, 200);
            for cfg in [
                MinerConfig::nhp(2, 0.4, 10),
                MinerConfig::nhp(1, 0.0, 25),
                MinerConfig::conf(2, 0.5, 10),
            ] {
                let cfg = cfg.without_dynamic_topk();
                let seq = GrMiner::new(&g, cfg.clone()).mine();
                for threads in [1, 2, 4] {
                    let par = mine_parallel(&g, &cfg, threads);
                    assert_eq!(
                        keys(&seq),
                        keys(&par),
                        "seed {seed} threads {threads} cfg {cfg:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_is_deterministic_across_runs() {
        let g = sample(7, 40, 300);
        let cfg = MinerConfig::nhp(2, 0.3, 15);
        let a = mine_parallel(&g, &cfg, 4);
        let b = mine_parallel(&g, &cfg, 4);
        assert_eq!(keys(&a), keys(&b));
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let g = sample(3, 20, 100);
        let cfg = MinerConfig::nhp(1, 0.5, 5).without_dynamic_topk();
        let r = mine_parallel(&g, &cfg, 0);
        let seq = GrMiner::new(&g, cfg).mine();
        assert_eq!(keys(&r), keys(&seq));
    }

    #[test]
    fn empty_graph() {
        let schema = SchemaBuilder::new().node_attr("A", 2, true).build().unwrap();
        let g = GraphBuilder::new(schema).build().unwrap();
        let r = mine_parallel(&g, &MinerConfig::default(), 2);
        assert!(r.top.is_empty());
    }
}
