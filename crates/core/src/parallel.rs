//! Parallel GRMiner — a multi-core extension beyond the paper.
//!
//! The SFDF enumeration tree decomposes naturally at the root: Algorithm
//! 1's Main loop issues one `RIGHT` task plus one task per top-level edge
//! and LHS dimension, and the subtrees are disjoint (every attribute
//! subset lives under exactly one root task). The parallel miner
//! distributes these root tasks (`RootTask`, crate-internal) over a
//! crossbeam scoped thread pool. All read-only run state — the compact
//! model, the canonical position set, the RHS marginal table — lives in
//! one shared [`MiningContext`]; each worker owns only a reusable
//! edge-position buffer (filled from the context once, then permuted in
//! place by its tasks) and a private [`crate::stats::MinerStats`].
//!
//! **Determinism over dynamic pruning.** The generality constraint
//! (Def. 5(2)) is order-sensitive across subtrees — a suppressor found in
//! one subtree must silence specializations in another — so workers run in
//! *collect* mode (thresholds and trivial filtering only) and a sequential
//! post-pass applies generality (most-general-first) and the top-k rank.
//! The result is bit-identical to the static-threshold `GrMiner`
//! (and therefore exact w.r.t. Definition 5); what is given up is the
//! dynamic top-k bound of GRMiner(k), whose benefit shrinks as workers
//! would race to tighten it. The `ablation` bench quantifies the trade.
//!
//! **Granularity.** Naïve root-task distribution is bounded by the
//! largest root task: on workloads dominated by one high-cardinality LHS
//! dimension (Pokec's `Region`), that task's subtree holds most of the
//! work and extra threads idle once the small tasks drain. The miner
//! therefore *splits the dominant root task by LHS partition value*
//! (`RootTask::LeftValues`, enabled by default via
//! [`ParallelOptions::split_dominant`]): the LHS dimension with the
//! largest domain becomes one task per chunk of non-null values — at
//! most `2 × threads` chunks — each repeating the top-level
//! counting-sort pass and descending only into its own partitions. The
//! split subtrees are exactly the unsplit task's partition-loop
//! iterations, so the collect-mode merge — and with it the bit-identical
//! guarantee above — is unchanged; what splitting costs is one
//! duplicated `O(|E|)` counting-sort pass per extra chunk, which is why
//! the chunk count is bounded and a single-threaded pool never splits.

use crate::config::MinerConfig;
use crate::context::MiningContext;
use crate::generality::GeneralityIndex;
use crate::gr::ScoredGr;
use crate::miner::{MineResult, MinerScratch, RootTask, Run};
use crate::stats::MinerStats;
use crate::tail::Dims;
use crate::topk::TopK;
use grm_graph::{Schema, SocialGraph};
use parking_lot::Mutex;
use std::time::Instant;

/// Tuning knobs for [`mine_parallel_with_opts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelOptions {
    /// Worker count (0 = available parallelism).
    pub threads: usize,
    /// Split the dominant root task — the LHS dimension with the largest
    /// domain — into one task per partition value, lifting the
    /// largest-subtree bound on speedup at the cost of one duplicated
    /// top-level counting-sort pass per extra task. Results are
    /// bit-identical either way.
    pub split_dominant: bool,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            threads: 0,
            split_dominant: true,
        }
    }
}

/// Parallel top-k GR mining with `threads` workers (0 = available
/// parallelism) and dominant-task splitting on.
pub fn mine_parallel(graph: &SocialGraph, config: &MinerConfig, threads: usize) -> MineResult {
    mine_parallel_with_dims(graph, config, &Dims::all(graph.schema()), threads)
}

/// Parallel mining over a restricted dimension set (splitting on).
pub fn mine_parallel_with_dims(
    graph: &SocialGraph,
    config: &MinerConfig,
    dims: &Dims,
    threads: usize,
) -> MineResult {
    mine_parallel_with_opts(
        graph,
        config,
        dims,
        ParallelOptions {
            threads,
            ..ParallelOptions::default()
        },
    )
}

/// The root task list, with the dominant LHS task optionally split into
/// value chunks. The dominant dimension is the one with the largest
/// domain — the best static proxy for subtree size at the root, where
/// partition cardinality (Pokec's `Region`) is what concentrates work.
///
/// Every chunk repeats the top-level `O(|E|)` counting-sort pass, so the
/// chunk count is bounded at `2 × threads` (enough slack for the pool to
/// rebalance around a skewed chunk) rather than one task per value, and
/// a single-threaded pool never splits.
fn root_tasks(dims: &Dims, schema: &Schema, split_dominant: bool, threads: usize) -> Vec<RootTask> {
    let tasks = RootTask::all(dims);
    if !split_dominant || threads <= 1 {
        return tasks;
    }
    let dominant = dims
        .l
        .iter()
        .enumerate()
        .max_by_key(|&(i, &a)| (schema.node_attr(a).bucket_count(), usize::MAX - i));
    let Some((idx, &attr)) = dominant else {
        return tasks;
    };
    let values = schema.node_attr(attr).bucket_count().saturating_sub(1);
    if values < 2 {
        // One non-null value: splitting would change nothing.
        return tasks;
    }
    let chunks = values.min(2 * threads);
    // Replace `Left(idx)` in place with its chunk tasks, preserving the
    // surrounding order (the queue drains front-to-back, so the heavy
    // chunk tasks start as early as the unsplit task would have).
    tasks
        .into_iter()
        .flat_map(|t| {
            if t == RootTask::Left(idx) {
                // Tile the non-null values 1..=values into `chunks`
                // near-equal ranges.
                (0..chunks)
                    .map(|c| RootTask::LeftValues {
                        dim: idx,
                        lo: (1 + c * values / chunks) as u16,
                        hi: ((c + 1) * values / chunks) as u16,
                    })
                    .collect()
            } else {
                vec![t]
            }
        })
        .collect()
}

/// Parallel mining with explicit [`ParallelOptions`].
pub fn mine_parallel_with_opts(
    graph: &SocialGraph,
    config: &MinerConfig,
    dims: &Dims,
    opts: ParallelOptions,
) -> MineResult {
    let start = Instant::now();
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.threads
    };

    let ctx = MiningContext::build(graph, config.metric.needs_r_marginal());
    let schema = graph.schema();
    let edge_count = graph.edge_count() as u64;

    let mut candidates: Vec<ScoredGr> = Vec::new();
    let mut stats = MinerStats::default();

    if edge_count > 0 {
        let tasks = root_tasks(dims, schema, opts.split_dominant, threads);
        let task_count = tasks.len();
        let queue = Mutex::new(tasks.into_iter());
        let results: Mutex<Vec<(Vec<ScoredGr>, MinerStats)>> = Mutex::new(Vec::new());

        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(task_count) {
                scope.spawn(|_| {
                    let mut local: Vec<(Vec<ScoredGr>, MinerStats)> = Vec::new();
                    // One reusable position buffer per worker, filled from
                    // the shared context on the first task and *not*
                    // refilled between tasks: root tasks only permute the
                    // buffer, and the recursion is invariant under input
                    // permutation (the sequential miner reuses its buffer
                    // across root tasks on the same grounds). The
                    // partition arena and buffer pools likewise persist
                    // across the worker's tasks, so only its first task
                    // pays the scratch warm-up allocations.
                    let mut data: Vec<u32> = Vec::new();
                    let mut scratch = MinerScratch::default();
                    loop {
                        let task = { queue.lock().next() };
                        let Some(task) = task else { break };
                        if data.is_empty() {
                            ctx.fill_positions(&mut data);
                        }
                        let task_start = Instant::now();
                        let mut run = Run::new(&ctx, schema, dims, config, Some(Vec::new()))
                            .with_scratch(std::mem::take(&mut scratch));
                        run.run_root(&mut data, task);
                        let mut s = std::mem::take(&mut run.stats);
                        s.elapsed = task_start.elapsed();
                        let (collected, warm) = run.into_collected_and_scratch();
                        scratch = warm;
                        local.push((collected, s));
                    }
                    results.lock().append(&mut local);
                });
            }
        })
        .expect("worker panicked");

        for (mut grs, s) in results.into_inner() {
            stats.merge(&s);
            candidates.append(&mut grs);
        }
    }

    // Sequential post-pass: generality most-general-first, then top-k.
    // A proper generalization has strictly fewer l∧w conditions, so size
    // order suffices; the remaining ordering freedom cannot change the
    // outcome (equal-size GRs never generalize one another).
    candidates.sort_by_key(|c| c.gr.l.len() + c.gr.w.len());
    let mut index = GeneralityIndex::new();
    let mut topk = TopK::new(config.k);
    for cand in candidates {
        if config.generality_filter {
            if index.has_more_general(&cand.gr) {
                stats.rejected_generality += 1;
                continue;
            }
            index.record(&cand.gr);
        }
        topk.offer(cand);
    }

    stats.elapsed = start.elapsed();
    MineResult {
        top: topk.into_sorted(),
        stats,
        edge_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gr::Gr;
    use crate::miner::GrMiner;
    use grm_graph::{GraphBuilder, SchemaBuilder};

    fn sample(seedish: u32, n: u32, m: u32) -> SocialGraph {
        let schema = SchemaBuilder::new()
            .node_attr("A", 3, true)
            .node_attr("B", 2, false)
            .node_attr("C", 4, true)
            .edge_attr("W", 2)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let mut state = seedish.wrapping_mul(0x9E3779B9) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        for _ in 0..n {
            b.add_node(&[
                (next() % 4) as u16,
                (next() % 3) as u16,
                (next() % 5) as u16,
            ])
            .unwrap();
        }
        for _ in 0..m {
            let s = next() % n;
            let mut t = next() % n;
            if t == s {
                t = (t + 1) % n;
            }
            b.add_edge(s, t, &[(next() % 3) as u16]).unwrap();
        }
        b.build().unwrap()
    }

    fn keys(r: &MineResult) -> Vec<(Gr, u64)> {
        r.top.iter().map(|s| (s.gr.clone(), s.supp)).collect()
    }

    #[test]
    fn parallel_matches_sequential_static() {
        for seed in 0..4u32 {
            let g = sample(seed, 30, 200);
            for cfg in [
                MinerConfig::nhp(2, 0.4, 10),
                MinerConfig::nhp(1, 0.0, 25),
                MinerConfig::conf(2, 0.5, 10),
            ] {
                let cfg = cfg.without_dynamic_topk();
                let seq = GrMiner::new(&g, cfg.clone()).mine();
                for threads in [1, 2, 4] {
                    let par = mine_parallel(&g, &cfg, threads);
                    assert_eq!(
                        keys(&seq),
                        keys(&par),
                        "seed {seed} threads {threads} cfg {cfg:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn split_tasks_tile_the_unsplit_left_task() {
        let g = sample(11, 30, 200);
        let dims = Dims::all(g.schema());
        let split = root_tasks(&dims, g.schema(), true, 4);
        let unsplit = root_tasks(&dims, g.schema(), false, 4);
        // The dominant dimension is C (domain 4, the largest); its Left
        // task is replaced by value-chunk tasks tiling 1..=4.
        let dominant = dims
            .l
            .iter()
            .position(|&a| g.schema().node_attr(a).name() == "C")
            .expect("C is an LHS dimension");
        assert!(!split.contains(&RootTask::Left(dominant)));
        let chunks: Vec<(u16, u16)> = split
            .iter()
            .filter_map(|t| match t {
                RootTask::LeftValues { dim, lo, hi } if *dim == dominant => Some((*lo, *hi)),
                _ => None,
            })
            .collect();
        assert!(!chunks.is_empty());
        assert!(chunks.len() <= 8, "chunk count is bounded by 2 × threads");
        assert_eq!(chunks.first().unwrap().0, 1, "chunks start after NULL");
        assert_eq!(chunks.last().unwrap().1, 4, "chunks cover the domain");
        for w in chunks.windows(2) {
            assert_eq!(w[0].1 + 1, w[1].0, "chunks tile without gap or overlap");
        }
        assert_eq!(split.len(), unsplit.len() + chunks.len() - 1);
        // Every other task is preserved.
        for t in unsplit {
            if t != RootTask::Left(dominant) {
                assert!(split.contains(&t), "{t:?} lost by splitting");
            }
        }
        // A single-threaded pool never splits.
        assert_eq!(root_tasks(&dims, g.schema(), true, 1), RootTask::all(&dims));
    }

    #[test]
    fn split_and_unsplit_are_bit_identical_to_sequential() {
        for seed in 0..4u32 {
            let g = sample(seed.wrapping_add(100), 40, 300);
            let cfg = MinerConfig::nhp(2, 0.3, 20).without_dynamic_topk();
            let seq = GrMiner::new(&g, cfg.clone()).mine();
            let dims = Dims::all(g.schema());
            for threads in [1, 2, 4] {
                for split_dominant in [false, true] {
                    let par = mine_parallel_with_opts(
                        &g,
                        &cfg,
                        &dims,
                        ParallelOptions {
                            threads,
                            split_dominant,
                        },
                    );
                    assert_eq!(
                        seq.top, par.top,
                        "seed {seed} threads {threads} split {split_dominant}"
                    );
                }
            }
        }
    }

    #[test]
    fn split_does_not_change_counters() {
        // Each split task counts only its own partition, so the merged
        // *semantic* counters equal the unsplit run's. (The work counters
        // — elapsed, partition passes, scratch peak — legitimately vary:
        // every value chunk repeats the top-level counting-sort pass.)
        let g = sample(5, 40, 300);
        let cfg = MinerConfig::nhp(1, 0.4, 10).without_dynamic_topk();
        let dims = Dims::all(g.schema());
        let run = |split_dominant| {
            mine_parallel_with_opts(
                &g,
                &cfg,
                &dims,
                ParallelOptions {
                    threads: 4,
                    split_dominant,
                },
            )
            .stats
        };
        let (unsplit, split) = (run(false), run(true));
        assert_eq!(unsplit.semantic(), split.semantic());
        // Splitting repeats top-level passes; it never removes any.
        assert!(split.partition_passes >= unsplit.partition_passes);
    }

    #[test]
    fn split_respects_zero_max_lhs() {
        // max_lhs = 0 forbids any LHS condition; the split tasks fix one
        // LHS value each and must mirror `left_range`'s guard, or the
        // parallel miner invents GRs the sequential miner never emits.
        let g = sample(2, 30, 200);
        let mut cfg = MinerConfig::nhp(1, 0.0, 100).without_dynamic_topk();
        cfg.max_lhs = Some(0);
        cfg.allow_empty_lhs = true;
        let seq = GrMiner::new(&g, cfg.clone()).mine();
        let par = mine_parallel_with_opts(
            &g,
            &cfg,
            &Dims::all(g.schema()),
            ParallelOptions {
                threads: 2,
                split_dominant: true,
            },
        );
        assert_eq!(seq.top, par.top);
    }

    #[test]
    fn oversubscribed_and_degenerate_pools_stay_identical() {
        // threads > task_count (64), a single-thread pool, and both
        // split settings must all return bit-identical `top` and — since
        // the value-chunk filter runs before any counter increments —
        // identical merged *semantic* counters, under the shared context
        // (the work counters vary with splitting by design).
        let g = sample(9, 40, 300);
        let cfg = MinerConfig::nhp(2, 0.3, 15).without_dynamic_topk();
        let seq = GrMiner::new(&g, cfg.clone()).mine();
        let dims = Dims::all(g.schema());
        let mut counters: Option<MinerStats> = None;
        for threads in [1usize, 2, 64] {
            for split_dominant in [false, true] {
                let par = mine_parallel_with_opts(
                    &g,
                    &cfg,
                    &dims,
                    ParallelOptions {
                        threads,
                        split_dominant,
                    },
                );
                assert_eq!(seq.top, par.top, "threads {threads} split {split_dominant}");
                let sem = par.stats.semantic();
                match &counters {
                    None => counters = Some(sem),
                    Some(c) => assert_eq!(
                        c, &sem,
                        "counters diverged at threads {threads} split {split_dominant}"
                    ),
                }
            }
        }
    }

    #[test]
    fn parallel_is_deterministic_across_runs() {
        let g = sample(7, 40, 300);
        let cfg = MinerConfig::nhp(2, 0.3, 15);
        let a = mine_parallel(&g, &cfg, 4);
        let b = mine_parallel(&g, &cfg, 4);
        assert_eq!(keys(&a), keys(&b));
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let g = sample(3, 20, 100);
        let cfg = MinerConfig::nhp(1, 0.5, 5).without_dynamic_topk();
        let r = mine_parallel(&g, &cfg, 0);
        let seq = GrMiner::new(&g, cfg).mine();
        assert_eq!(keys(&r), keys(&seq));
    }

    #[test]
    fn empty_graph() {
        let schema = SchemaBuilder::new()
            .node_attr("A", 2, true)
            .build()
            .unwrap();
        let g = GraphBuilder::new(schema).build().unwrap();
        let r = mine_parallel(&g, &MinerConfig::default(), 2);
        assert!(r.top.is_empty());
    }
}
