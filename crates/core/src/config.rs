//! Mining configuration (the problem parameters of Def. 5).

use crate::metrics::RankMetric;
use grm_graph::CancelToken;
use serde::{Deserialize, Serialize};

/// Parameters of a top-k GR mining run.
///
/// Defaults mirror the paper's Pokec experiments: `minSupp` relative 0.1%,
/// `minNhp` 50%, `k = 100`, nhp metric, dynamic top-k threshold (the
/// GRMiner(k) variant).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinerConfig {
    /// Absolute minimum support (`minSupp · |E|` if you start from the
    /// paper's relative thresholds — see [`MinerConfig::with_relative_supp`]).
    pub min_supp: u64,
    /// Minimum value of the ranking metric (`minNhp` for the nhp metric,
    /// `minConf` for confidence, …).
    pub min_score: f64,
    /// Number of GRs to return.
    pub k: usize,
    /// The ranking metric.
    pub metric: RankMetric,
    /// GRMiner(k) vs GRMiner (§VI-D): when `true`, `min_score` is
    /// dynamically upgraded to the k-th best score found so far, greatly
    /// tightening pruning; when `false` only the user threshold prunes.
    /// See DESIGN.md for the Definition-5 nuance of the sequential
    /// dynamic variant. The parallel engine honors this flag through a
    /// cross-worker shared bound plus an exactness-verified post-pass
    /// (`grm_core::parallel`), so its dynamic results are additionally
    /// guaranteed bit-identical to the static semantics.
    pub dynamic_topk: bool,
    /// Suppress trivial GRs from results. Defaults to `true`; Table II's
    /// confidence column is produced with `false` (the paper reports the
    /// trivial GRs that dominate the conf ranking).
    pub suppress_trivial: bool,
    /// Apply the generality constraint of Def. 5(2): drop a GR when a more
    /// general GR satisfying the thresholds exists.
    pub generality_filter: bool,
    /// Maximum number of LHS conditions (`None` = unbounded). A practical
    /// complexity knob: wide LHS patterns are hard to act on, and capping
    /// them bounds the LEFT recursion depth.
    pub max_lhs: Option<usize>,
    /// Maximum number of RHS conditions (`None` = unbounded).
    pub max_rhs: Option<usize>,
    /// Report GRs whose LHS is empty (`() -> r`). Defaults to `false`: a
    /// group relationship relates two *described* groups, and every GR in
    /// the paper's tables has a non-empty LHS — with empty LHS allowed,
    /// `() -> (Productivity:Poor)` (conf ≈ dst marginal) would suppress
    /// most of Table IIb under Def. 5(2). Enumeration still visits
    /// empty-LHS subsets (Algorithm 1 line 3); only reporting is gated.
    pub allow_empty_lhs: bool,
    /// Use the fused two-level partition passes (count a child's next
    /// dimension while scattering its parent — `grm_graph::sort`). On by
    /// default; outputs are bit-identical either way, so this knob exists
    /// for the `fused_partition_off` ablation and debugging only.
    pub fuse_partitions: bool,
    /// Route the counting loops through the vectorized batch kernels
    /// (`grm_graph::kernel` — SWAR by default, `std::simd` under the
    /// `simd` feature on nightly). On by default; outputs are
    /// bit-identical either way, so this knob exists for the
    /// `scalar_kernel_off` ablation and differential testing only.
    pub use_kernel: bool,
    /// Wall-clock deadline for the whole mine, in milliseconds measured
    /// from the engine's start (`None` = unbounded). An expired deadline
    /// trips the [`MinerConfig::cancel`] token and the mine returns
    /// `MinerError::Cancelled` with the partial counters drained so far.
    pub deadline_ms: Option<u64>,
    /// Cooperative cancellation token, observed at recursion-node and
    /// shard-load granularity. The default is inert (never cancels,
    /// costs one branch per probe). Runtime-only shared state: it
    /// serializes as a placeholder and always deserializes inert.
    #[serde(default, with = "cancel_serde")]
    pub cancel: CancelToken,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            min_supp: 1,
            min_score: 0.5,
            k: 100,
            metric: RankMetric::Nhp,
            dynamic_topk: true,
            suppress_trivial: true,
            generality_filter: true,
            max_lhs: None,
            max_rhs: None,
            allow_empty_lhs: false,
            fuse_partitions: true,
            use_kernel: true,
            deadline_ms: None,
            cancel: CancelToken::default(),
        }
    }
}

impl MinerConfig {
    /// Config ranked by nhp with the given thresholds and k (GRMiner(k)).
    pub fn nhp(min_supp: u64, min_nhp: f64, k: usize) -> Self {
        MinerConfig {
            min_supp,
            min_score: min_nhp,
            k,
            ..Self::default()
        }
    }

    /// Config ranked by plain confidence — the comparison column of
    /// Table II. Trivial GRs are *not* suppressed (the paper's point is
    /// that conf ranks them on top).
    pub fn conf(min_supp: u64, min_conf: f64, k: usize) -> Self {
        MinerConfig {
            min_supp,
            min_score: min_conf,
            k,
            metric: RankMetric::Conf,
            suppress_trivial: false,
            ..Self::default()
        }
    }

    /// Replace the absolute `min_supp` with `rel · |E|` (the paper quotes
    /// relative supports: 0.1% of 21,078,140 edges = 21,078 absolute).
    pub fn with_relative_supp(mut self, rel: f64, edge_count: u64) -> Self {
        self.min_supp = ((rel * edge_count as f64).floor() as u64).max(1);
        self
    }

    /// Disable the dynamic top-k threshold upgrade (the plain GRMiner of
    /// §VI-D, exact w.r.t. Definition 5).
    pub fn without_dynamic_topk(mut self) -> Self {
        self.dynamic_topk = false;
        self
    }

    /// Cap the number of LHS / RHS conditions of mined GRs.
    pub fn with_max_widths(mut self, max_lhs: usize, max_rhs: usize) -> Self {
        self.max_lhs = Some(max_lhs);
        self.max_rhs = Some(max_rhs);
        self
    }

    /// Permit empty-LHS GRs in results (see [`MinerConfig::allow_empty_lhs`]).
    pub fn with_empty_lhs(mut self) -> Self {
        self.allow_empty_lhs = true;
        self
    }

    /// Disable the fused two-level partition passes (the
    /// `fused_partition_off` ablation; results are bit-identical).
    pub fn without_fused_partitions(mut self) -> Self {
        self.fuse_partitions = false;
        self
    }

    /// Disable the vectorized counting kernels (the `scalar_kernel_off`
    /// ablation; results are bit-identical).
    pub fn without_kernel(mut self) -> Self {
        self.use_kernel = false;
        self
    }

    /// Switch the ranking metric, adjusting the trivial-GR policy to the
    /// metric's convention (suppressed only under nhp).
    pub fn with_metric(mut self, metric: RankMetric) -> Self {
        self.metric = metric;
        self.suppress_trivial = metric.excludes_homophily();
        self
    }

    /// Bound the mine's wall-clock time (see [`MinerConfig::deadline_ms`]).
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Observe `token` during the mine (see [`MinerConfig::cancel`]).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }
}

mod cancel_serde {
    use grm_graph::CancelToken;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    /// A [`CancelToken`] is live runtime state, not configuration: it
    /// serializes as a placeholder `false` (so configs with a token
    /// still round-trip through JSON) and always deserializes inert.
    pub fn serialize<S: Serializer>(_: &CancelToken, s: S) -> Result<S::Ok, S::Error> {
        false.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<CancelToken, D::Error> {
        let _ = bool::deserialize(d)?;
        Ok(CancelToken::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let c = MinerConfig::default();
        assert_eq!(c.metric, RankMetric::Nhp);
        assert!(c.dynamic_topk);
        assert!(c.suppress_trivial);
        assert!(c.generality_filter);
        assert!(c.fuse_partitions);
        assert!(c.use_kernel);
        assert!(!c.clone().without_fused_partitions().fuse_partitions);
        assert!(!c.without_kernel().use_kernel);
    }

    #[test]
    fn relative_supp_matches_paper_pokec() {
        // 0.1% of 21,078,140 = 21,078 (paper §VI-B).
        let c = MinerConfig::nhp(1, 0.5, 300).with_relative_supp(0.001, 21_078_140);
        assert_eq!(c.min_supp, 21_078);
    }

    #[test]
    fn relative_supp_floors_at_one() {
        let c = MinerConfig::nhp(1, 0.5, 10).with_relative_supp(0.001, 10);
        assert_eq!(c.min_supp, 1);
    }

    #[test]
    fn conf_config_keeps_trivial() {
        let c = MinerConfig::conf(10, 0.5, 5);
        assert!(!c.suppress_trivial);
        assert_eq!(c.metric, RankMetric::Conf);
    }

    #[test]
    fn cancel_and_deadline_builders_set_the_fields() {
        let t = CancelToken::new();
        let c = MinerConfig::default()
            .with_deadline_ms(250)
            .with_cancel(t.clone());
        assert_eq!(c.deadline_ms, Some(250));
        assert_eq!(c.cancel, t);
        assert!(MinerConfig::default().cancel.is_inert());
    }

    #[test]
    fn cancel_token_deserializes_inert() {
        let c = MinerConfig::default().with_cancel(CancelToken::new());
        let json = serde_json::to_string(&c).unwrap();
        let back: MinerConfig = serde_json::from_str(&json).unwrap();
        assert!(back.cancel.is_inert(), "tokens never survive serialization");
        // A config JSON without the field at all also parses (default).
        let json = json
            .replace("\"cancel\":false,", "")
            .replace(",\"cancel\":false", "");
        let back: MinerConfig = serde_json::from_str(&json).unwrap();
        assert!(back.cancel.is_inert());
    }

    #[test]
    fn metric_switch_adjusts_trivial_policy() {
        let c = MinerConfig::default().with_metric(RankMetric::Lift);
        assert!(!c.suppress_trivial);
        let c = c.with_metric(RankMetric::Nhp);
        assert!(c.suppress_trivial);
    }
}
