//! Attribute ordering for the Subset-First Depth-First enumeration
//! (§IV-C, Eqns. 7–8).
//!
//! The static order τ over all dimensions is
//!
//! ```text
//! τ:  NHʳ, Hʳ, W, NHˡ, Hˡ                    (Eqn. 7)
//! ```
//!
//! Each tree node's children are labelled by the attributes of its *tail*
//! (the prefix of τ to the left of its own label), so along any root-to-leaf
//! path attributes are added right-to-left: LHS attributes first, then edge
//! attributes, then RHS attributes (Property 1), and every subset `LWR` is
//! enumerated exactly once, subsets before supersets (Property 2).
//!
//! The **dynamic ordering** (Eqn. 8) re-sorts the RHS attributes per node:
//!
//! ```text
//! NHʳ, Hʳ₁, Hʳ₂, W, NHˡ, Hˡ                  (Eqn. 8)
//! ```
//!
//! where `Hʳ₂` holds the homophily attributes whose LHS counterpart occurs
//! in the current path and `Hʳ₁` the rest. Since tail attributes are added
//! to a path right-to-left, `Hʳ₂` values enter the RHS *before* `Hʳ₁` and
//! `NHʳ` values — exactly the condition under which Theorem 3 restores the
//! anti-monotonicity of nhp.

use grm_graph::{EdgeAttrId, NodeAttrId, Schema};

/// The dimension universe of one mining run, pre-split into the tail
/// segments of Eqn. 7. A run may restrict itself to a subset of the
/// schema's attributes (the Fig. 4d dimensionality sweep does).
#[derive(Debug, Clone)]
pub struct Dims {
    /// LHS node dimensions in tail order `[NHˡ…, Hˡ…]` (children iterate
    /// left→right; higher indices are added to paths first).
    pub l: Vec<NodeAttrId>,
    /// Edge dimensions.
    pub w: Vec<EdgeAttrId>,
    /// RHS node dimensions in *static* tail order `[NHʳ…, Hʳ…]`.
    pub r_static: Vec<NodeAttrId>,
    /// Bitmask of homophily attributes among the node dimensions.
    homophily_mask: u64,
}

impl Dims {
    /// Use every attribute in the schema.
    pub fn all(schema: &Schema) -> Self {
        let node: Vec<NodeAttrId> = schema.node_attr_ids().collect();
        let edge: Vec<EdgeAttrId> = schema.edge_attr_ids().collect();
        Self::subset(schema, &node, &edge)
    }

    /// Use only the given node/edge attributes (e.g. the first `l` node
    /// attributes for the Fig. 4d dimensionality experiment, giving `2l`
    /// node dimensions plus the edge dimensions).
    pub fn subset(schema: &Schema, node_attrs: &[NodeAttrId], edge_attrs: &[EdgeAttrId]) -> Self {
        assert!(
            schema.node_attr_count() <= crate::beta::MAX_NODE_ATTRS,
            "at most {} node attributes supported",
            crate::beta::MAX_NODE_ATTRS
        );
        let mut homophily_mask = 0u64;
        let mut nh = Vec::new();
        let mut h = Vec::new();
        for &a in node_attrs {
            if schema.node_attr(a).is_homophily() {
                homophily_mask |= 1u64 << a.0;
                h.push(a);
            } else {
                nh.push(a);
            }
        }
        let mut ordered = nh;
        ordered.extend_from_slice(&h);
        Dims {
            l: ordered.clone(),
            w: edge_attrs.to_vec(),
            r_static: ordered,
            homophily_mask,
        }
    }

    /// Total dimensionality of the GR search space: LHS + RHS node
    /// dimensions plus edge dimensions (the paper counts `2l` for `l` node
    /// attributes, edge attributes held fixed).
    pub fn dimensionality(&self) -> usize {
        self.l.len() + self.r_static.len() + self.w.len()
    }

    /// Whether node attribute `a` is homophilous in this run.
    pub fn is_homophily(&self, a: NodeAttrId) -> bool {
        self.homophily_mask & (1u64 << a.0) != 0
    }

    /// The dynamic RHS tail order of Eqn. 8 for a path whose LHS
    /// constrains the attributes in `l_mask`: `[NHʳ…, Hʳ₁…, Hʳ₂…]`.
    ///
    /// `Hʳ₂` (homophily attributes whose counterpart is constrained on the
    /// LHS) is placed *last* so that — children receiving prefix tails —
    /// its values are the first added to any RHS within the subtree.
    pub fn r_order(&self, l_mask: u64) -> Vec<NodeAttrId> {
        let mut buf = [NodeAttrId(0); crate::beta::MAX_NODE_ATTRS];
        let n = self.r_order_into(l_mask, &mut buf);
        buf[..n].to_vec()
    }

    /// [`Dims::r_order`] into a caller-provided buffer (at least
    /// `r_static.len()` long — [`crate::beta::MAX_NODE_ATTRS`] always
    /// suffices), returning the order's length. The miner uses this with a
    /// stack array so entering a RIGHT chain allocates nothing.
    pub fn r_order_into(&self, l_mask: u64, out: &mut [NodeAttrId]) -> usize {
        let mut n = 0;
        for &a in &self.r_static {
            if !self.is_homophily(a) {
                out[n] = a;
                n += 1;
            }
        }
        for &a in &self.r_static {
            if self.is_homophily(a) && l_mask & (1u64 << a.0) == 0 {
                out[n] = a;
                n += 1;
            }
        }
        for &a in &self.r_static {
            if self.is_homophily(a) && l_mask & (1u64 << a.0) != 0 {
                out[n] = a;
                n += 1;
            }
        }
        n
    }

    /// First dimension of [`Dims::r_order`] without materializing the
    /// order — the dimension a child RIGHT chain will partition first,
    /// i.e. the target of the miner's fused two-level passes.
    pub fn r_order_first(&self, l_mask: u64) -> Option<NodeAttrId> {
        let mut h1 = None;
        let mut h2 = None;
        for &a in &self.r_static {
            if !self.is_homophily(a) {
                return Some(a);
            }
            if l_mask & (1u64 << a.0) == 0 {
                h1 = h1.or(Some(a));
            } else {
                h2 = h2.or(Some(a));
            }
        }
        h1.or(h2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_graph::SchemaBuilder;

    fn schema() -> Schema {
        // A: homophily, B: homophily, C: non-homophily; one edge attr W.
        SchemaBuilder::new()
            .node_attr("A", 3, true)
            .node_attr("B", 3, true)
            .node_attr("C", 3, false)
            .edge_attr("W", 2)
            .build()
            .unwrap()
    }

    #[test]
    fn static_order_groups_non_homophily_first() {
        let d = Dims::all(&schema());
        assert_eq!(
            d.r_static,
            vec![NodeAttrId(2), NodeAttrId(0), NodeAttrId(1)],
            "NH attrs first, then H attrs"
        );
        assert_eq!(d.l, d.r_static);
        assert_eq!(d.w, vec![EdgeAttrId(0)]);
        assert_eq!(d.dimensionality(), 7);
    }

    #[test]
    fn fig3_example_dynamic_order() {
        // Paper's running example at node t8: path = {Bˡ}, so
        // Hʳ₂ = {Bʳ}, Hʳ₁ = {Aʳ}; the dynamic order is (Aʳ, Bʳ) in tail
        // terms — Bʳ last, hence added to paths first.
        let s = SchemaBuilder::new()
            .node_attr("A", 3, true)
            .node_attr("B", 3, true)
            .build()
            .unwrap();
        let d = Dims::all(&s);
        let order = d.r_order(1u64 << 1); // l constrains B
        assert_eq!(order, vec![NodeAttrId(0), NodeAttrId(1)]);
        // With nothing on the LHS, Hʳ₁ = {Aʳ, Bʳ}: static order stands.
        let order = d.r_order(0);
        assert_eq!(order, vec![NodeAttrId(0), NodeAttrId(1)]);
        // With A on the LHS, A moves to the Hʳ₂ block (end of the tail).
        let order = d.r_order(1u64 << 0);
        assert_eq!(order, vec![NodeAttrId(1), NodeAttrId(0)]);
    }

    #[test]
    fn dynamic_order_keeps_nh_first() {
        let d = Dims::all(&schema());
        // LHS constrains A and C; C is non-homophily and must stay first;
        // A (Hʳ₂) goes last; B (Hʳ₁) in between.
        let mask = (1u64 << 0) | (1u64 << 2);
        assert_eq!(
            d.r_order(mask),
            vec![NodeAttrId(2), NodeAttrId(1), NodeAttrId(0)]
        );
    }

    #[test]
    fn r_order_first_agrees_with_r_order() {
        let d = Dims::all(&schema());
        for mask in 0u64..8 {
            assert_eq!(
                d.r_order_first(mask),
                d.r_order(mask).first().copied(),
                "mask {mask:#b}"
            );
        }
        // Homophily-only dimension set: the H1/H2 fallback chain.
        let s = SchemaBuilder::new()
            .node_attr("A", 3, true)
            .node_attr("B", 3, true)
            .build()
            .unwrap();
        let d = Dims::all(&s);
        for mask in 0u64..4 {
            assert_eq!(d.r_order_first(mask), d.r_order(mask).first().copied());
        }
        // Empty dimension set.
        let empty = Dims::subset(&s, &[], &[]);
        assert_eq!(empty.r_order_first(0), None);
    }

    #[test]
    fn subset_restricts_dimensions() {
        let s = schema();
        let d = Dims::subset(&s, &[NodeAttrId(0), NodeAttrId(2)], &[]);
        assert_eq!(d.dimensionality(), 4);
        assert!(d.is_homophily(NodeAttrId(0)));
        assert!(!d.is_homophily(NodeAttrId(2)));
        assert!(d.w.is_empty());
    }
}
