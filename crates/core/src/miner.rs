//! **GRMiner** — Algorithm 1 of the paper.
//!
//! The miner enumerates attribute subsets `LWR` in Subset-First Depth-First
//! order (§IV-C) by three mutually recursive procedures — `LEFT`, `EDGE`,
//! `RIGHT` — that partition an edge set with counting sort on one dimension
//! at a time (§V). Four constraints are pushed into the recursion:
//!
//! 1. `minSupp` — support is anti-monotone in every direction
//!    (Theorem 2(1));
//! 2. `minNhp` (or the configured metric's threshold) — anti-monotone
//!    under RHS extension thanks to the dynamic tail ordering (Theorem 3);
//! 3. the **top-k dynamic bound** — GRMiner(k) upgrades the pruning
//!    threshold to the k-th best score found so far (line 28);
//! 4. **generality** — subsets are enumerated before supersets, so a GR
//!    accepted now can never be suppressed later (§V).
//!
//! ### A correctness subtlety the pseudo-code glosses over
//!
//! Theorem 3 is stated for **non-trivial** GRs: a *trivial* GR `g`
//! (all-homophily RHS contained in the LHS) has `β = ∅` and
//! `nhp(g) = conf(g)`, while extending its RHS with a differing homophily
//! value flips `β ≠ ∅` and may *increase* nhp (Remark 2's problematic
//! case, reachable because the trivial value equals the LHS value and so
//! never enters β). The miner therefore never score-prunes the subtree of
//! a trivial GR under the nhp metric. For plain confidence, laplace and
//! gain the metric is anti-monotone unconditionally and pruning applies
//! everywhere.

use crate::beta::{beta, heff_table, homophily_pairs, BetaSet, MAX_GROUPBY_ATTRS, MAX_NODE_ATTRS};
use crate::config::MinerConfig;
use crate::context::MiningContext;
use crate::descriptor::{EdgeDescriptor, NodeDescriptor};
use crate::generality::GeneralityIndex;
use crate::gr::{Gr, ScoredGr};
use crate::metrics::{MetricInputs, RankMetric};
use crate::stats::MinerStats;
use crate::tail::Dims;
use crate::topk::TopK;
use grm_graph::sort::{partition_in_place, SortScratch};
use grm_graph::{AttrValue, NodeAttrId, Schema, SocialGraph, NULL};
use std::collections::HashMap;
use std::time::Instant;

/// Outcome of a mining run: the top-k GRs (best first) and instrumentation.
#[derive(Debug, Clone)]
pub struct MineResult {
    /// The top-k GRs in rank order (Def. 5(3)), best first.
    pub top: Vec<ScoredGr>,
    /// Counters for the run.
    pub stats: MinerStats,
    /// `|E|` of the mined graph, for converting supports to relative form.
    pub edge_count: u64,
}

impl MineResult {
    /// Pretty-print the result as a ranked table.
    pub fn report(&self, schema: &Schema) -> String {
        let mut out = String::new();
        for (i, s) in self.top.iter().enumerate() {
            out.push_str(&format!("{:>3}. {}\n", i + 1, s.display(schema)));
        }
        out
    }
}

/// The GRMiner algorithm bound to a graph and configuration.
///
/// ```
/// # use grm_graph::{SchemaBuilder, GraphBuilder};
/// # use grm_core::{GrMiner, MinerConfig};
/// # let schema = SchemaBuilder::new()
/// #     .node_attr("A", 2, true).node_attr("B", 2, false).build().unwrap();
/// # let mut b = GraphBuilder::new(schema);
/// # let x = b.add_node(&[1, 1]).unwrap();
/// # let y = b.add_node(&[2, 2]).unwrap();
/// # b.add_edge(x, y, &[]).unwrap();
/// # let graph = b.build().unwrap();
/// let result = GrMiner::new(&graph, MinerConfig::nhp(1, 0.5, 10)).mine();
/// assert!(result.top.len() <= 10);
/// ```
#[derive(Debug)]
pub struct GrMiner<'g> {
    graph: &'g SocialGraph,
    dims: Dims,
    config: MinerConfig,
}

impl<'g> GrMiner<'g> {
    /// Mine over every attribute in the graph's schema.
    pub fn new(graph: &'g SocialGraph, config: MinerConfig) -> Self {
        let dims = Dims::all(graph.schema());
        Self::with_dims(graph, config, dims)
    }

    /// Mine over a restricted dimension set (Fig. 4d's sweep).
    pub fn with_dims(graph: &'g SocialGraph, config: MinerConfig, dims: Dims) -> Self {
        assert!(
            graph.schema().node_attr_count() <= MAX_NODE_ATTRS,
            "at most {MAX_NODE_ATTRS} node attributes supported"
        );
        GrMiner {
            graph,
            dims,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// Run Algorithm 1 and return the top-k GRs.
    pub fn mine(&self) -> MineResult {
        let start = Instant::now();
        let ctx = MiningContext::build(self.graph, self.config.metric.needs_r_marginal());
        let mut run = Run::new(&ctx, self.graph.schema(), &self.dims, &self.config, None);

        if run.edges_total > 0 {
            // Algorithm 1, Main: RIGHT, EDGE, LEFT over the full data with
            // the full tails. The buffer is filled once and reused across
            // tasks — each root task re-partitions the full (permuted)
            // position set, and the recursion is invariant under input
            // permutation (counting sort groups by value regardless of
            // order, and every counted quantity is order-independent).
            let mut data = Vec::new();
            ctx.fill_positions(&mut data);
            for task in RootTask::all(&self.dims) {
                run.run_root(&mut data, task);
            }
        }

        let mut stats = run.stats;
        stats.elapsed = start.elapsed();
        MineResult {
            top: run.topk.into_sorted(),
            stats,
            edge_count: self.graph.edge_count() as u64,
        }
    }
}

/// One top-level unit of enumeration work: the iterations of Algorithm 1's
/// Main loop (lines 3–5), split so the parallel miner can distribute them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RootTask {
    /// `RIGHT(RArray, tail(nil))` — all GRs with empty LHS and empty edge
    /// descriptor.
    Right,
    /// One dimension of `EDGE(EArray, tail(nil))`: subsets whose first
    /// constrained dimension is `dims.w[i]`.
    Edge(usize),
    /// One dimension of `LEFT(LArray, tail(nil))`: subsets whose first
    /// constrained dimension is `dims.l[i]`.
    Left(usize),
    /// One chunk of partition values of `Left(i)`: subsets whose first
    /// constrained dimension is `dims.l[i]` fixed to a value in
    /// `lo..=hi`. The parallel miner splits the dominant LHS dimension
    /// into these so no single subtree serializes the pool; the chunks
    /// tile the non-null value range, so their union visits exactly the
    /// nodes `Left(i)` visits. Bounds are inclusive because the domain
    /// may extend to `AttrValue::MAX`, where an exclusive end would
    /// overflow.
    LeftValues {
        /// Index into `dims.l`.
        dim: usize,
        /// First partition value of the chunk (inclusive, never `NULL`).
        lo: AttrValue,
        /// Last partition value of the chunk (inclusive).
        hi: AttrValue,
    },
}

impl RootTask {
    /// Every root task, in the sequential Main order.
    pub(crate) fn all(dims: &Dims) -> Vec<RootTask> {
        let mut v = vec![RootTask::Right];
        v.extend((0..dims.w.len()).map(RootTask::Edge));
        v.extend((0..dims.l.len()).map(RootTask::Left));
        v
    }
}

/// Mutable state of one mining run (one root task in parallel mode).
/// Everything immutable — the compact model, the canonical position set,
/// the RHS marginal table — lives in the shared [`MiningContext`].
pub(crate) struct Run<'a, 'g> {
    ctx: &'a MiningContext<'g>,
    schema: &'a Schema,
    dims: &'a Dims,
    cfg: &'a MinerConfig,
    scratch: SortScratch,
    pub(crate) topk: TopK,
    generality: GeneralityIndex,
    pub(crate) stats: MinerStats,
    pub(crate) edges_total: u64,
    /// When set, threshold-passing candidates are appended here instead of
    /// going through the generality index and top-k heap, and the dynamic
    /// top-k bound is disabled. Used by the parallel miner's collect
    /// phase, whose generality/top-k pass runs after the merge.
    collector: Option<Vec<ScoredGr>>,
}

impl<'a, 'g> Run<'a, 'g> {
    pub(crate) fn new(
        ctx: &'a MiningContext<'g>,
        schema: &'a Schema,
        dims: &'a Dims,
        cfg: &'a MinerConfig,
        collector: Option<Vec<ScoredGr>>,
    ) -> Self {
        Run {
            ctx,
            schema,
            dims,
            cfg,
            scratch: SortScratch::new(),
            topk: TopK::new(cfg.k),
            generality: GeneralityIndex::new(),
            stats: MinerStats::default(),
            edges_total: ctx.edges_total(),
            collector,
        }
    }

    /// Recover the collected candidates (collect-mode runs).
    pub(crate) fn into_collected(self) -> Vec<ScoredGr> {
        self.collector.unwrap_or_default()
    }

    /// Execute one top-level task over `data` (the full position set).
    pub(crate) fn run_root(&mut self, data: &mut [u32], task: RootTask) {
        let l0 = NodeDescriptor::empty();
        let w0 = EdgeDescriptor::empty();
        match task {
            RootTask::Right => self.right_root(data, &l0, &w0),
            RootTask::Edge(i) => self.edge_range(data, i..i + 1, &l0, &w0),
            RootTask::Left(i) => self.left_range(data, i..i + 1, &l0),
            RootTask::LeftValues { dim, lo, hi } => self.left_values_root(data, dim, lo, hi),
        }
    }

    /// Execute the partitions of top-level LHS dimension `i` whose value
    /// falls in `lo..=hi`: the body of `left_range`'s partition loop
    /// restricted to one value chunk. Each chunk task repeats the
    /// counting-sort pass over the full position set (the duplication
    /// splitting trades for balance — which is why the parallel miner
    /// bounds the chunk count), then recurses only into its own
    /// partitions, so counters and candidates sum across chunks to
    /// exactly the unsplit task's.
    fn left_values_root(&mut self, data: &mut [u32], i: usize, lo: AttrValue, hi: AttrValue) {
        debug_assert_ne!(lo, NULL, "null partitions are never enumerated");
        // Mirror `left_range`'s max_lhs guard: constraining this chunk's
        // dimension would already exceed the cap when it is zero.
        if self.cfg.max_lhs.is_some_and(|m| m == 0) {
            return;
        }
        self.left_partitions(data, i, &NodeDescriptor::empty(), Some((lo, hi)));
    }
}

/// Snapshot of the `l ∧ w` edge set taken when a RIGHT chain begins, with
/// the β group-by table of homophily-effect supports (§IV-D). The
/// snapshot is needed because the recursion below keeps reordering and
/// narrowing the live slice while `supp(l -w-> l[β])` must be counted
/// over the *whole* `l ∧ w` set.
///
/// **Construction invariant:** `edges` is `Some` exactly when `pairs` —
/// the homophily conditions of the LHS — is non-empty. Eqn. 4 makes every
/// reachable β a subset of those attributes, so β ≠ ∅ implies a snapshot
/// exists; [`Run::heff`] degrades to an empty support (debug-asserting)
/// rather than panicking if that invariant is ever violated.
struct LwContext {
    /// The LHS homophily conditions `H_l` — group-by dimensions for heff.
    pairs: Vec<(NodeAttrId, AttrValue)>,
    edges: Option<Vec<u32>>,
    supp_lw: u64,
    /// All β supports for this `l ∧ w` node, filled by one
    /// counting-partition pass on the first non-empty β (`None` until
    /// then; index by [`BetaSet::local_mask`] over `pairs`).
    table: Option<Vec<u64>>,
    /// Per-β memo for the wide-LHS fallback path
    /// (`pairs.len() > MAX_GROUPBY_ATTRS`).
    memo: HashMap<u64, u64>,
}

impl LwContext {
    fn new(data: &[u32], pairs: Vec<(NodeAttrId, AttrValue)>) -> Self {
        LwContext {
            edges: (!pairs.is_empty()).then(|| data.to_vec()),
            supp_lw: data.len() as u64,
            table: None,
            memo: HashMap::new(),
            pairs,
        }
    }
}

impl<'a, 'g> Run<'a, 'g> {
    /// `LEFT(data, Tail)`: partition on each LHS dimension in the tail;
    /// for each surviving partition recurse into RIGHT, EDGE and LEFT with
    /// the prefix tail (Algorithm 1 lines 7–14).
    fn left(&mut self, data: &mut [u32], l_tail_len: usize, l: &NodeDescriptor) {
        self.left_range(data, 0..l_tail_len, l);
    }

    fn left_range(&mut self, data: &mut [u32], range: std::ops::Range<usize>, l: &NodeDescriptor) {
        if self.cfg.max_lhs.is_some_and(|m| l.len() >= m) {
            return;
        }
        for i in range {
            self.left_partitions(data, i, l, None);
        }
    }

    /// The LEFT partition loop over one dimension `dims.l[i]`, shared by
    /// the sequential tail walk and the parallel miner's value-chunk
    /// tasks: partition `data`, then recurse into every surviving
    /// partition whose value lies in `values` (inclusive; `None` = all
    /// non-null).
    fn left_partitions(
        &mut self,
        data: &mut [u32],
        i: usize,
        l: &NodeDescriptor,
        values: Option<(AttrValue, AttrValue)>,
    ) {
        let model = self.ctx.model();
        let d = self.dims.l[i];
        let buckets = self.schema.node_attr(d).bucket_count();
        let parts = partition_in_place(data, buckets, &mut self.scratch, |p| model.l_key(p, d));
        for part in parts {
            if part.value == NULL {
                continue;
            }
            if values.is_some_and(|(lo, hi)| part.value < lo || part.value > hi) {
                continue;
            }
            self.stats.partitions_examined += 1;
            if (part.len() as u64) < self.cfg.min_supp {
                self.stats.pruned_by_supp += 1;
                continue;
            }
            let l2 = l.with(d, part.value);
            let sub = &mut data[part.range.clone()];
            self.right_root(sub, &l2, &EdgeDescriptor::empty());
            self.edge(sub, self.dims.w.len(), &l2, &EdgeDescriptor::empty());
            self.left(sub, i, &l2);
        }
    }

    /// `EDGE(data, Tail)`: partition on each edge dimension in the tail;
    /// recurse into RIGHT and EDGE (lines 15–21).
    fn edge(
        &mut self,
        data: &mut [u32],
        w_tail_len: usize,
        l: &NodeDescriptor,
        w: &EdgeDescriptor,
    ) {
        self.edge_range(data, 0..w_tail_len, l, w);
    }

    fn edge_range(
        &mut self,
        data: &mut [u32],
        range: std::ops::Range<usize>,
        l: &NodeDescriptor,
        w: &EdgeDescriptor,
    ) {
        let model = self.ctx.model();
        for i in range {
            let d = self.dims.w[i];
            let buckets = self.schema.edge_attr(d).bucket_count();
            let parts = partition_in_place(data, buckets, &mut self.scratch, |p| model.w_key(p, d));
            for part in parts {
                if part.value == NULL {
                    continue;
                }
                self.stats.partitions_examined += 1;
                if (part.len() as u64) < self.cfg.min_supp {
                    self.stats.pruned_by_supp += 1;
                    continue;
                }
                let w2 = w.with(d, part.value);
                let sub = &mut data[part.range.clone()];
                self.right_root(sub, l, &w2);
                self.edge(sub, i, l, &w2);
            }
        }
    }

    /// Entry into a RIGHT chain for a fixed `l ∧ w`: snapshot the edge set
    /// for homophily-effect counting, fix the dynamic RHS order (Eqn. 8)
    /// for the whole subtree, and recurse.
    fn right_root(&mut self, data: &mut [u32], l: &NodeDescriptor, w: &EdgeDescriptor) {
        let l_mask = l.attrs().fold(0u64, |m, a| m | (1u64 << a.0));
        let pairs = homophily_pairs(l, |a| self.dims.is_homophily(a));
        let mut ctx = LwContext::new(data, pairs);
        let r_order = self.dims.r_order(l_mask);
        let len = r_order.len();
        self.right(
            &mut ctx,
            data,
            &r_order,
            len,
            l,
            w,
            &NodeDescriptor::empty(),
        );
    }

    /// `RIGHT(data, Tail)` (lines 22–29): partition on each RHS dimension,
    /// score each partition as a GR, apply all four constraints, recurse.
    #[allow(clippy::too_many_arguments)]
    fn right(
        &mut self,
        ctx: &mut LwContext,
        data: &mut [u32],
        r_order: &[NodeAttrId],
        r_tail_len: usize,
        l: &NodeDescriptor,
        w: &EdgeDescriptor,
        r: &NodeDescriptor,
    ) {
        if self.cfg.max_rhs.is_some_and(|m| r.len() >= m) {
            return;
        }
        let model = self.ctx.model();
        for i in 0..r_tail_len {
            let d = r_order[i];
            let buckets = self.schema.node_attr(d).bucket_count();
            let parts = partition_in_place(data, buckets, &mut self.scratch, |p| model.r_key(p, d));
            for part in parts {
                if part.value == NULL {
                    continue;
                }
                self.stats.partitions_examined += 1;
                self.stats.grs_examined += 1;
                let supp = part.len() as u64;
                if supp < self.cfg.min_supp {
                    self.stats.pruned_by_supp += 1;
                    continue;
                }
                let r2 = r.with(d, part.value);

                // Score the GR l -w-> r2.
                let b = beta(self.schema, l, &r2);
                let heff = if b.is_empty() { 0 } else { self.heff(ctx, b) };
                let supp_r = if self.cfg.metric.needs_r_marginal() {
                    self.ctx.r_marginal(&r2)
                } else {
                    0
                };
                let score = self.cfg.metric.evaluate(MetricInputs {
                    supp,
                    supp_lw: ctx.supp_lw,
                    heff,
                    supp_r,
                    edges: self.edges_total,
                });

                let gr = Gr::new(l.clone(), w.clone(), r2.clone());
                let trivial = gr.is_trivial(self.schema);

                // Record if it satisfies Def. 5 conditions (1) and (2)
                // and describes a real LHS group (see
                // `MinerConfig::allow_empty_lhs`).
                if score >= self.cfg.min_score && (self.cfg.allow_empty_lhs || !l.is_empty()) {
                    if trivial && self.cfg.suppress_trivial {
                        self.stats.rejected_trivial += 1;
                    } else if self.collector.is_some() {
                        // Collect phase: generality and top-k run after
                        // the cross-task merge.
                        self.stats.accepted += 1;
                        self.collector
                            .as_mut()
                            .expect("just checked")
                            .push(ScoredGr {
                                gr,
                                supp,
                                supp_lw: ctx.supp_lw,
                                heff,
                                score,
                            });
                    } else if self.cfg.generality_filter && self.generality.has_more_general(&gr) {
                        self.stats.rejected_generality += 1;
                    } else {
                        if self.cfg.generality_filter {
                            self.generality.record(&gr);
                        }
                        self.stats.accepted += 1;
                        self.topk.offer(ScoredGr {
                            gr,
                            supp,
                            supp_lw: ctx.supp_lw,
                            heff,
                            score,
                        });
                    }
                }

                // Subtree pruning by score. Valid only for anti-monotone
                // metrics, and — for nhp — only below non-trivial GRs
                // (Theorem 3's precondition; see module docs).
                let score_prunable = self.cfg.metric.anti_monotone()
                    && !(trivial && matches!(self.cfg.metric, RankMetric::Nhp));
                if score_prunable {
                    // Both cuts are strict `<`: a candidate equal to the
                    // user threshold satisfies Def. 5(1), and one equal to
                    // the k-th best may still win the supp/alphabetical
                    // tie-break, so neither may be cut at equality.
                    let mut bound = self.cfg.min_score;
                    if self.cfg.dynamic_topk && self.collector.is_none() {
                        if let Some(dyn_bound) = self.topk.dynamic_bound() {
                            bound = bound.max(dyn_bound);
                        }
                    }
                    if score < bound {
                        self.stats.pruned_by_score += 1;
                        continue;
                    }
                }

                let sub = &mut data[part.range.clone()];
                self.right(ctx, sub, r_order, i, l, w, &r2);
            }
        }
    }

    /// `supp(l -w-> l[β])` over the snapshot (§IV-D: the needed supports
    /// are computable at or before the current node). The first non-empty
    /// β at this `l ∧ w` node triggers one counting-partition group-by
    /// pass that fills the supports of *every* β ⊆ `H_l` at once
    /// ([`crate::beta::heff_table`]); later lookups are a table index.
    fn heff(&mut self, ctx: &mut LwContext, b: BetaSet) -> u64 {
        debug_assert!(!b.is_empty(), "empty β is scored as heff = 0 upstream");
        if ctx.pairs.len() > MAX_GROUPBY_ATTRS {
            return self.heff_scan(ctx, b);
        }
        if ctx.table.is_none() {
            let Some(edges) = ctx.edges.as_mut() else {
                // LwContext::new snapshots exactly when the LHS constrains
                // a homophily attribute, and Eqn. 4 keeps every β inside
                // that set — so this is unreachable from the enumeration.
                // Degrade to an empty homophily effect over panicking.
                debug_assert!(false, "non-empty β without an l∧w snapshot");
                return 0;
            };
            self.stats.heff_scans += 1;
            let model = self.ctx.model();
            ctx.table = Some(heff_table(edges, &ctx.pairs, &mut self.scratch, |p, a| {
                model.r_key(p, a)
            }));
        }
        let table = ctx.table.as_ref().expect("filled above");
        match b.local_mask(&ctx.pairs) {
            Some(mask) => table[mask],
            None => {
                debug_assert!(false, "β outside the LHS homophily set");
                0
            }
        }
    }

    /// Per-β snapshot scan, memoized per β — the fallback for LHSes wider
    /// than [`MAX_GROUPBY_ATTRS`] homophily attributes, where the group-by
    /// table (`2^|H_l|` counters) would dwarf the snapshot.
    fn heff_scan(&mut self, ctx: &mut LwContext, b: BetaSet) -> u64 {
        if let Some(&v) = ctx.memo.get(&b.0) {
            return v;
        }
        let Some(edges) = ctx.edges.as_ref() else {
            debug_assert!(false, "non-empty β without an l∧w snapshot");
            return 0;
        };
        self.stats.heff_scans += 1;
        let needed: Vec<(NodeAttrId, AttrValue)> = ctx
            .pairs
            .iter()
            .copied()
            .filter(|&(a, _)| b.contains(a))
            .collect();
        debug_assert_eq!(needed.len(), b.len(), "β outside the LHS homophily set");
        let model = self.ctx.model();
        let count = edges
            .iter()
            .filter(|&&p| needed.iter().all(|&(a, v)| model.r_key(p, a) == v))
            .count() as u64;
        ctx.memo.insert(b.0, count);
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_graph::{GraphBuilder, SchemaBuilder};

    /// Small two-attribute graph: A (homophily, 2 values), B (non-homophily,
    /// 2 values). Edges engineered so that a beyond-homophily preference
    /// exists from A:1 to A:2 once homophilous A:1->A:1 edges are excluded.
    fn toy() -> SocialGraph {
        let schema = SchemaBuilder::new()
            .node_attr("A", 2, true)
            .node_attr("B", 2, false)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        // Nodes: 0..4 with (A,B) rows.
        let rows = [[1, 1], [1, 2], [2, 1], [2, 2], [1, 1], [2, 1]];
        let ids: Vec<_> = rows.iter().map(|r| b.add_node(r).unwrap()).collect();
        // 6 edges from A:1 nodes: 4 homophilous (to A:1), 2 to A:2 nodes
        // that both have B:1.
        b.add_edge(ids[0], ids[1], &[]).unwrap();
        b.add_edge(ids[0], ids[4], &[]).unwrap();
        b.add_edge(ids[1], ids[0], &[]).unwrap();
        b.add_edge(ids[1], ids[4], &[]).unwrap();
        b.add_edge(ids[0], ids[2], &[]).unwrap();
        b.add_edge(ids[1], ids[5], &[]).unwrap();
        // 2 edges from A:2 nodes.
        b.add_edge(ids[2], ids[3], &[]).unwrap();
        b.add_edge(ids[3], ids[2], &[]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn finds_beyond_homophily_preference() {
        let g = toy();
        let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.9, 10)).mine();
        // (A:1) -> (A:2): supp 2, supp_lw 6, heff 4 => nhp = 2/(6-4) = 1.0.
        let s = g.schema();
        let found = result
            .top
            .iter()
            .find(|sgr| sgr.gr.display(s) == "(A:1) -> (A:2)")
            .expect("the beyond-homophily GR must be found");
        assert_eq!(found.supp, 2);
        assert_eq!(found.supp_lw, 6);
        assert_eq!(found.heff, 4);
        assert!((found.score - 1.0).abs() < 1e-12);
        assert!((found.conf() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_grs_suppressed_under_nhp() {
        let g = toy();
        let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.0, 100)).mine();
        let s = g.schema();
        for sgr in &result.top {
            assert!(
                !sgr.gr.is_trivial(s),
                "trivial GR in nhp results: {}",
                sgr.gr.display(s)
            );
        }
        assert!(result.stats.rejected_trivial > 0);
    }

    #[test]
    fn conf_mode_keeps_trivial_grs() {
        let g = toy();
        // minConf 0.6: the general ∅ -> (A:1) (conf 0.5) fails the
        // threshold and cannot suppress the trivial (A:1) -> (A:1)
        // (conf 4/6) — the Table II situation where the conf ranking is
        // dominated by homophily restatements.
        let result = GrMiner::new(&g, MinerConfig::conf(1, 0.6, 100)).mine();
        let s = g.schema();
        assert!(
            result.top.iter().any(|sgr| sgr.gr.is_trivial(s)),
            "conf ranking should surface trivial homophily GRs (Table II)"
        );
    }

    #[test]
    fn respects_min_supp() {
        let g = toy();
        let result = GrMiner::new(&g, MinerConfig::nhp(3, 0.0, 100)).mine();
        for sgr in &result.top {
            assert!(sgr.supp >= 3);
        }
        assert!(result.stats.pruned_by_supp > 0);
    }

    #[test]
    fn respects_k() {
        let g = toy();
        let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.0, 2)).mine();
        assert!(result.top.len() <= 2);
        // Rank order: best first.
        if result.top.len() == 2 {
            assert_ne!(
                result.top[0].rank_cmp(&result.top[1]),
                std::cmp::Ordering::Greater
            );
        }
    }

    #[test]
    fn dynamic_and_static_topk_agree_here() {
        let g = toy();
        let a = GrMiner::new(&g, MinerConfig::nhp(1, 0.2, 5)).mine();
        let b = GrMiner::new(&g, MinerConfig::nhp(1, 0.2, 5).without_dynamic_topk()).mine();
        let da: Vec<_> = a.top.iter().map(|s| s.gr.clone()).collect();
        let db: Vec<_> = b.top.iter().map(|s| s.gr.clone()).collect();
        assert_eq!(da, db);
        // The dynamic variant must not do more work.
        assert!(a.stats.grs_examined <= b.stats.grs_examined);
    }

    #[test]
    fn empty_graph_yields_empty_result() {
        let schema = SchemaBuilder::new()
            .node_attr("A", 2, true)
            .build()
            .unwrap();
        let g = GraphBuilder::new(schema).build().unwrap();
        let result = GrMiner::new(&g, MinerConfig::default()).mine();
        assert!(result.top.is_empty());
        assert_eq!(result.edge_count, 0);
    }

    #[test]
    fn null_values_never_appear_in_descriptors() {
        let schema = SchemaBuilder::new()
            .node_attr("A", 2, true)
            .node_attr("B", 2, false)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let x = b.add_node(&[1, 0]).unwrap(); // B null
        let y = b.add_node(&[0, 2]).unwrap(); // A null
        let z = b.add_node(&[2, 1]).unwrap();
        b.add_edge(x, y, &[]).unwrap();
        b.add_edge(y, z, &[]).unwrap();
        b.add_edge(x, z, &[]).unwrap();
        let g = b.build().unwrap();
        let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.0, 100)).mine();
        for sgr in &result.top {
            for &(_, v) in sgr.gr.l.pairs().iter().chain(sgr.gr.r.pairs()) {
                assert_ne!(v, NULL);
            }
        }
        assert!(!result.top.is_empty());
    }

    #[test]
    fn generality_suppression_drops_specializations() {
        let g = toy();
        let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.0, 1000)).mine();
        // No result may be a strict specialization of another result.
        for (i, a) in result.top.iter().enumerate() {
            for (j, b) in result.top.iter().enumerate() {
                if i != j {
                    assert!(
                        !a.gr.is_more_general_than(&b.gr),
                        "{:?} generalizes {:?}",
                        a.gr,
                        b.gr
                    );
                }
            }
        }
    }

    #[test]
    fn multi_homophily_lhs_takes_group_by_path_and_matches_reference() {
        // Two homophily attributes (A, C) and one non-homophily (B):
        // LHSes constraining both A and C reach RHS partitions with
        // β = {A}, {C} and {A, C}, all of which the group-by pass must
        // fill from a single snapshot scan. Differential check against
        // the brute-force oracle pins every heff value.
        let schema = SchemaBuilder::new()
            .node_attr("A", 3, true)
            .node_attr("B", 2, false)
            .node_attr("C", 3, true)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let mut state = 0xC0FFEEu32 | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        for _ in 0..20 {
            b.add_node(&[
                (next() % 4) as u16,
                (next() % 3) as u16,
                (next() % 4) as u16,
            ])
            .unwrap();
        }
        for _ in 0..120 {
            let s = next() % 20;
            let mut t = next() % 20;
            if t == s {
                t = (t + 1) % 20;
            }
            b.add_edge(s, t, &[]).unwrap();
        }
        let g = b.build().unwrap();
        // Generality off so specialized (two-condition) LHSes stay in the
        // result and their heff values are pinned by the oracle.
        let cfg = MinerConfig {
            generality_filter: false,
            ..MinerConfig::nhp(1, 0.0, 100_000).without_dynamic_topk()
        };
        let fast = GrMiner::new(&g, cfg.clone()).mine();
        let oracle = crate::reference::mine_reference(&g, &cfg);
        let key = |v: &[ScoredGr]| {
            v.iter()
                .map(|s| (s.gr.clone(), s.supp, s.supp_lw, s.heff))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&fast.top), key(&oracle));
        assert!(
            fast.top.iter().any(|s| s.gr.l.len() >= 2 && s.heff > 0),
            "a multi-homophily LHS with a non-trivial homophily effect must be reachable"
        );
        assert!(fast.stats.heff_scans > 0);
        // The group-by fills all β supports of an l∧w node in one scan,
        // so there can be at most one scan per examined GR's l∧w node —
        // far fewer than the per-β scans the seed performed.
        assert!(fast.stats.heff_scans <= fast.stats.grs_examined);
    }

    #[test]
    fn report_formats_rows() {
        let g = toy();
        let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.5, 3)).mine();
        let report = result.report(g.schema());
        assert!(report.contains("1. "));
        assert!(report.contains("score="));
    }
}
