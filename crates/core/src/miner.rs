//! **GRMiner** — Algorithm 1 of the paper.
//!
//! The miner enumerates attribute subsets `LWR` in Subset-First Depth-First
//! order (§IV-C) by three mutually recursive procedures — `LEFT`, `EDGE`,
//! `RIGHT` — that partition an edge set with counting sort on one dimension
//! at a time (§V). Four constraints are pushed into the recursion:
//!
//! 1. `minSupp` — support is anti-monotone in every direction
//!    (Theorem 2(1));
//! 2. `minNhp` (or the configured metric's threshold) — anti-monotone
//!    under RHS extension thanks to the dynamic tail ordering (Theorem 3);
//! 3. the **top-k dynamic bound** — GRMiner(k) upgrades the pruning
//!    threshold to the k-th best score found so far (line 28);
//! 4. **generality** — subsets are enumerated before supersets, so a GR
//!    accepted now can never be suppressed later (§V).
//!
//! ### A correctness subtlety the pseudo-code glosses over
//!
//! Theorem 3 is stated for **non-trivial** GRs: a *trivial* GR `g`
//! (all-homophily RHS contained in the LHS) has `β = ∅` and
//! `nhp(g) = conf(g)`, while extending its RHS with a differing homophily
//! value flips `β ≠ ∅` and may *increase* nhp (Remark 2's problematic
//! case, reachable because the trivial value equals the LHS value and so
//! never enters β). The miner therefore never score-prunes the subtree of
//! a trivial GR under the nhp metric. For plain confidence, laplace and
//! gain the metric is anti-monotone unconditionally and pruning applies
//! everywhere.

use crate::beta::{beta, heff_table_into, BetaSet, MAX_GROUPBY_ATTRS, MAX_NODE_ATTRS};
use crate::config::MinerConfig;
use crate::context::MiningContext;
use crate::descriptor::{EdgeDescriptor, NodeDescriptor};
use crate::error::MinerError;
use crate::generality::GeneralityIndex;
use crate::gr::{Gr, ScoredGr};
use crate::metrics::{MetricInputs, RankMetric};
use crate::stats::MinerStats;
use crate::tail::Dims;
use crate::topk::{SharedBound, TopK};
use grm_graph::sort::{Frame, FusedHist, FusedLevel, PartitionArena};
use grm_graph::{AttrValue, CancelToken, NodeAttrId, Schema, SocialGraph, NULL};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Cost model of the fused two-level passes (purely a heuristic — outputs
/// are bit-identical regardless, and both inputs are deterministic across
/// thread counts and task splitting).
///
/// A fused pass pays `buckets × next_buckets` histogram zeroing plus one
/// extra columnar load and two stores per *parent* item; a child redeems
/// that only if it survives `min_supp` pruning and actually runs its first
/// pass. Two deterministic conditions gate fusion:
///
/// * the histogram must be small against the slice —
///   `len × FUSE_COST_RATIO ≥ buckets × next_buckets`;
/// * the *average* child (`len / buckets` items) must clear the support
///   threshold — `len ≥ min_supp × buckets` — otherwise most of the
///   pre-counts are thrown away with their pruned children (exactly what
///   profiling showed on the high-pruning Pokec configs);
/// * the parent must be narrow — `buckets ≤ FUSE_MAX_PARENT_BUCKETS` —
///   because the fused scatter interleaves one extra write stream per
///   parent partition (the scattered-order key cache): measured on the
///   two-level micro, a 6-bucket parent fuses 14–29 % faster while a
///   189-bucket parent (Pokec's `Region`) fuses ~40 % slower, so
///   wide-domain passes stay unfused.
const FUSE_COST_RATIO: usize = 4;

/// Widest parent pass that fuses (see [`FUSE_COST_RATIO`] docs).
const FUSE_MAX_PARENT_BUCKETS: usize = 64;

/// Cancellation probes between two wall-clock reads on deadline-bounded
/// runs: token probes are an atomic load and run at recursion-node
/// granularity, but `Instant::now` is a syscall-class cost, so the
/// deadline is re-checked only every this many probes.
const DEADLINE_PROBE_INTERVAL: u32 = 1024;

/// Outcome of a mining run: the top-k GRs (best first) and instrumentation.
#[derive(Debug, Clone)]
pub struct MineResult {
    /// The top-k GRs in rank order (Def. 5(3)), best first.
    pub top: Vec<ScoredGr>,
    /// Counters for the run.
    pub stats: MinerStats,
    /// `|E|` of the mined graph, for converting supports to relative form.
    pub edge_count: u64,
}

impl MineResult {
    /// Pretty-print the result as a ranked table.
    pub fn report(&self, schema: &Schema) -> String {
        let mut out = String::new();
        for (i, s) in self.top.iter().enumerate() {
            out.push_str(&format!("{:>3}. {}\n", i + 1, s.display(schema)));
        }
        out
    }
}

/// The GRMiner algorithm bound to a graph and configuration.
///
/// ```
/// # use grm_graph::{SchemaBuilder, GraphBuilder};
/// # use grm_core::{GrMiner, MinerConfig};
/// # let schema = SchemaBuilder::new()
/// #     .node_attr("A", 2, true).node_attr("B", 2, false).build().unwrap();
/// # let mut b = GraphBuilder::new(schema);
/// # let x = b.add_node(&[1, 1]).unwrap();
/// # let y = b.add_node(&[2, 2]).unwrap();
/// # b.add_edge(x, y, &[]).unwrap();
/// # let graph = b.build().unwrap();
/// let result = GrMiner::new(&graph, MinerConfig::nhp(1, 0.5, 10)).mine();
/// assert!(result.top.len() <= 10);
/// ```
#[derive(Debug)]
pub struct GrMiner<'g> {
    graph: &'g SocialGraph,
    dims: Dims,
    config: MinerConfig,
}

impl<'g> GrMiner<'g> {
    /// Mine over every attribute in the graph's schema.
    pub fn new(graph: &'g SocialGraph, config: MinerConfig) -> Self {
        let dims = Dims::all(graph.schema());
        Self::with_dims(graph, config, dims)
    }

    /// Mine over a restricted dimension set (Fig. 4d's sweep).
    pub fn with_dims(graph: &'g SocialGraph, config: MinerConfig, dims: Dims) -> Self {
        assert!(
            graph.schema().node_attr_count() <= MAX_NODE_ATTRS,
            "at most {MAX_NODE_ATTRS} node attributes supported"
        );
        GrMiner {
            graph,
            dims,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// Run Algorithm 1 and return the top-k GRs.
    ///
    /// The infallible entry: a config whose [`MinerConfig::cancel`]
    /// token trips (or whose [`MinerConfig::deadline_ms`] expires)
    /// mid-run is a caller contract violation here — use
    /// [`GrMiner::try_mine`] for cancellable mines.
    pub fn mine(&self) -> MineResult {
        match self.try_mine() {
            Ok(r) => r,
            // lint: allow(panic-in-hot-path) — the infallible entry was
            // called with a cancellable config and the mine stopped;
            // swallowing that would return a silently partial result.
            Err(e) => panic!("GrMiner::mine cannot report cancellation ({e}); use try_mine"),
        }
    }

    /// Run Algorithm 1, observing the config's cancellation token and
    /// deadline. A mine stopped early returns
    /// [`MinerError::Cancelled`] carrying the counters accumulated so
    /// far; an undisturbed run is identical to [`GrMiner::mine`].
    pub fn try_mine(&self) -> Result<MineResult, MinerError> {
        let start = Instant::now();
        let deadline = self
            .config
            .deadline_ms
            .map(|ms| start + Duration::from_millis(ms));
        let ctx = MiningContext::build(self.graph, self.config.metric.needs_r_marginal());
        let mut run = Run::new(&ctx, self.graph.schema(), &self.dims, &self.config, None)
            .with_cancellation(self.config.cancel.clone(), deadline);

        if run.edges_total > 0 {
            // Algorithm 1, Main: RIGHT, EDGE, LEFT over the full data with
            // the full tails. The buffer is filled once and reused across
            // tasks — each root task re-partitions the full (permuted)
            // position set, and the recursion is invariant under input
            // permutation (counting sort groups by value regardless of
            // order, and every counted quantity is order-independent).
            // lint: allow(alloc-in-arena) — one allocation per run, before
            // the recursion starts; not a per-pass cost.
            let mut data = Vec::new();
            ctx.fill_positions(&mut data);
            for task in RootTask::all(&self.dims) {
                run.run_root(&mut data, task);
            }
        }

        let cancelled = run.was_cancelled();
        let mut stats = run.stats;
        stats.elapsed = start.elapsed();
        if cancelled {
            return Err(MinerError::Cancelled {
                partial_stats: Box::new(stats),
            });
        }
        Ok(MineResult {
            top: run.topk.into_sorted(),
            stats,
            edge_count: self.graph.edge_count() as u64,
        })
    }
}

/// One top-level unit of enumeration work: the iterations of Algorithm 1's
/// Main loop (lines 3–5), split so the parallel miner can distribute them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RootTask {
    /// `RIGHT(RArray, tail(nil))` — all GRs with empty LHS and empty edge
    /// descriptor.
    Right,
    /// One dimension of `EDGE(EArray, tail(nil))`: subsets whose first
    /// constrained dimension is `dims.w[i]`.
    Edge(usize),
    /// One dimension of `LEFT(LArray, tail(nil))`: subsets whose first
    /// constrained dimension is `dims.l[i]`.
    Left(usize),
    /// One chunk of partition values of `Left(i)`: subsets whose first
    /// constrained dimension is `dims.l[i]` fixed to a value in
    /// `lo..=hi`. The parallel miner splits the dominant LHS dimension
    /// into these so no single subtree serializes the pool; the chunks
    /// tile the non-null value range, so their union visits exactly the
    /// nodes `Left(i)` visits. Bounds are inclusive because the domain
    /// may extend to `AttrValue::MAX`, where an exclusive end would
    /// overflow.
    LeftValues {
        /// Index into `dims.l`.
        dim: usize,
        /// First partition value of the chunk (inclusive, never `NULL`).
        lo: AttrValue,
        /// Last partition value of the chunk (inclusive).
        hi: AttrValue,
    },
    /// One dimension of `RIGHT(RArray, tail(nil))`: the iteration of
    /// [`RootTask::Right`]'s top-level partition loop that partitions on
    /// `r_order(∅)[dim]`. The sharded miner ([`crate::sharded`]) runs
    /// each dimension over a per-value edge slice, so the slice's
    /// `supp_lw` denominator must be overridden with the *global* edge
    /// count — the whole reason this cannot reuse [`RootTask::Right`] on
    /// the slice.
    RightDim {
        /// Index into the empty-LHS RHS order `dims.r_order(0)`.
        dim: usize,
    },
}

impl RootTask {
    /// Every root task, in the sequential Main order.
    pub(crate) fn all(dims: &Dims) -> Vec<RootTask> {
        // lint: allow(alloc-in-arena) — tiny once-per-run task list.
        let mut v = vec![RootTask::Right];
        v.extend((0..dims.w.len()).map(RootTask::Edge));
        v.extend((0..dims.l.len()).map(RootTask::Left));
        v
    }
}

/// All reusable mutable scratch of a mining run, movable between [`Run`]s
/// so a parallel worker carries it across its tasks: the counting-sort
/// [`PartitionArena`], pools for the per-`l∧w`-node buffers (edge-set
/// snapshot, homophily pairs, β support table), and pools for the
/// per-partition descriptor extensions (`l.with(...)` / `r.with(...)` on
/// the descend path). Once warm, recursion nodes draw everything from
/// here and allocate nothing.
#[derive(Debug, Default)]
pub(crate) struct MinerScratch {
    arena: PartitionArena,
    snapshots: Vec<Vec<u32>>,
    pairs_bufs: Vec<Vec<(NodeAttrId, AttrValue)>>,
    heff_tables: Vec<Vec<u64>>,
    node_descs: Vec<NodeDescriptor>,
    edge_descs: Vec<EdgeDescriptor>,
}

/// A recursion subtree detached by a worker for other workers to steal:
/// the subtree root's descriptors plus an owned copy of its edge
/// positions (the recursion is invariant under input permutation, so the
/// copy's order — a snapshot of the live slice mid-recursion — does not
/// matter). Executing it via [`Run::run_subtree`] performs exactly the
/// recursive calls the spawning worker skipped, so the collect-mode
/// merge (and every semantic counter) is independent of where and when
/// the subtree runs.
pub(crate) struct SubtreeTask {
    pub(crate) data: Vec<u32>,
    pub(crate) l: NodeDescriptor,
    pub(crate) w: EdgeDescriptor,
    pub(crate) kind: SubtreeKind,
}

/// Which recursion frame a [`SubtreeTask`] resumes.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SubtreeKind {
    /// The body of `left_partitions`' partition loop: RIGHT, EDGE over
    /// the full edge tail, LEFT over the prefix tail `0..l_tail`.
    Left {
        /// LHS tail length of the subtree root (the partitioned
        /// dimension's index in `dims.l`).
        l_tail: usize,
    },
    /// The body of `edge_range`'s partition loop: RIGHT, EDGE over the
    /// prefix tail `0..w_tail`.
    Edge {
        /// Edge tail length of the subtree root.
        w_tail: usize,
    },
}

/// When a partition's subtree is worth detaching into a [`SubtreeTask`]:
/// only near the root (`|l| + |w|` of the subtree root at most
/// `max_frame` — deep frames are small and numerous) and only when the
/// partition is big enough (`min_len`) that the position copy and the
/// lost parent fusion are noise against the subtree's own work.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SplitPolicy {
    pub(crate) max_frame: usize,
    pub(crate) min_len: usize,
}

/// A pre-counted first-pass histogram handed to a child RIGHT chain by its
/// parent's fused pass, tagged with the dimension it counted.
#[derive(Clone, Copy)]
struct PreCount {
    hist: FusedHist,
    dim: NodeAttrId,
}

/// Mutable state of one mining run (one root task in parallel mode).
/// Everything immutable — the compact model, the canonical position set,
/// the RHS marginal table — lives in the shared [`MiningContext`].
pub(crate) struct Run<'a, 'g> {
    ctx: &'a MiningContext<'g>,
    schema: &'a Schema,
    dims: &'a Dims,
    cfg: &'a MinerConfig,
    scratch: MinerScratch,
    pub(crate) topk: TopK,
    generality: GeneralityIndex,
    pub(crate) stats: MinerStats,
    pub(crate) edges_total: u64,
    /// When set, threshold-passing candidates are appended here instead of
    /// going through the generality index and top-k heap, and the local
    /// dynamic top-k bound is disabled. Used by the parallel miner's
    /// collect phase, whose generality/top-k pass runs after the merge
    /// (score pruning then comes from `shared_bound`, if any).
    collector: Option<Vec<ScoredGr>>,
    /// Work-stealing hook: the split policy plus the worker's spawner
    /// callback. When a partition qualifies, its subtree is handed out as
    /// a [`SubtreeTask`] instead of being descended inline.
    spawner: Option<(SplitPolicy, &'a dyn Fn(SubtreeTask))>,
    /// The cross-worker dynamic top-k bound (collect mode only; the
    /// sequential miner uses its own `topk` heap). Consulted in the score
    /// pruning check and fed with guaranteed-survivor candidates.
    shared_bound: Option<&'a SharedBound>,
    /// The `l ∧ w` descriptors of RIGHT chains in which the shared bound
    /// cut a subtree at a score that still passed the *user* threshold —
    /// the only places a Def. 5(2) suppressor can have been lost.
    /// Deduplicated per chain (depth-first order makes a chain's prune
    /// events consecutive); drained by the parallel engine for the
    /// exactness-verified post-pass.
    pub(crate) pruned_lw: Vec<(NodeDescriptor, EdgeDescriptor)>,
    /// Cooperative cancellation flag, probed at recursion-node
    /// granularity ([`Run::check_cancelled`]). Inert by default.
    cancel: CancelToken,
    /// Wall-clock deadline; an expired deadline trips `cancel` (so
    /// sibling workers sharing the token stop too) and ends this run.
    deadline: Option<Instant>,
    /// Latched once a probe observes cancellation: the recursion
    /// unwinds through cheap early returns without re-probing the
    /// shared flag.
    cancelled: bool,
    /// Probes until the next wall-clock deadline read
    /// ([`DEADLINE_PROBE_INTERVAL`]).
    deadline_probe: u32,
}

impl<'a, 'g> Run<'a, 'g> {
    pub(crate) fn new(
        ctx: &'a MiningContext<'g>,
        schema: &'a Schema,
        dims: &'a Dims,
        cfg: &'a MinerConfig,
        collector: Option<Vec<ScoredGr>>,
    ) -> Self {
        let mut scratch = MinerScratch::default();
        scratch.arena.set_kernel_enabled(cfg.use_kernel);
        Run {
            ctx,
            schema,
            dims,
            cfg,
            scratch,
            topk: TopK::new(cfg.k),
            generality: GeneralityIndex::new(),
            stats: MinerStats::default(),
            edges_total: ctx.edges_total(),
            collector,
            spawner: None,
            shared_bound: None,
            // lint: allow(alloc-in-arena) — Run construction site; the
            // buffer warms up once and is reused across the run.
            pruned_lw: Vec::new(),
            cancel: cfg.cancel.clone(),
            deadline: None,
            cancelled: false,
            // The first probe reads the clock (so an already-expired
            // deadline stops even a tiny run), later ones every
            // DEADLINE_PROBE_INTERVAL.
            deadline_probe: 1,
        }
    }

    /// Observe `token` (overriding the config's — engines materialize a
    /// real token so deadlines and panicking siblings have a flag to
    /// trip) and optionally a wall-clock deadline.
    pub(crate) fn with_cancellation(
        mut self,
        token: CancelToken,
        deadline: Option<Instant>,
    ) -> Self {
        self.cancel = token;
        self.deadline = deadline;
        self
    }

    /// Did a probe observe cancellation (flag tripped or deadline
    /// expired) during this run?
    pub(crate) fn was_cancelled(&self) -> bool {
        self.cancelled
    }

    /// The loop-top cancellation probe (the protocol step proved in
    /// `grm_analyze::model::cancel`): latched once true, one branch when
    /// no token or deadline is installed, one `Acquire` load otherwise.
    /// An expired deadline trips the token so every clone sharing it —
    /// sibling workers, the pool's blocked waiters — stops too.
    fn check_cancelled(&mut self) -> bool {
        if self.cancelled {
            return true;
        }
        if self.cancel.is_inert() && self.deadline.is_none() {
            return false;
        }
        self.stats.cancel_checks += 1;
        if self.cancel.is_cancelled() {
            self.cancelled = true;
            return true;
        }
        if let Some(d) = self.deadline {
            self.deadline_probe -= 1;
            if self.deadline_probe == 0 {
                self.deadline_probe = DEADLINE_PROBE_INTERVAL;
                if Instant::now() >= d {
                    self.cancel.cancel();
                    self.cancelled = true;
                    return true;
                }
            }
        }
        false
    }

    /// Adopt an already-warm [`MinerScratch`] (parallel workers reuse one
    /// across all their tasks so only the first task pays the warm-up
    /// allocations).
    pub(crate) fn with_scratch(mut self, scratch: MinerScratch) -> Self {
        self.scratch = scratch;
        self.scratch.arena.set_kernel_enabled(self.cfg.use_kernel);
        self
    }

    /// Enable depth-adaptive subtree splitting: partitions that satisfy
    /// `policy` are detached through `spawn` instead of descended inline.
    pub(crate) fn with_spawner(
        mut self,
        policy: SplitPolicy,
        spawn: &'a dyn Fn(SubtreeTask),
    ) -> Self {
        self.spawner = Some((policy, spawn));
        self
    }

    /// Consult (and feed) the cross-worker dynamic top-k bound. Only
    /// meaningful in collect mode.
    pub(crate) fn with_shared_bound(mut self, bound: &'a SharedBound) -> Self {
        self.shared_bound = Some(bound);
        self
    }

    /// Recover the collected candidates and the warm scratch
    /// (collect-mode runs).
    pub(crate) fn into_collected_and_scratch(self) -> (Vec<ScoredGr>, MinerScratch) {
        (self.collector.unwrap_or_default(), self.scratch)
    }

    /// Execute one top-level task over `data` (the full position set).
    pub(crate) fn run_root(&mut self, data: &mut [u32], task: RootTask) {
        if self.check_cancelled() {
            return;
        }
        let l0 = NodeDescriptor::empty();
        let w0 = EdgeDescriptor::empty();
        match task {
            RootTask::Right => self.right_root(data, &l0, &w0, None),
            RootTask::Edge(i) => self.edge_range(data, i..i + 1, &l0, &w0),
            RootTask::Left(i) => self.left_range(data, i..i + 1, &l0),
            RootTask::LeftValues { dim, lo, hi } => self.left_values_root(data, dim, lo, hi),
            RootTask::RightDim { dim } => self.right_dim_root(data, dim),
        }
        self.record_scratch_peak();
    }

    /// Execute a detached recursion subtree (see [`SubtreeTask`]): the
    /// exact recursive calls the spawning worker's partition loop would
    /// have made inline, minus the parent's fused pre-count (the
    /// histogram lives in the spawner's arena, so the first RIGHT pass
    /// here re-counts — a work difference only).
    pub(crate) fn run_subtree(
        &mut self,
        data: &mut [u32],
        l: &NodeDescriptor,
        w: &EdgeDescriptor,
        kind: SubtreeKind,
    ) {
        if self.check_cancelled() {
            return;
        }
        match kind {
            SubtreeKind::Left { l_tail } => {
                debug_assert!(w.is_empty(), "LEFT partitions precede all EDGE dimensions");
                self.right_root(data, l, w, None);
                self.edge(data, self.dims.w.len(), l, w);
                self.left(data, l_tail, l);
            }
            SubtreeKind::Edge { w_tail } => {
                self.right_root(data, l, w, None);
                self.edge(data, w_tail, l, w);
            }
        }
        self.record_scratch_peak();
    }

    /// Record the arena high-water mark and drain the kernel batch
    /// count. A worker's arena persists across its tasks, so the peak is
    /// monotone per worker (the cross-task merge takes the max either
    /// way); the batch count is drained so per-task stats stay additive.
    fn record_scratch_peak(&mut self) {
        self.stats.scratch_bytes_peak = self
            .stats
            .scratch_bytes_peak
            .max(self.scratch.arena.peak_bytes() as u64);
        self.stats.kernel_batches += self.scratch.arena.take_kernel_batches();
    }

    /// If the split policy admits this partition (subtree-root frame size
    /// `frame`, `part_len` positions), detach it through the spawner and
    /// return `true`; the caller then skips the inline descent.
    fn spawn_subtree(
        &mut self,
        part_len: usize,
        frame: usize,
        make: impl FnOnce() -> SubtreeTask,
    ) -> bool {
        let Some((policy, spawn)) = self.spawner else {
            return false;
        };
        if frame > policy.max_frame || part_len < policy.min_len {
            return false;
        }
        self.stats.subtree_splits += 1;
        spawn(make());
        true
    }

    /// Whether a collected candidate `l -w-> r` is **guaranteed** to
    /// survive the sequential post-pass and may therefore feed the
    /// [`SharedBound`]. With the generality filter off, every collected
    /// candidate survives. With it on, survival is certain only when
    /// every strictly more general form of the candidate is excluded
    /// from collection *by construction*: the edge descriptor is empty
    /// and the LHS already has the minimum reportable width — 1
    /// condition normally (the only generalization, the empty LHS, is
    /// gated out by `allow_empty_lhs = false`), or 0 when empty LHSes
    /// are reportable (nothing generalizes the empty descriptor pair).
    /// Feeding only such candidates keeps every published bound a true
    /// lower bound on the final k-th score (see [`SharedBound`]).
    fn feeds_shared_bound(&self, l: &NodeDescriptor, w: &EdgeDescriptor) -> bool {
        !self.cfg.generality_filter
            || (w.is_empty() && l.len() == usize::from(!self.cfg.allow_empty_lhs))
    }

    /// Execute the partitions of top-level LHS dimension `i` whose value
    /// falls in `lo..=hi`: the body of `left_range`'s partition loop
    /// restricted to one value chunk. Each chunk task repeats the
    /// counting-sort pass over the full position set (the duplication
    /// splitting trades for balance — which is why the parallel miner
    /// bounds the chunk count), then recurses only into its own
    /// partitions, so counters and candidates sum across chunks to
    /// exactly the unsplit task's.
    fn left_values_root(&mut self, data: &mut [u32], i: usize, lo: AttrValue, hi: AttrValue) {
        debug_assert_ne!(lo, NULL, "null partitions are never enumerated");
        // Mirror `left_range`'s max_lhs guard: constraining this chunk's
        // dimension would already exceed the cap when it is zero.
        if self.cfg.max_lhs.is_some_and(|m| m == 0) {
            return;
        }
        self.left_partitions(data, i, &NodeDescriptor::empty(), Some((lo, hi)));
    }
}

/// Snapshot of the `l ∧ w` edge set taken when a RIGHT chain begins, with
/// the β group-by table of homophily-effect supports (§IV-D). The
/// snapshot is needed because the recursion below keeps reordering and
/// narrowing the live slice while `supp(l -w-> l[β])` must be counted
/// over the *whole* `l ∧ w` set.
///
/// **Construction invariant:** `edges` is `Some` exactly when `pairs` —
/// the homophily conditions of the LHS — is non-empty. Eqn. 4 makes every
/// reachable β a subset of those attributes, so β ≠ ∅ implies a snapshot
/// exists; [`Run::heff`] degrades to an empty support (debug-asserting)
/// rather than panicking if that invariant is ever violated.
///
/// The owned buffers (`pairs`, `edges`, `table`) are drawn from the
/// [`MinerScratch`] pools by [`Run::right_root`] and returned there when
/// the chain finishes, so steady-state `l ∧ w` nodes allocate nothing
/// (the `memo` map is used — and allocates — only on the wide-LHS
/// fallback path).
struct LwContext {
    /// The LHS homophily conditions `H_l` — group-by dimensions for heff.
    pairs: Vec<(NodeAttrId, AttrValue)>,
    edges: Option<Vec<u32>>,
    supp_lw: u64,
    /// All β supports for this `l ∧ w` node, filled by one
    /// counting-partition pass on the first non-empty β (`None` until
    /// then; index by [`BetaSet::local_mask`] over `pairs`).
    table: Option<Vec<u64>>,
    /// Per-β memo for the wide-LHS fallback path
    /// (`pairs.len() > MAX_GROUPBY_ATTRS`).
    memo: HashMap<u64, u64>,
}

impl<'a, 'g> Run<'a, 'g> {
    /// `LEFT(data, Tail)`: partition on each LHS dimension in the tail;
    /// for each surviving partition recurse into RIGHT, EDGE and LEFT with
    /// the prefix tail (Algorithm 1 lines 7–14).
    fn left(&mut self, data: &mut [u32], l_tail_len: usize, l: &NodeDescriptor) {
        self.left_range(data, 0..l_tail_len, l);
    }

    fn left_range(&mut self, data: &mut [u32], range: std::ops::Range<usize>, l: &NodeDescriptor) {
        if self.cfg.max_lhs.is_some_and(|m| l.len() >= m) {
            return;
        }
        for i in range {
            self.left_partitions(data, i, l, None);
        }
    }

    /// The LEFT partition loop over one dimension `dims.l[i]`, shared by
    /// the sequential tail walk and the parallel miner's value-chunk
    /// tasks: partition `data`, then recurse into every surviving
    /// partition whose value lies in `values` (inclusive; `None` = all
    /// non-null).
    fn left_partitions(
        &mut self,
        data: &mut [u32],
        i: usize,
        l: &NodeDescriptor,
        values: Option<(AttrValue, AttrValue)>,
    ) {
        let model = self.ctx.model();
        let d = self.dims.l[i];
        let buckets = self.schema.node_attr(d).bucket_count();
        let col = model.l_col(d);
        // Every child's first pass partitions the same dimension — the
        // first dynamic RHS dimension for the child's LHS mask, which
        // does not depend on the partition value — so fuse its counting
        // into this scatter.
        let child_mask = l.attrs().fold(0u64, |m, a| m | (1u64 << a.0)) | (1u64 << d.0);
        let fuse = self.right_fuse_target(child_mask, data.len(), buckets);
        let (frame, level) = self.partition_pass(data, buckets, col, None, fuse);
        for idx in frame.indices() {
            if self.check_cancelled() {
                break;
            }
            let part = self.scratch.arena.record(idx);
            if part.value == NULL {
                continue;
            }
            if values.is_some_and(|(lo, hi)| part.value < lo || part.value > hi) {
                continue;
            }
            self.stats.partitions_examined += 1;
            if (part.len() as u64) < self.cfg.min_supp {
                self.stats.pruned_by_supp += 1;
                continue;
            }
            let l2 = l.with_pooled(d, part.value, &mut self.scratch.node_descs);
            if self.spawn_subtree(part.len(), l2.len(), || SubtreeTask {
                // lint: allow(alloc-in-arena) — a detached stealable task
                // must own its slice; paid only when a subtree splits.
                data: data[part.range()].to_vec(),
                l: l2.clone(),
                w: EdgeDescriptor::empty(),
                kind: SubtreeKind::Left { l_tail: i },
            }) {
                self.scratch.node_descs.push(l2);
                continue;
            }
            let pre = level.map(|(lvl, nd)| PreCount {
                hist: self.scratch.arena.child_hist(lvl, part),
                dim: nd,
            });
            let sub = &mut data[part.range()];
            self.right_root(sub, &l2, &EdgeDescriptor::empty(), pre);
            self.edge(sub, self.dims.w.len(), &l2, &EdgeDescriptor::empty());
            self.left(sub, i, &l2);
            self.scratch.node_descs.push(l2);
        }
        if let Some((lvl, _)) = level {
            self.scratch.arena.pop_fused(lvl);
        }
        self.scratch.arena.pop_frame(frame);
    }

    /// `EDGE(data, Tail)`: partition on each edge dimension in the tail;
    /// recurse into RIGHT and EDGE (lines 15–21).
    fn edge(
        &mut self,
        data: &mut [u32],
        w_tail_len: usize,
        l: &NodeDescriptor,
        w: &EdgeDescriptor,
    ) {
        self.edge_range(data, 0..w_tail_len, l, w);
    }

    fn edge_range(
        &mut self,
        data: &mut [u32],
        range: std::ops::Range<usize>,
        l: &NodeDescriptor,
        w: &EdgeDescriptor,
    ) {
        let model = self.ctx.model();
        let l_mask = l.attrs().fold(0u64, |m, a| m | (1u64 << a.0));
        for i in range {
            if self.check_cancelled() {
                return;
            }
            let d = self.dims.w[i];
            let buckets = self.schema.edge_attr(d).bucket_count();
            let col = model.w_col(d);
            // Children keep this LHS, so each enters its RIGHT chain on
            // the same first dynamic dimension: fuse its counting here.
            let fuse = self.right_fuse_target(l_mask, data.len(), buckets);
            let (frame, level) = self.partition_pass(data, buckets, col, None, fuse);
            for idx in frame.indices() {
                if self.check_cancelled() {
                    break;
                }
                let part = self.scratch.arena.record(idx);
                if part.value == NULL {
                    continue;
                }
                self.stats.partitions_examined += 1;
                if (part.len() as u64) < self.cfg.min_supp {
                    self.stats.pruned_by_supp += 1;
                    continue;
                }
                let w2 = w.with_pooled(d, part.value, &mut self.scratch.edge_descs);
                if self.spawn_subtree(part.len(), l.len() + w2.len(), || SubtreeTask {
                    // lint: allow(alloc-in-arena) — a detached stealable
                    // task must own its slice; paid only on splits.
                    data: data[part.range()].to_vec(),
                    l: l.clone(),
                    w: w2.clone(),
                    kind: SubtreeKind::Edge { w_tail: i },
                }) {
                    self.scratch.edge_descs.push(w2);
                    continue;
                }
                let pre = level.map(|(lvl, nd)| PreCount {
                    hist: self.scratch.arena.child_hist(lvl, part),
                    dim: nd,
                });
                let sub = &mut data[part.range()];
                self.right_root(sub, l, &w2, pre);
                self.edge(sub, i, l, &w2);
                self.scratch.edge_descs.push(w2);
            }
            if let Some((lvl, _)) = level {
                self.scratch.arena.pop_fused(lvl);
            }
            self.scratch.arena.pop_frame(frame);
        }
    }

    /// Entry into a RIGHT chain for a fixed `l ∧ w`: snapshot the edge set
    /// for homophily-effect counting, fix the dynamic RHS order (Eqn. 8)
    /// for the whole subtree, and recurse. All per-node buffers come from
    /// the [`MinerScratch`] pools (and the RHS order lives on the stack),
    /// so a steady-state `l ∧ w` node allocates nothing here.
    fn right_root(
        &mut self,
        data: &mut [u32],
        l: &NodeDescriptor,
        w: &EdgeDescriptor,
        pre: Option<PreCount>,
    ) {
        let l_mask = l.attrs().fold(0u64, |m, a| m | (1u64 << a.0));
        // Pooled H_l buffer — the homophily conditions of the LHS.
        let mut pairs = self.scratch.pairs_bufs.pop().unwrap_or_default();
        pairs.clear();
        pairs.extend(
            l.pairs()
                .iter()
                .copied()
                .filter(|&(a, _)| self.dims.is_homophily(a)),
        );
        // Pooled l∧w snapshot, taken exactly when H_l is non-empty (the
        // LwContext construction invariant).
        let edges = if pairs.is_empty() {
            None
        } else {
            let mut snap = self.scratch.snapshots.pop().unwrap_or_default();
            snap.clear();
            snap.extend_from_slice(data);
            Some(snap)
        };
        let mut ctx = LwContext {
            supp_lw: data.len() as u64,
            table: None,
            memo: HashMap::new(),
            pairs,
            edges,
        };
        let mut r_buf = [NodeAttrId(0); MAX_NODE_ATTRS];
        let len = self.dims.r_order_into(l_mask, &mut r_buf);
        self.right(
            &mut ctx,
            data,
            &r_buf[..len],
            0..len,
            l,
            w,
            &NodeDescriptor::empty(),
            pre,
        );
        // Return the pooled buffers for the next l∧w node.
        let LwContext {
            pairs,
            edges,
            table,
            ..
        } = ctx;
        self.scratch.pairs_bufs.push(pairs);
        if let Some(snap) = edges {
            self.scratch.snapshots.push(snap);
        }
        if let Some(t) = table {
            self.scratch.heff_tables.push(t);
        }
    }

    /// One top-level dimension of the empty-LHS RIGHT chain
    /// ([`RootTask::RightDim`]), run by the sharded miner over a
    /// per-value edge slice. With `l = ∅` there are no homophily
    /// conditions (β ⊆ H_l = ∅), so no snapshot or β table is ever
    /// needed; the one semantic difference from [`Run::right_root`] is
    /// the `supp_lw` denominator, which must be the *global* edge count
    /// (`Run::edges_total`) rather than the slice length, because the
    /// empty-LHS `l ∧ w` group is the whole edge set.
    fn right_dim_root(&mut self, data: &mut [u32], dim: usize) {
        let mut ctx = LwContext {
            supp_lw: self.edges_total,
            table: None,
            memo: HashMap::new(),
            // lint: allow(alloc-in-arena) — empty Vec, never grows
            // (l = ∅ has no homophily pairs).
            pairs: Vec::new(),
            edges: None,
        };
        let mut r_buf = [NodeAttrId(0); MAX_NODE_ATTRS];
        let len = self.dims.r_order_into(0, &mut r_buf);
        debug_assert!(dim < len, "RightDim dimension out of the RHS order");
        self.right(
            &mut ctx,
            data,
            &r_buf[..len],
            dim..(dim + 1).min(len),
            &NodeDescriptor::empty(),
            &EdgeDescriptor::empty(),
            &NodeDescriptor::empty(),
            None,
        );
        self.scratch.pairs_bufs.push(ctx.pairs);
    }

    /// The fused-pass target for children entering a RIGHT chain with LHS
    /// mask `child_mask`: the first dynamic RHS dimension (Eqn. 8), when
    /// fusion is on, the children may recurse at all, and the slice is
    /// large enough for the fused histogram to pay for itself.
    fn right_fuse_target(
        &self,
        child_mask: u64,
        len: usize,
        buckets: usize,
    ) -> Option<(NodeAttrId, usize)> {
        if self.cfg.max_rhs == Some(0) {
            return None;
        }
        let d = self.dims.r_order_first(child_mask)?;
        self.fuse_with(d, len, buckets)
    }

    /// Apply the fused-pass cost model ([`FUSE_COST_RATIO`]) to next
    /// dimension `d` for a pass over `len` items with `buckets` buckets.
    fn fuse_with(&self, d: NodeAttrId, len: usize, buckets: usize) -> Option<(NodeAttrId, usize)> {
        if !self.cfg.fuse_partitions || buckets > FUSE_MAX_PARENT_BUCKETS {
            return None;
        }
        // Average child must survive min_supp, or the pre-counts die with
        // their pruned children (see FUSE_COST_RATIO docs).
        if (len as u64) < self.cfg.min_supp.saturating_mul(buckets as u64) {
            return None;
        }
        let nb = self.schema.node_attr(d).bucket_count();
        // A zero-bucket next dimension cannot key anything: skip fusion
        // deterministically instead of handing the arena a doomed fused
        // pass. Unreachable through a validated schema (every domain
        // has at least the null bucket), but cheap and load-bearing if
        // dimension sources ever widen.
        if nb == 0 {
            return None;
        }
        (len * FUSE_COST_RATIO >= buckets * nb).then_some((d, nb))
    }

    /// One counting-sort pass of the mining recursion through the arena:
    /// pre-counted when the parent fused this dimension, fused when
    /// `fuse` names the children's next dimension, plain otherwise.
    /// Returns the record frame and the produced fused level (if any);
    /// the caller pops both after its partition loop.
    fn partition_pass(
        &mut self,
        data: &mut [u32],
        buckets: usize,
        col: &[AttrValue],
        pre: Option<PreCount>,
        fuse: Option<(NodeAttrId, usize)>,
    ) -> (Frame, Option<(FusedLevel, NodeAttrId)>) {
        self.stats.partition_passes += 1;
        if let Some(p) = pre {
            debug_assert!(fuse.is_none(), "a first pass has no child tail to fuse");
            self.stats.fused_passes += 1;
            let frame = self
                .scratch
                .arena
                .partition_pre_counted(data, buckets, p.hist);
            return (frame, None);
        }
        match fuse {
            Some((nd, nb)) => {
                let next_col = self.ctx.model().r_col(nd);
                let (frame, level) = self
                    .scratch
                    .arena
                    .partition_col_fused(data, buckets, col, next_col, nb)
                    // lint: allow(panic-in-hot-path) — KeyOutOfRange is
                    // impossible here: every column comes from a
                    // CompactModel built against the same validated
                    // Schema that supplied `buckets`.
                    .expect("schema-validated keys fit their bucket counts");
                (frame, Some((level, nd)))
            }
            None => {
                let frame = self
                    .scratch
                    .arena
                    .partition_col(data, buckets, col)
                    // lint: allow(panic-in-hot-path) — same schema
                    // invariant as the fused arm above.
                    .expect("schema-validated keys fit their bucket counts");
                (frame, None)
            }
        }
    }

    /// `RIGHT(data, Tail)` (lines 22–29): partition on each RHS dimension,
    /// score each partition as a GR, apply all four constraints, recurse.
    #[allow(clippy::too_many_arguments)]
    fn right(
        &mut self,
        ctx: &mut LwContext,
        data: &mut [u32],
        r_order: &[NodeAttrId],
        r_range: std::ops::Range<usize>,
        l: &NodeDescriptor,
        w: &EdgeDescriptor,
        r: &NodeDescriptor,
        mut pre: Option<PreCount>,
    ) {
        if self.cfg.max_rhs.is_some_and(|m| r.len() >= m) {
            return;
        }
        let model = self.ctx.model();
        for i in r_range {
            let d = r_order[i];
            let buckets = self.schema.node_attr(d).bucket_count();
            let col = model.r_col(d);
            // The parent pre-counted exactly our first pass (i = 0);
            // children of iteration i partition `r_order[0]` first (their
            // tail is the prefix `0..i`), so fuse that dimension when a
            // child can exist (i ≥ 1) and may recurse under `max_rhs`.
            let pass_pre = if i == 0 { pre.take() } else { None };
            if let Some(p) = &pass_pre {
                debug_assert_eq!(p.dim, d, "pre-counted histogram dimension mismatch");
            }
            let fuse = if i >= 1 && self.cfg.max_rhs.is_none_or(|m| r.len() + 1 < m) {
                self.fuse_with(r_order[0], data.len(), buckets)
            } else {
                None
            };
            let (frame, level) = self.partition_pass(data, buckets, col, pass_pre, fuse);
            for idx in frame.indices() {
                if self.check_cancelled() {
                    break;
                }
                let part = self.scratch.arena.record(idx);
                if part.value == NULL {
                    continue;
                }
                self.stats.partitions_examined += 1;
                self.stats.grs_examined += 1;
                let supp = part.len() as u64;
                if supp < self.cfg.min_supp {
                    self.stats.pruned_by_supp += 1;
                    continue;
                }
                let r2 = r.with_pooled(d, part.value, &mut self.scratch.node_descs);

                // Score the GR l -w-> r2.
                let b = beta(self.schema, l, &r2);
                let heff = if b.is_empty() { 0 } else { self.heff(ctx, b) };
                let supp_r = if self.cfg.metric.needs_r_marginal() {
                    self.ctx.r_marginal(&r2)
                } else {
                    0
                };
                let score = self.cfg.metric.evaluate(MetricInputs {
                    supp,
                    supp_lw: ctx.supp_lw,
                    heff,
                    supp_r,
                    edges: self.edges_total,
                });

                // Triviality is decided on the loose parts; the `Gr`
                // itself (three descriptor clones) is assembled only for
                // candidates that are actually recorded.
                let trivial = Gr::parts_are_trivial(self.schema, l, &r2);

                // Record if it satisfies Def. 5 conditions (1) and (2)
                // and describes a real LHS group (see
                // `MinerConfig::allow_empty_lhs`).
                if score >= self.cfg.min_score && (self.cfg.allow_empty_lhs || !l.is_empty()) {
                    if trivial && self.cfg.suppress_trivial {
                        self.stats.rejected_trivial += 1;
                    } else if self.collector.is_some() {
                        // Collect phase: generality and top-k run after
                        // the cross-task merge; guaranteed survivors feed
                        // the shared dynamic bound on the way through.
                        self.stats.accepted += 1;
                        let scored = ScoredGr {
                            gr: Gr::new(l.clone(), w.clone(), r2.clone()),
                            supp,
                            supp_lw: ctx.supp_lw,
                            heff,
                            score,
                        };
                        if let Some(sb) = self.shared_bound {
                            if self.feeds_shared_bound(l, w) && sb.offer(&scored) {
                                self.stats.bound_tightenings += 1;
                            }
                        }
                        if let Some(collected) = self.collector.as_mut() {
                            collected.push(scored);
                        }
                    } else {
                        let gr = Gr::new(l.clone(), w.clone(), r2.clone());
                        if self.cfg.generality_filter && self.generality.has_more_general(&gr) {
                            self.stats.rejected_generality += 1;
                        } else {
                            if self.cfg.generality_filter {
                                self.generality.record(&gr);
                            }
                            self.stats.accepted += 1;
                            self.topk.offer(ScoredGr {
                                gr,
                                supp,
                                supp_lw: ctx.supp_lw,
                                heff,
                                score,
                            });
                        }
                    }
                }

                // Subtree pruning by score. Valid only for anti-monotone
                // metrics, and — for nhp — only below non-trivial GRs
                // (Theorem 3's precondition; see module docs).
                let score_prunable = self.cfg.metric.anti_monotone()
                    && !(trivial && matches!(self.cfg.metric, RankMetric::Nhp));
                let mut descend = true;
                if score_prunable {
                    // Both cuts are strict `<`: a candidate equal to the
                    // user threshold satisfies Def. 5(1), and one equal to
                    // the k-th best may still win the supp/alphabetical
                    // tie-break, so neither may be cut at equality.
                    let mut bound = self.cfg.min_score;
                    if self.cfg.dynamic_topk {
                        if self.collector.is_none() {
                            if let Some(dyn_bound) = self.topk.dynamic_bound() {
                                bound = bound.max(dyn_bound);
                            }
                        } else if let Some(sb) = self.shared_bound {
                            if let Some(dyn_bound) = sb.get() {
                                bound = bound.max(dyn_bound);
                            }
                        }
                    }
                    if score < bound {
                        self.stats.pruned_by_score += 1;
                        descend = false;
                        // A collect-mode cut above the user threshold can
                        // only come from the shared bound, and the lost
                        // descendants may include threshold-passing
                        // suppressors: remember this chain's l∧w for the
                        // verified post-pass. Chains prune depth-first,
                        // so consecutive dedup is exact per chain.
                        if self.collector.is_some()
                            && self.cfg.generality_filter
                            && score >= self.cfg.min_score
                            && self
                                .pruned_lw
                                .last()
                                .is_none_or(|(pl, pw)| pl != l || pw != w)
                        {
                            self.pruned_lw.push((l.clone(), w.clone()));
                        }
                    }
                }

                if descend {
                    let child_pre = level.map(|(lvl, nd)| PreCount {
                        hist: self.scratch.arena.child_hist(lvl, part),
                        dim: nd,
                    });
                    let sub = &mut data[part.range()];
                    self.right(ctx, sub, r_order, 0..i, l, w, &r2, child_pre);
                }
                self.scratch.node_descs.push(r2);
            }
            if let Some((lvl, _)) = level {
                self.scratch.arena.pop_fused(lvl);
            }
            self.scratch.arena.pop_frame(frame);
        }
    }

    /// `supp(l -w-> l[β])` over the snapshot (§IV-D: the needed supports
    /// are computable at or before the current node). The first non-empty
    /// β at this `l ∧ w` node triggers one counting-partition group-by
    /// pass that fills the supports of *every* β ⊆ `H_l` at once
    /// ([`crate::beta::heff_table`]); later lookups are a table index.
    fn heff(&mut self, ctx: &mut LwContext, b: BetaSet) -> u64 {
        debug_assert!(!b.is_empty(), "empty β is scored as heff = 0 upstream");
        if ctx.pairs.len() > MAX_GROUPBY_ATTRS {
            return self.heff_scan(ctx, b);
        }
        if ctx.table.is_none() {
            let Some(edges) = ctx.edges.as_mut() else {
                // `right_root` snapshots exactly when the LHS constrains
                // a homophily attribute, and Eqn. 4 keeps every β inside
                // that set — so this is unreachable from the enumeration.
                // Degrade to an empty homophily effect over panicking.
                debug_assert!(false, "non-empty β without an l∧w snapshot");
                return 0;
            };
            self.stats.heff_scans += 1;
            self.stats.partition_passes += 1;
            let model = self.ctx.model();
            let mut table = self.scratch.heff_tables.pop().unwrap_or_default();
            heff_table_into(
                edges,
                &ctx.pairs,
                &mut self.scratch.arena,
                &mut table,
                |a| model.r_col(a),
            );
            ctx.table = Some(table);
        }
        let Some(table) = ctx.table.as_ref() else {
            // Filled by the branch above on this very call; degrade to an
            // empty homophily effect rather than panicking if that ever
            // changes.
            debug_assert!(false, "β table missing after fill");
            return 0;
        };
        match b.local_mask(&ctx.pairs) {
            Some(mask) => table[mask],
            None => {
                debug_assert!(false, "β outside the LHS homophily set");
                0
            }
        }
    }

    /// Per-β snapshot scan, memoized per β — the fallback for LHSes wider
    /// than [`MAX_GROUPBY_ATTRS`] homophily attributes, where the group-by
    /// table (`2^|H_l|` counters) would dwarf the snapshot.
    fn heff_scan(&mut self, ctx: &mut LwContext, b: BetaSet) -> u64 {
        if let Some(&v) = ctx.memo.get(&b.0) {
            return v;
        }
        let Some(edges) = ctx.edges.as_ref() else {
            debug_assert!(false, "non-empty β without an l∧w snapshot");
            return 0;
        };
        self.stats.heff_scans += 1;
        // lint: allow(alloc-in-arena) — wide-LHS fallback path, memoized
        // per β: at most one small allocation per distinct β per node.
        let needed: Vec<(NodeAttrId, AttrValue)> = ctx
            .pairs
            .iter()
            .copied()
            .filter(|&(a, _)| b.contains(a))
            .collect();
        debug_assert_eq!(needed.len(), b.len(), "β outside the LHS homophily set");
        let model = self.ctx.model();
        let count = edges
            .iter()
            .filter(|&&p| needed.iter().all(|&(a, v)| model.r_key(p, a) == v))
            .count() as u64;
        ctx.memo.insert(b.0, count);
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_graph::{GraphBuilder, SchemaBuilder};

    /// Small two-attribute graph: A (homophily, 2 values), B (non-homophily,
    /// 2 values). Edges engineered so that a beyond-homophily preference
    /// exists from A:1 to A:2 once homophilous A:1->A:1 edges are excluded.
    fn toy() -> SocialGraph {
        let schema = SchemaBuilder::new()
            .node_attr("A", 2, true)
            .node_attr("B", 2, false)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        // Nodes: 0..4 with (A,B) rows.
        let rows = [[1, 1], [1, 2], [2, 1], [2, 2], [1, 1], [2, 1]];
        let ids: Vec<_> = rows.iter().map(|r| b.add_node(r).unwrap()).collect();
        // 6 edges from A:1 nodes: 4 homophilous (to A:1), 2 to A:2 nodes
        // that both have B:1.
        b.add_edge(ids[0], ids[1], &[]).unwrap();
        b.add_edge(ids[0], ids[4], &[]).unwrap();
        b.add_edge(ids[1], ids[0], &[]).unwrap();
        b.add_edge(ids[1], ids[4], &[]).unwrap();
        b.add_edge(ids[0], ids[2], &[]).unwrap();
        b.add_edge(ids[1], ids[5], &[]).unwrap();
        // 2 edges from A:2 nodes.
        b.add_edge(ids[2], ids[3], &[]).unwrap();
        b.add_edge(ids[3], ids[2], &[]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn finds_beyond_homophily_preference() {
        let g = toy();
        let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.9, 10)).mine();
        // (A:1) -> (A:2): supp 2, supp_lw 6, heff 4 => nhp = 2/(6-4) = 1.0.
        let s = g.schema();
        let found = result
            .top
            .iter()
            .find(|sgr| sgr.gr.display(s) == "(A:1) -> (A:2)")
            .expect("the beyond-homophily GR must be found");
        assert_eq!(found.supp, 2);
        assert_eq!(found.supp_lw, 6);
        assert_eq!(found.heff, 4);
        assert!((found.score - 1.0).abs() < 1e-12);
        assert!((found.conf() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_grs_suppressed_under_nhp() {
        let g = toy();
        let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.0, 100)).mine();
        let s = g.schema();
        for sgr in &result.top {
            assert!(
                !sgr.gr.is_trivial(s),
                "trivial GR in nhp results: {}",
                sgr.gr.display(s)
            );
        }
        assert!(result.stats.rejected_trivial > 0);
    }

    #[test]
    fn conf_mode_keeps_trivial_grs() {
        let g = toy();
        // minConf 0.6: the general ∅ -> (A:1) (conf 0.5) fails the
        // threshold and cannot suppress the trivial (A:1) -> (A:1)
        // (conf 4/6) — the Table II situation where the conf ranking is
        // dominated by homophily restatements.
        let result = GrMiner::new(&g, MinerConfig::conf(1, 0.6, 100)).mine();
        let s = g.schema();
        assert!(
            result.top.iter().any(|sgr| sgr.gr.is_trivial(s)),
            "conf ranking should surface trivial homophily GRs (Table II)"
        );
    }

    #[test]
    fn respects_min_supp() {
        let g = toy();
        let result = GrMiner::new(&g, MinerConfig::nhp(3, 0.0, 100)).mine();
        for sgr in &result.top {
            assert!(sgr.supp >= 3);
        }
        assert!(result.stats.pruned_by_supp > 0);
    }

    #[test]
    fn respects_k() {
        let g = toy();
        let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.0, 2)).mine();
        assert!(result.top.len() <= 2);
        // Rank order: best first.
        if result.top.len() == 2 {
            assert_ne!(
                result.top[0].rank_cmp(&result.top[1]),
                std::cmp::Ordering::Greater
            );
        }
    }

    #[test]
    fn dynamic_and_static_topk_agree_here() {
        let g = toy();
        let a = GrMiner::new(&g, MinerConfig::nhp(1, 0.2, 5)).mine();
        let b = GrMiner::new(&g, MinerConfig::nhp(1, 0.2, 5).without_dynamic_topk()).mine();
        let da: Vec<_> = a.top.iter().map(|s| s.gr.clone()).collect();
        let db: Vec<_> = b.top.iter().map(|s| s.gr.clone()).collect();
        assert_eq!(da, db);
        // The dynamic variant must not do more work.
        assert!(a.stats.grs_examined <= b.stats.grs_examined);
    }

    #[test]
    fn empty_graph_yields_empty_result() {
        let schema = SchemaBuilder::new()
            .node_attr("A", 2, true)
            .build()
            .unwrap();
        let g = GraphBuilder::new(schema).build().unwrap();
        let result = GrMiner::new(&g, MinerConfig::default()).mine();
        assert!(result.top.is_empty());
        assert_eq!(result.edge_count, 0);
    }

    #[test]
    fn null_values_never_appear_in_descriptors() {
        let schema = SchemaBuilder::new()
            .node_attr("A", 2, true)
            .node_attr("B", 2, false)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let x = b.add_node(&[1, 0]).unwrap(); // B null
        let y = b.add_node(&[0, 2]).unwrap(); // A null
        let z = b.add_node(&[2, 1]).unwrap();
        b.add_edge(x, y, &[]).unwrap();
        b.add_edge(y, z, &[]).unwrap();
        b.add_edge(x, z, &[]).unwrap();
        let g = b.build().unwrap();
        let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.0, 100)).mine();
        for sgr in &result.top {
            for &(_, v) in sgr.gr.l.pairs().iter().chain(sgr.gr.r.pairs()) {
                assert_ne!(v, NULL);
            }
        }
        assert!(!result.top.is_empty());
    }

    #[test]
    fn generality_suppression_drops_specializations() {
        let g = toy();
        let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.0, 1000)).mine();
        // No result may be a strict specialization of another result.
        for (i, a) in result.top.iter().enumerate() {
            for (j, b) in result.top.iter().enumerate() {
                if i != j {
                    assert!(
                        !a.gr.is_more_general_than(&b.gr),
                        "{:?} generalizes {:?}",
                        a.gr,
                        b.gr
                    );
                }
            }
        }
    }

    #[test]
    fn multi_homophily_lhs_takes_group_by_path_and_matches_reference() {
        // Two homophily attributes (A, C) and one non-homophily (B):
        // LHSes constraining both A and C reach RHS partitions with
        // β = {A}, {C} and {A, C}, all of which the group-by pass must
        // fill from a single snapshot scan. Differential check against
        // the brute-force oracle pins every heff value.
        let schema = SchemaBuilder::new()
            .node_attr("A", 3, true)
            .node_attr("B", 2, false)
            .node_attr("C", 3, true)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let mut state = 0xC0FFEEu32 | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        for _ in 0..20 {
            b.add_node(&[
                (next() % 4) as u16,
                (next() % 3) as u16,
                (next() % 4) as u16,
            ])
            .unwrap();
        }
        for _ in 0..120 {
            let s = next() % 20;
            let mut t = next() % 20;
            if t == s {
                t = (t + 1) % 20;
            }
            b.add_edge(s, t, &[]).unwrap();
        }
        let g = b.build().unwrap();
        // Generality off so specialized (two-condition) LHSes stay in the
        // result and their heff values are pinned by the oracle.
        let cfg = MinerConfig {
            generality_filter: false,
            ..MinerConfig::nhp(1, 0.0, 100_000).without_dynamic_topk()
        };
        let fast = GrMiner::new(&g, cfg.clone()).mine();
        let oracle = crate::reference::mine_reference(&g, &cfg);
        let key = |v: &[ScoredGr]| {
            v.iter()
                .map(|s| (s.gr.clone(), s.supp, s.supp_lw, s.heff))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&fast.top), key(&oracle));
        assert!(
            fast.top.iter().any(|s| s.gr.l.len() >= 2 && s.heff > 0),
            "a multi-homophily LHS with a non-trivial homophily effect must be reachable"
        );
        assert!(fast.stats.heff_scans > 0);
        // The group-by fills all β supports of an l∧w node in one scan,
        // so there can be at most one scan per examined GR's l∧w node —
        // far fewer than the per-β scans the seed performed.
        assert!(fast.stats.heff_scans <= fast.stats.grs_examined);
    }

    #[test]
    fn try_mine_observes_a_tripping_token_and_reports_partial_stats() {
        let g = toy();
        let cfg = MinerConfig::nhp(1, 0.0, 100).with_cancel(CancelToken::tripping_after(3));
        let err = GrMiner::new(&g, cfg).try_mine().unwrap_err();
        match err {
            MinerError::Cancelled { partial_stats } => {
                assert!(partial_stats.cancel_checks >= 3, "{partial_stats:?}");
            }
            other => panic!("expected Cancelled, got {other}"),
        }
        // Without a token or deadline, try_mine is mine — and probes
        // cost nothing (no checks are even counted).
        let cfg = MinerConfig::nhp(1, 0.0, 100);
        let a = GrMiner::new(&g, cfg.clone()).try_mine().unwrap();
        let b = GrMiner::new(&g, cfg).mine();
        assert_eq!(a.top, b.top);
        assert_eq!(a.stats.cancel_checks, 0);
    }

    #[test]
    fn an_expired_deadline_trips_the_shared_token() {
        let g = toy();
        let token = CancelToken::new();
        let cfg = MinerConfig::nhp(1, 0.0, 100)
            .with_deadline_ms(0)
            .with_cancel(token.clone());
        let err = GrMiner::new(&g, cfg).try_mine().unwrap_err();
        assert!(matches!(err, MinerError::Cancelled { .. }), "{err}");
        assert!(
            token.is_cancelled(),
            "an expired deadline must trip the caller's token too"
        );
    }

    #[test]
    fn report_formats_rows() {
        let g = toy();
        let result = GrMiner::new(&g, MinerConfig::nhp(1, 0.5, 3)).mine();
        let report = result.report(g.schema());
        assert!(report.contains("1. "));
        assert!(report.contains("score="));
    }
}
